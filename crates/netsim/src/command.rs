//! Workload commands: the simulator's equivalent of running `ping` or
//! `iperf` on a testbed host.
//!
//! The attack language's `SYSCMD(host, cmd)` action remotely executes a
//! shell command on a host; here the recognized command lines are parsed
//! into typed [`HostCommand`]s that drive the built-in workload
//! applications.

use crate::engine::NodeId;
use crate::fault::FaultSpec;
use crate::time::SimTime;
use std::fmt;
use std::net::Ipv4Addr;

/// The default `iperf` TCP port.
pub const IPERF_PORT: u16 = 5001;

/// A workload command executed on a simulated host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostCommand {
    /// Run `ping` trials toward `dst`.
    Ping {
        /// The host running ping.
        host: NodeId,
        /// Destination address.
        dst: Ipv4Addr,
        /// Number of echo trials.
        count: u32,
        /// Interval between trials.
        interval: SimTime,
        /// Label under which results are reported.
        label: String,
    },
    /// Start an `iperf` server (TCP sink).
    IperfServer {
        /// The host running the server.
        host: NodeId,
        /// Listening port.
        port: u16,
    },
    /// Run an `iperf` client (TCP bulk sender) for `duration`.
    IperfClient {
        /// The host running the client.
        host: NodeId,
        /// Server address.
        dst: Ipv4Addr,
        /// Server port.
        port: u16,
        /// Transfer duration.
        duration: SimTime,
        /// Label under which results are reported.
        label: String,
    },
    /// Run the flow-table capacity inference probe toward `dst`
    /// (warmup, spoofed-source fill, reverse sweep; see
    /// [`ProbeStats`](crate::ProbeStats)).
    Probe {
        /// The host running the probe.
        host: NodeId,
        /// Victim destination address.
        dst: Ipv4Addr,
        /// Spoofed flows to send during the fill phase.
        fill: u32,
        /// Interval between probe packets.
        gap: SimTime,
        /// Label under which results are reported.
        label: String,
    },
    /// Record a marker in the trace (no behavioural effect).
    Marker {
        /// Marker text.
        label: String,
    },
    /// Inject an environment fault (link/process; see
    /// [`FaultSpec::parse`] for the grammar). Targets are named, not
    /// host-scoped: the issuing host is irrelevant.
    Fault(FaultSpec),
}

/// Error parsing a command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCommandError(String);

impl fmt::Display for ParseCommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized host command: {}", self.0)
    }
}

impl std::error::Error for ParseCommandError {}

impl HostCommand {
    /// Parses a `ping`/`iperf` command line as the attack language's
    /// `SYSCMD` would issue it, to run on `host`.
    ///
    /// Recognized forms:
    ///
    /// * `ping [-c COUNT] [-i SECS] DST`
    /// * `iperf -s [-p PORT]`
    /// * `iperf -c DST [-p PORT] [-t SECS]`
    /// * `capprobe [-n FILL] [-i SECS] DST` (capacity inference probe)
    /// * `echo TEXT` (becomes a trace marker)
    /// * `fault SPEC` (environment fault; see [`FaultSpec::parse`])
    ///
    /// # Errors
    ///
    /// Returns [`ParseCommandError`] for anything else.
    pub fn parse(host: NodeId, cmd: &str) -> Result<HostCommand, ParseCommandError> {
        let err = || ParseCommandError(cmd.to_string());
        let tokens: Vec<&str> = cmd.split_whitespace().collect();
        match tokens.first().copied() {
            Some("ping") => {
                let mut count = 4u32;
                let mut interval = SimTime::from_secs(1);
                let mut dst: Option<Ipv4Addr> = None;
                let mut i = 1;
                while i < tokens.len() {
                    match tokens[i] {
                        "-c" => {
                            count = tokens
                                .get(i + 1)
                                .ok_or_else(err)?
                                .parse()
                                .map_err(|_| err())?;
                            i += 2;
                        }
                        "-i" => {
                            let secs: f64 = tokens
                                .get(i + 1)
                                .ok_or_else(err)?
                                .parse()
                                .map_err(|_| err())?;
                            if !(secs.is_finite() && secs > 0.0) {
                                return Err(err());
                            }
                            interval = SimTime::from_secs_f64(secs);
                            i += 2;
                        }
                        addr => {
                            dst = Some(addr.parse().map_err(|_| err())?);
                            i += 1;
                        }
                    }
                }
                let dst = dst.ok_or_else(err)?;
                Ok(HostCommand::Ping {
                    host,
                    dst,
                    count,
                    interval,
                    label: cmd.to_string(),
                })
            }
            Some("iperf") => {
                let mut server = false;
                let mut dst: Option<Ipv4Addr> = None;
                let mut port = IPERF_PORT;
                let mut duration = SimTime::from_secs(10);
                let mut i = 1;
                while i < tokens.len() {
                    match tokens[i] {
                        "-s" => {
                            server = true;
                            i += 1;
                        }
                        "-c" => {
                            dst = Some(
                                tokens
                                    .get(i + 1)
                                    .ok_or_else(err)?
                                    .parse()
                                    .map_err(|_| err())?,
                            );
                            i += 2;
                        }
                        "-p" => {
                            port = tokens
                                .get(i + 1)
                                .ok_or_else(err)?
                                .parse()
                                .map_err(|_| err())?;
                            i += 2;
                        }
                        "-t" => {
                            let secs: u64 = tokens
                                .get(i + 1)
                                .ok_or_else(err)?
                                .parse()
                                .map_err(|_| err())?;
                            duration = SimTime::from_secs(secs);
                            i += 2;
                        }
                        _ => return Err(err()),
                    }
                }
                if server {
                    Ok(HostCommand::IperfServer { host, port })
                } else {
                    let dst = dst.ok_or_else(err)?;
                    Ok(HostCommand::IperfClient {
                        host,
                        dst,
                        port,
                        duration,
                        label: cmd.to_string(),
                    })
                }
            }
            Some("capprobe") => {
                let mut fill = 256u32;
                let mut gap = SimTime::from_millis(50);
                let mut dst: Option<Ipv4Addr> = None;
                let mut i = 1;
                while i < tokens.len() {
                    match tokens[i] {
                        "-n" => {
                            fill = tokens
                                .get(i + 1)
                                .ok_or_else(err)?
                                .parse()
                                .map_err(|_| err())?;
                            if fill == 0 {
                                return Err(err());
                            }
                            i += 2;
                        }
                        "-i" => {
                            let secs: f64 = tokens
                                .get(i + 1)
                                .ok_or_else(err)?
                                .parse()
                                .map_err(|_| err())?;
                            if !(secs.is_finite() && secs > 0.0) {
                                return Err(err());
                            }
                            gap = SimTime::from_secs_f64(secs);
                            i += 2;
                        }
                        addr => {
                            dst = Some(addr.parse().map_err(|_| err())?);
                            i += 1;
                        }
                    }
                }
                let dst = dst.ok_or_else(err)?;
                Ok(HostCommand::Probe {
                    host,
                    dst,
                    fill,
                    gap,
                    label: cmd.to_string(),
                })
            }
            Some("echo") => Ok(HostCommand::Marker {
                label: tokens[1..].join(" "),
            }),
            Some("fault") => {
                let spec = cmd.trim_start().strip_prefix("fault").unwrap_or("");
                FaultSpec::parse(spec)
                    .map(HostCommand::Fault)
                    .map_err(|_| err())
            }
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ping() {
        let c = HostCommand::parse(NodeId(1), "ping -c 60 -i 1 10.0.0.6").unwrap();
        match c {
            HostCommand::Ping {
                host,
                dst,
                count,
                interval,
                ..
            } => {
                assert_eq!(host, NodeId(1));
                assert_eq!(dst, Ipv4Addr::new(10, 0, 0, 6));
                assert_eq!(count, 60);
                assert_eq!(interval, SimTime::from_secs(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ping_defaults() {
        let c = HostCommand::parse(NodeId(0), "ping 10.0.0.1").unwrap();
        assert!(matches!(c, HostCommand::Ping { count: 4, .. }));
    }

    #[test]
    fn parses_iperf_server_and_client() {
        assert_eq!(
            HostCommand::parse(NodeId(6), "iperf -s").unwrap(),
            HostCommand::IperfServer {
                host: NodeId(6),
                port: IPERF_PORT
            }
        );
        let c = HostCommand::parse(NodeId(1), "iperf -c 10.0.0.6 -t 10").unwrap();
        match c {
            HostCommand::IperfClient {
                dst,
                port,
                duration,
                ..
            } => {
                assert_eq!(dst, Ipv4Addr::new(10, 0, 0, 6));
                assert_eq!(port, IPERF_PORT);
                assert_eq!(duration, SimTime::from_secs(10));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_fractional_ping_interval() {
        let c = HostCommand::parse(NodeId(0), "ping -i 0.2 -c 5 10.0.0.9").unwrap();
        assert!(matches!(
            c,
            HostCommand::Ping {
                interval: SimTime(200_000_000),
                ..
            }
        ));
    }

    #[test]
    fn parses_capprobe() {
        let c = HostCommand::parse(NodeId(2), "capprobe -n 128 -i 0.02 10.0.0.6").unwrap();
        assert_eq!(
            c,
            HostCommand::Probe {
                host: NodeId(2),
                dst: Ipv4Addr::new(10, 0, 0, 6),
                fill: 128,
                gap: SimTime::from_millis(20),
                label: "capprobe -n 128 -i 0.02 10.0.0.6".into(),
            }
        );
        assert!(matches!(
            HostCommand::parse(NodeId(0), "capprobe 10.0.0.6").unwrap(),
            HostCommand::Probe { fill: 256, .. }
        ));
        assert!(HostCommand::parse(NodeId(0), "capprobe").is_err());
        assert!(HostCommand::parse(NodeId(0), "capprobe -n 0 10.0.0.6").is_err());
    }

    #[test]
    fn echo_becomes_marker() {
        assert_eq!(
            HostCommand::parse(NodeId(0), "echo phase two begins").unwrap(),
            HostCommand::Marker {
                label: "phase two begins".into()
            }
        );
    }

    #[test]
    fn parses_fault_commands() {
        use crate::fault::{FaultKind, FaultTarget};
        let c = HostCommand::parse(NodeId(0), "fault link s1-s2 down").unwrap();
        assert_eq!(
            c,
            HostCommand::Fault(FaultSpec {
                target: FaultTarget::Link {
                    a: "s1".into(),
                    b: "s2".into()
                },
                kind: FaultKind::LinkDown,
            })
        );
        assert!(HostCommand::parse(NodeId(0), "fault controller c1 crash").is_ok());
        assert!(HostCommand::parse(NodeId(0), "fault switch s1 restart").is_ok());
        assert!(HostCommand::parse(NodeId(0), "fault").is_err());
        assert!(HostCommand::parse(NodeId(0), "fault link s1-s2 explode").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(HostCommand::parse(NodeId(0), "rm -rf /").is_err());
        assert!(HostCommand::parse(NodeId(0), "ping").is_err());
        assert!(HostCommand::parse(NodeId(0), "iperf -c notanip").is_err());
        assert!(HostCommand::parse(NodeId(0), "ping -i -1 10.0.0.1").is_err());
        assert!(HostCommand::parse(NodeId(0), "").is_err());
    }
}
