//! Simulation trace: the monitors' raw material.
//!
//! The paper's injector "logged all control plane connections, all
//! messages sent across such connections, and rule notifications"
//! (§VII-A2); this module is the simulator-side half of that logging.

use crate::engine::ConnId;
use crate::interpose::Direction;
use crate::time::SimTime;
use attain_openflow::OfType;
use std::collections::BTreeMap;
use std::fmt;

/// What a trace record describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A control-plane message passed the proxy point.
    ControlMessage {
        /// Connection it traversed.
        conn: ConnId,
        /// Direction of travel.
        direction: Direction,
        /// Message type (`None` if the bytes did not parse).
        of_type: Option<OfType>,
        /// Encoded length.
        len: usize,
    },
    /// A control connection completed its handshake.
    ConnectionUp {
        /// The connection.
        conn: ConnId,
    },
    /// A connection was declared dead by liveness probing.
    ConnectionDead {
        /// The connection.
        conn: ConnId,
    },
    /// A switch entered its failure mode (fail-safe standalone or
    /// fail-secure lockdown).
    FailModeEntered {
        /// Switch name.
        switch: String,
        /// `true` for fail-safe (standalone), `false` for fail-secure.
        standalone: bool,
    },
    /// A flow entry was installed.
    FlowInstalled {
        /// Switch name.
        switch: String,
        /// Rendered match.
        description: String,
    },
    /// A flow entry was evicted to make room for a new one (bounded
    /// table under an evicting overflow policy).
    FlowEvicted {
        /// Switch name.
        switch: String,
        /// Rendered match of the victim.
        description: String,
    },
    /// A packet was dropped.
    PacketDropped {
        /// Where.
        switch: String,
        /// Why.
        reason: &'static str,
    },
    /// An environment-fault transition was applied (link down/up/degrade,
    /// loss/corruption rate change, controller crash/restart, switch
    /// restart).
    Fault {
        /// The fault's target, rendered (`link s1-s2`, `controller c1`).
        target: String,
        /// What happened to it (`down`, `up`, `crash`, `restart`, …).
        what: String,
    },
    /// A peer delivered bytes that did not decode as OpenFlow.
    DecodeFailure {
        /// The connection they arrived on.
        conn: ConnId,
        /// The direction they were travelling.
        direction: Direction,
    },
    /// A connection was dropped after too many consecutive undecodable
    /// messages (a corrupted-stream peer must not stay "up" forever).
    ConnectionReset {
        /// The connection.
        conn: ConnId,
        /// Consecutive decode failures that triggered the reset.
        failures: u32,
    },
    /// The run halted before its horizon on a deterministic budget
    /// (total event cap or the per-instant livelock detector). Counted
    /// in virtual-time quantities only, so it digests identically on
    /// every same-seed run. Wall-clock cancellations are deliberately
    /// *not* traced.
    RunHalted {
        /// Which bound tripped: `"event-budget"` or `"livelock"`.
        reason: &'static str,
        /// Total events dispatched when the run halted.
        events: u64,
    },
    /// A free-form marker (e.g. experiment phase boundaries).
    Marker(String),
}

/// How much a [`Trace`] retains.
///
/// Counters (and therefore [`Trace::counter_digest`]) accumulate
/// identically in both modes; only per-event record retention differs.
/// 100k-flow runs use [`TraceMode::Counters`] so the trace stays O(
/// connections × types), not O(events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Keep every event record plus the aggregate counters.
    #[default]
    Full,
    /// Keep only the aggregate counters (drop per-event records).
    Counters,
}

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:?}", self.time, self.kind)
    }
}

/// A 64-bit digest of a trace — the golden-trace oracle's unit of
/// comparison. Two runs with the same digest recorded the same events in
/// the same order at the same virtual times, and accumulated identical
/// control-plane counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceDigest(pub u64);

impl fmt::Display for TraceDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl TraceDigest {
    /// Parses the 16-hex-digit rendering back to a digest.
    pub fn parse(s: &str) -> Option<TraceDigest> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceDigest)
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms —
/// all the golden oracle needs (collision resistance against adversaries
/// is not a requirement; drift detection is).
#[derive(Debug, Clone)]
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

/// The simulation's event log plus aggregate control-plane counters.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    /// Per `(connection, direction, type)` message counts — the paper's
    /// "increased control plane traffic" metric. A `BTreeMap` so every
    /// iteration (reports, digests) is deterministically ordered without
    /// a sort at each call site.
    counts: BTreeMap<(ConnId, Direction, Option<OfType>), u64>,
    /// When `false`, only counters are kept (for long benchmark runs).
    pub record_events: bool,
}

impl Trace {
    /// Creates an empty trace that records full events.
    pub fn new() -> Trace {
        Trace {
            record_events: true,
            ..Trace::default()
        }
    }

    /// Appends a record (and updates counters for control messages).
    pub fn push(&mut self, time: SimTime, kind: TraceKind) {
        if let TraceKind::ControlMessage {
            conn,
            direction,
            of_type,
            ..
        } = &kind
        {
            *self
                .counts
                .entry((*conn, *direction, *of_type))
                .or_insert(0) += 1;
        }
        if self.record_events {
            self.events.push(TraceEvent { time, kind });
        }
    }

    /// All recorded events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Sets the retention mode. Switching to [`TraceMode::Counters`]
    /// stops recording from now on; already-recorded events are kept.
    pub fn set_mode(&mut self, mode: TraceMode) {
        self.record_events = mode == TraceMode::Full;
    }

    /// The current retention mode.
    pub fn mode(&self) -> TraceMode {
        if self.record_events {
            TraceMode::Full
        } else {
            TraceMode::Counters
        }
    }

    /// Total control-plane messages observed (both directions, all
    /// connections).
    pub fn control_message_total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Control-plane messages of type `t` observed in `direction`.
    pub fn control_message_count(&self, t: OfType, direction: Direction) -> u64 {
        self.counts
            .iter()
            .filter(|((_, d, ty), _)| *d == direction && *ty == Some(t))
            .map(|(_, n)| *n)
            .sum()
    }

    /// All counters, deterministically ordered by `(connection,
    /// direction, type)` — the monitors' raw aggregate view.
    pub fn counters(&self) -> Vec<(ConnId, Direction, Option<OfType>, u64)> {
        self.counts
            .iter()
            .map(|(&(conn, dir, ty), &n)| (conn, dir, ty, n))
            .collect()
    }

    /// Digests the full trace: every recorded event (rendered, in
    /// order) followed by every counter (in key order).
    ///
    /// The digest is the campaign's golden-trace oracle: any semantic
    /// drift in the codec, classifier, controller applications, executor,
    /// or fault engine shifts an event's content, order, or virtual time
    /// and therefore the digest. Runs that disable event recording still
    /// digest their counters.
    pub fn digest(&self) -> TraceDigest {
        let mut h = Fnv1a::new();
        for e in &self.events {
            h.update(e.to_string().as_bytes());
            h.update(b"\n");
        }
        self.digest_counters(&mut h);
        TraceDigest(h.0)
    }

    /// Digests the counters alone, skipping per-event records.
    ///
    /// This is the digest that is mode-independent: a
    /// [`TraceMode::Counters`] run's [`Trace::digest`] equals a
    /// [`TraceMode::Full`] run's `counter_digest` byte for byte (the
    /// event section of `digest` contributes nothing when no events were
    /// recorded), which is what lets 100k-flow counters-only runs be
    /// checked against full-trace reference runs.
    pub fn counter_digest(&self) -> TraceDigest {
        let mut h = Fnv1a::new();
        self.digest_counters(&mut h);
        TraceDigest(h.0)
    }

    fn digest_counters(&self, h: &mut Fnv1a) {
        for (&(conn, dir, ty), &n) in &self.counts {
            h.update(&(conn.0 as u64).to_be_bytes());
            h.update(&[matches!(dir, Direction::ControllerToSwitch) as u8]);
            h.update(&[ty.map(|t| t as u8 + 1).unwrap_or(0)]);
            h.update(&n.to_be_bytes());
        }
    }

    /// Messages observed on one connection, any type or direction.
    pub fn connection_message_count(&self, conn: ConnId) -> u64 {
        self.counts
            .iter()
            .filter(|((c, _, _), _)| *c == conn)
            .map(|(_, n)| *n)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_control_messages() {
        let mut t = Trace::new();
        for _ in 0..3 {
            t.push(
                SimTime::ZERO,
                TraceKind::ControlMessage {
                    conn: ConnId(0),
                    direction: Direction::SwitchToController,
                    of_type: Some(OfType::PacketIn),
                    len: 100,
                },
            );
        }
        t.push(
            SimTime::ZERO,
            TraceKind::ControlMessage {
                conn: ConnId(1),
                direction: Direction::ControllerToSwitch,
                of_type: Some(OfType::FlowMod),
                len: 80,
            },
        );
        assert_eq!(t.control_message_total(), 4);
        assert_eq!(
            t.control_message_count(OfType::PacketIn, Direction::SwitchToController),
            3
        );
        assert_eq!(
            t.control_message_count(OfType::PacketIn, Direction::ControllerToSwitch),
            0
        );
        assert_eq!(t.connection_message_count(ConnId(1)), 1);
        assert_eq!(t.events().len(), 4);
    }

    #[test]
    fn disabling_event_recording_keeps_counters() {
        let mut t = Trace::new();
        t.record_events = false;
        t.push(
            SimTime::ZERO,
            TraceKind::ControlMessage {
                conn: ConnId(0),
                direction: Direction::SwitchToController,
                of_type: Some(OfType::Hello),
                len: 8,
            },
        );
        assert!(t.events().is_empty());
        assert_eq!(t.control_message_total(), 1);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let msg = |conn: usize, len: usize| TraceKind::ControlMessage {
            conn: ConnId(conn),
            direction: Direction::SwitchToController,
            of_type: Some(OfType::PacketIn),
            len,
        };
        let mut a = Trace::new();
        a.push(SimTime::from_secs(1), msg(0, 100));
        a.push(SimTime::from_secs(2), msg(1, 100));
        let mut b = Trace::new();
        b.push(SimTime::from_secs(1), msg(0, 100));
        b.push(SimTime::from_secs(2), msg(1, 100));
        assert_eq!(a.digest(), b.digest());
        // Different order → different digest.
        let mut c = Trace::new();
        c.push(SimTime::from_secs(1), msg(1, 100));
        c.push(SimTime::from_secs(2), msg(0, 100));
        assert_ne!(a.digest(), c.digest());
        // Different content (length) → different digest.
        let mut d = Trace::new();
        d.push(SimTime::from_secs(1), msg(0, 101));
        d.push(SimTime::from_secs(2), msg(1, 100));
        assert_ne!(a.digest(), d.digest());
        // Digest renders as 16 hex digits and parses back.
        let rendered = a.digest().to_string();
        assert_eq!(rendered.len(), 16);
        assert_eq!(TraceDigest::parse(&rendered), Some(a.digest()));
        assert_eq!(TraceDigest::parse("xyz"), None);
    }

    #[test]
    fn counterless_digest_still_covers_counters() {
        let mut t = Trace::new();
        t.record_events = false;
        let empty = t.digest();
        t.push(
            SimTime::ZERO,
            TraceKind::ControlMessage {
                conn: ConnId(0),
                direction: Direction::ControllerToSwitch,
                of_type: Some(OfType::FlowMod),
                len: 80,
            },
        );
        assert!(t.events().is_empty());
        assert_ne!(t.digest(), empty);
    }

    #[test]
    fn counters_mode_digest_matches_full_mode_counter_digest() {
        let msg = |conn: usize| TraceKind::ControlMessage {
            conn: ConnId(conn),
            direction: Direction::SwitchToController,
            of_type: Some(OfType::PacketIn),
            len: 60,
        };
        let mut full = Trace::new();
        assert_eq!(full.mode(), TraceMode::Full);
        let mut counters = Trace::new();
        counters.set_mode(TraceMode::Counters);
        assert_eq!(counters.mode(), TraceMode::Counters);
        for t in [full.events(), counters.events()] {
            assert!(t.is_empty());
        }
        for trace in [&mut full, &mut counters] {
            trace.push(SimTime::from_secs(1), msg(0));
            trace.push(SimTime::from_secs(2), msg(0));
            trace.push(SimTime::from_secs(3), msg(1));
            trace.push(SimTime::from_secs(3), TraceKind::Marker("m".into()));
        }
        assert_eq!(full.events().len(), 4);
        assert!(counters.events().is_empty());
        // The full digest covers events; the counter digest is identical
        // across modes, and in Counters mode it IS the digest.
        assert_ne!(full.digest(), counters.digest());
        assert_eq!(full.counter_digest(), counters.digest());
        assert_eq!(counters.counter_digest(), counters.digest());
    }

    #[test]
    fn markers_are_recorded_without_counting() {
        let mut t = Trace::new();
        t.push(SimTime::from_secs(1), TraceKind::Marker("phase 1".into()));
        assert_eq!(t.control_message_total(), 0);
        assert_eq!(t.events().len(), 1);
    }
}
