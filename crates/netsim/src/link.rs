//! Full-duplex point-to-point links with bandwidth and delay.

use crate::engine::NodeId;
use crate::fault::DetRng;
use crate::time::SimTime;
use attain_openflow::PortNo;

/// One attachment point of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkEnd {
    /// The attached node.
    pub node: NodeId,
    /// The node's port number on this link.
    pub port: PortNo,
}

/// A full-duplex link between two node ports.
///
/// Each direction has an independent transmitter modelled as a
/// store-and-forward serializer: a frame departs when the transmitter
/// frees up, occupies it for `bits / bandwidth`, then arrives after the
/// propagation `delay`. Frames whose queueing delay would exceed
/// `max_queue_delay` are dropped (drop-tail), bounding buffer memory the
/// way a real NIC ring does.
///
/// The fault layer can sever a link ([`Link::set_down`]), override its
/// characteristics ([`Link::degrade`]), and impose seeded per-frame loss
/// and corruption ([`Link::set_loss`], [`Link::set_corrupt`]); nominal
/// characteristics are remembered so [`Link::restore`] undoes a degrade.
#[derive(Debug, Clone)]
pub struct Link {
    /// First endpoint.
    pub a: LinkEnd,
    /// Second endpoint.
    pub b: LinkEnd,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimTime,
    /// Maximum tolerated queueing delay before drop-tail.
    pub max_queue_delay: SimTime,
    busy_until_ab: SimTime,
    busy_until_ba: SimTime,
    /// Frames dropped at the `a → b` transmitter.
    pub drops_ab: u64,
    /// Frames dropped at the `b → a` transmitter.
    pub drops_ba: u64,
    /// Nominal bandwidth, restored after a degrade fault clears.
    base_bandwidth_bps: u64,
    /// Nominal delay, restored after a degrade fault clears.
    base_delay: SimTime,
    up: bool,
    loss_pct: u8,
    corrupt_pct: u8,
    rng: DetRng,
    /// Frames accepted at the `a → b` transmitter.
    pub tx_ab: u64,
    /// Frames accepted at the `b → a` transmitter.
    pub tx_ba: u64,
    /// Frames dropped because the link was down (either direction).
    pub down_drops: u64,
    /// Frames dropped by the seeded loss process.
    pub lost: u64,
    /// Frames bit-flipped by the seeded corruption process.
    pub corrupted: u64,
    /// Up→down transitions.
    pub down_events: u64,
}

/// The outcome of offering a frame to a link transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The frame will arrive at the far end at this time.
    Arrives(SimTime),
    /// The transmit queue was full; the frame is dropped.
    Dropped,
}

impl Link {
    /// Creates a link with the given endpoints and characteristics.
    pub fn new(a: LinkEnd, b: LinkEnd, bandwidth_bps: u64, delay: SimTime) -> Link {
        Link {
            a,
            b,
            bandwidth_bps,
            delay,
            // 50 ms of queueing at line rate ≈ a 600 KB buffer on a
            // 100 Mb/s link — roughly a small switch port buffer.
            max_queue_delay: SimTime::from_millis(50),
            busy_until_ab: SimTime::ZERO,
            busy_until_ba: SimTime::ZERO,
            drops_ab: 0,
            drops_ba: 0,
            base_bandwidth_bps: bandwidth_bps,
            base_delay: delay,
            up: true,
            loss_pct: 0,
            corrupt_pct: 0,
            rng: DetRng::new(0),
            tx_ab: 0,
            tx_ba: 0,
            down_drops: 0,
            lost: 0,
            corrupted: 0,
            down_events: 0,
        }
    }

    // ---- fault state --------------------------------------------------

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Severs the link. Frames queued in the transmitters are discarded
    /// (the serializers idle), and offers while down are counted in
    /// [`Link::down_drops`]. Returns `true` on an up→down transition.
    pub fn set_down(&mut self) -> bool {
        if !self.up {
            return false;
        }
        self.up = false;
        self.down_events += 1;
        self.busy_until_ab = SimTime::ZERO;
        self.busy_until_ba = SimTime::ZERO;
        true
    }

    /// Restores a severed link. Returns `true` on a down→up transition.
    pub fn set_up(&mut self) -> bool {
        if self.up {
            return false;
        }
        self.up = true;
        true
    }

    /// Overrides bandwidth and/or delay (a degrade fault). `None` keeps
    /// the current value.
    pub fn degrade(&mut self, bandwidth_bps: Option<u64>, delay: Option<SimTime>) {
        if let Some(bw) = bandwidth_bps {
            self.bandwidth_bps = bw.max(1);
        }
        if let Some(d) = delay {
            self.delay = d;
        }
    }

    /// Restores nominal bandwidth/delay and clears loss/corruption.
    pub fn restore(&mut self) {
        self.bandwidth_bps = self.base_bandwidth_bps;
        self.delay = self.base_delay;
        self.loss_pct = 0;
        self.corrupt_pct = 0;
    }

    /// Sets the per-frame loss probability in percent.
    pub fn set_loss(&mut self, pct: u8) {
        self.loss_pct = pct.min(100);
    }

    /// Sets the per-frame corruption probability in percent.
    pub fn set_corrupt(&mut self, pct: u8) {
        self.corrupt_pct = pct.min(100);
    }

    /// Re-derives this link's random stream from the scenario seed and
    /// the link's index (so per-link streams are decorrelated).
    pub fn reseed(&mut self, scenario_seed: u64, link_index: usize) {
        self.rng = DetRng::new(scenario_seed ^ ((link_index as u64 + 1).wrapping_mul(0x9e37)));
    }

    /// Applies the stochastic fault processes to a frame about to be
    /// transmitted: returns `false` if the loss process eats it (counted
    /// in [`Link::lost`]), and otherwise flips a random bit per
    /// corruption hit (counted in [`Link::corrupted`]).
    ///
    /// The random stream advances only for configured processes, so
    /// fault-free links stay byte-identical to pre-fault builds.
    pub fn stochastic(&mut self, frame: &mut [u8]) -> bool {
        if self.loss_pct > 0 && self.rng.chance(self.loss_pct) {
            self.lost += 1;
            return false;
        }
        if self.corrupt_pct > 0 && self.rng.chance(self.corrupt_pct) && !frame.is_empty() {
            let bit = self.rng.below(frame.len() as u64 * 8);
            frame[(bit / 8) as usize] ^= 1 << (bit % 8);
            self.corrupted += 1;
        }
        true
    }

    /// The far end relative to `node`, if `node` is attached.
    pub fn opposite(&self, node: NodeId) -> Option<LinkEnd> {
        if self.a.node == node {
            Some(self.b)
        } else if self.b.node == node {
            Some(self.a)
        } else {
            None
        }
    }

    /// Serialization time for a frame of `bytes` bytes.
    pub fn tx_time(&self, bytes: usize) -> SimTime {
        SimTime((bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }

    /// Offers a frame for transmission from `from` at time `now`.
    ///
    /// Updates the transmitter occupancy and drop counters.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    pub fn transmit(&mut self, from: NodeId, bytes: usize, now: SimTime) -> TxOutcome {
        let (busy, drops, tx_count) = if self.a.node == from {
            (&mut self.busy_until_ab, &mut self.drops_ab, &mut self.tx_ab)
        } else if self.b.node == from {
            (&mut self.busy_until_ba, &mut self.drops_ba, &mut self.tx_ba)
        } else {
            panic!("node {from} is not attached to this link");
        };
        if !self.up {
            self.down_drops += 1;
            return TxOutcome::Dropped;
        }
        let start = (*busy).max(now);
        if start.saturating_sub(now) > self.max_queue_delay {
            *drops += 1;
            return TxOutcome::Dropped;
        }
        let tx = SimTime((bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps);
        *busy = start + tx;
        *tx_count += 1;
        TxOutcome::Arrives(start + tx + self.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(
            LinkEnd {
                node: NodeId(0),
                port: PortNo(1),
            },
            LinkEnd {
                node: NodeId(1),
                port: PortNo(2),
            },
            100_000_000, // 100 Mb/s, the paper's links
            SimTime::from_micros(250),
        )
    }

    #[test]
    fn single_frame_latency_is_tx_plus_delay() {
        let mut l = link();
        // 1250 bytes at 100 Mb/s = 100 µs serialization.
        match l.transmit(NodeId(0), 1250, SimTime::ZERO) {
            TxOutcome::Arrives(t) => {
                assert_eq!(t, SimTime::from_micros(100) + SimTime::from_micros(250))
            }
            TxOutcome::Dropped => panic!("dropped"),
        }
    }

    #[test]
    fn back_to_back_frames_queue_behind_each_other() {
        let mut l = link();
        let t1 = match l.transmit(NodeId(0), 1250, SimTime::ZERO) {
            TxOutcome::Arrives(t) => t,
            _ => panic!(),
        };
        let t2 = match l.transmit(NodeId(0), 1250, SimTime::ZERO) {
            TxOutcome::Arrives(t) => t,
            _ => panic!(),
        };
        assert_eq!(t2 - t1, SimTime::from_micros(100)); // one serialization apart
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link();
        let fwd = l.transmit(NodeId(0), 1250, SimTime::ZERO);
        let rev = l.transmit(NodeId(1), 1250, SimTime::ZERO);
        assert_eq!(fwd, rev); // no cross-direction contention
    }

    #[test]
    fn sustained_overload_drops() {
        let mut l = link();
        let mut dropped = 0;
        // 50 ms of queue at 100 µs/frame holds ~500 frames.
        for _ in 0..1000 {
            if l.transmit(NodeId(0), 1250, SimTime::ZERO) == TxOutcome::Dropped {
                dropped += 1;
            }
        }
        assert!(dropped > 400, "expected heavy drop-tail, got {dropped}");
        assert_eq!(l.drops_ab, dropped);
        assert_eq!(l.drops_ba, 0);
    }

    #[test]
    fn opposite_end_lookup() {
        let l = link();
        assert_eq!(l.opposite(NodeId(0)).unwrap().node, NodeId(1));
        assert_eq!(l.opposite(NodeId(1)).unwrap().port, PortNo(1));
        assert_eq!(l.opposite(NodeId(9)), None);
    }

    #[test]
    fn down_link_drops_everything_until_up() {
        let mut l = link();
        assert!(l.set_down());
        assert!(!l.set_down()); // idempotent
        assert_eq!(
            l.transmit(NodeId(0), 100, SimTime::ZERO),
            TxOutcome::Dropped
        );
        assert_eq!(
            l.transmit(NodeId(1), 100, SimTime::ZERO),
            TxOutcome::Dropped
        );
        assert_eq!(l.down_drops, 2);
        assert_eq!(l.down_events, 1);
        assert!(l.set_up());
        assert!(matches!(
            l.transmit(NodeId(0), 100, SimTime::from_secs(1)),
            TxOutcome::Arrives(_)
        ));
        assert_eq!(l.tx_ab, 1);
    }

    #[test]
    fn degrade_and_restore_change_characteristics() {
        let mut l = link();
        l.degrade(Some(1_000_000), Some(SimTime::from_millis(10)));
        // 1250 bytes at 1 Mb/s = 10 ms serialization + 10 ms delay.
        match l.transmit(NodeId(0), 1250, SimTime::ZERO) {
            TxOutcome::Arrives(t) => assert_eq!(t, SimTime::from_millis(20)),
            TxOutcome::Dropped => panic!("dropped"),
        }
        l.restore();
        assert_eq!(l.bandwidth_bps, 100_000_000);
        assert_eq!(l.delay, SimTime::from_micros(250));
    }

    #[test]
    fn seeded_loss_is_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let mut l = link();
            l.reseed(seed, 0);
            l.set_loss(50);
            let mut frame = vec![0u8; 64];
            (0..100).map(|_| l.stochastic(&mut frame)).collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
        let mut l = link();
        l.reseed(5, 0);
        l.set_loss(50);
        let mut frame = vec![0u8; 64];
        for _ in 0..100 {
            l.stochastic(&mut frame);
        }
        assert!((20..80).contains(&(l.lost as i64)), "lost={}", l.lost);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut l = link();
        l.reseed(9, 0);
        l.set_corrupt(100);
        let orig = vec![0u8; 64];
        let mut frame = orig.clone();
        assert!(l.stochastic(&mut frame));
        let flipped: u32 = frame
            .iter()
            .zip(&orig)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert_eq!(l.corrupted, 1);
    }

    #[test]
    fn fault_free_links_do_not_touch_the_rng() {
        let mut l = link();
        l.reseed(3, 0);
        let before = l.rng;
        let mut frame = vec![1u8; 32];
        assert!(l.stochastic(&mut frame));
        assert_eq!(l.rng, before);
        assert_eq!(frame, vec![1u8; 32]);
    }

    #[test]
    fn throughput_saturates_at_line_rate() {
        // Offer 2x line rate for one second; accepted bytes ≈ 100 Mb.
        let mut l = link();
        let frame = 1250; // 10 µs... actually 100 µs at 100 Mb/s
        let mut accepted = 0u64;
        let mut now = SimTime::ZERO;
        // Offer a frame every 50 µs (2x line rate).
        for i in 0..20_000 {
            now = SimTime::from_micros(50 * i);
            if matches!(l.transmit(NodeId(0), frame, now), TxOutcome::Arrives(_)) {
                accepted += frame as u64;
            }
        }
        let seconds = now.as_secs_f64();
        let mbps = accepted as f64 * 8.0 / seconds / 1e6;
        // Line rate plus at most the 50 ms queue's worth of slack.
        assert!(
            (95.0..=106.0).contains(&mbps),
            "accepted rate {mbps} Mb/s should be ≈ line rate"
        );
    }
}
