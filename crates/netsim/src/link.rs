//! Full-duplex point-to-point links with bandwidth and delay.

use crate::engine::NodeId;
use crate::time::SimTime;
use attain_openflow::PortNo;

/// One attachment point of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkEnd {
    /// The attached node.
    pub node: NodeId,
    /// The node's port number on this link.
    pub port: PortNo,
}

/// A full-duplex link between two node ports.
///
/// Each direction has an independent transmitter modelled as a
/// store-and-forward serializer: a frame departs when the transmitter
/// frees up, occupies it for `bits / bandwidth`, then arrives after the
/// propagation `delay`. Frames whose queueing delay would exceed
/// `max_queue_delay` are dropped (drop-tail), bounding buffer memory the
/// way a real NIC ring does.
#[derive(Debug, Clone)]
pub struct Link {
    /// First endpoint.
    pub a: LinkEnd,
    /// Second endpoint.
    pub b: LinkEnd,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimTime,
    /// Maximum tolerated queueing delay before drop-tail.
    pub max_queue_delay: SimTime,
    busy_until_ab: SimTime,
    busy_until_ba: SimTime,
    /// Frames dropped at the `a → b` transmitter.
    pub drops_ab: u64,
    /// Frames dropped at the `b → a` transmitter.
    pub drops_ba: u64,
}

/// The outcome of offering a frame to a link transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The frame will arrive at the far end at this time.
    Arrives(SimTime),
    /// The transmit queue was full; the frame is dropped.
    Dropped,
}

impl Link {
    /// Creates a link with the given endpoints and characteristics.
    pub fn new(a: LinkEnd, b: LinkEnd, bandwidth_bps: u64, delay: SimTime) -> Link {
        Link {
            a,
            b,
            bandwidth_bps,
            delay,
            // 50 ms of queueing at line rate ≈ a 600 KB buffer on a
            // 100 Mb/s link — roughly a small switch port buffer.
            max_queue_delay: SimTime::from_millis(50),
            busy_until_ab: SimTime::ZERO,
            busy_until_ba: SimTime::ZERO,
            drops_ab: 0,
            drops_ba: 0,
        }
    }

    /// The far end relative to `node`, if `node` is attached.
    pub fn opposite(&self, node: NodeId) -> Option<LinkEnd> {
        if self.a.node == node {
            Some(self.b)
        } else if self.b.node == node {
            Some(self.a)
        } else {
            None
        }
    }

    /// Serialization time for a frame of `bytes` bytes.
    pub fn tx_time(&self, bytes: usize) -> SimTime {
        SimTime((bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }

    /// Offers a frame for transmission from `from` at time `now`.
    ///
    /// Updates the transmitter occupancy and drop counters.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    pub fn transmit(&mut self, from: NodeId, bytes: usize, now: SimTime) -> TxOutcome {
        let (busy, drops) = if self.a.node == from {
            (&mut self.busy_until_ab, &mut self.drops_ab)
        } else if self.b.node == from {
            (&mut self.busy_until_ba, &mut self.drops_ba)
        } else {
            panic!("node {from} is not attached to this link");
        };
        let start = (*busy).max(now);
        if start.saturating_sub(now) > self.max_queue_delay {
            *drops += 1;
            return TxOutcome::Dropped;
        }
        let tx = SimTime((bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps);
        *busy = start + tx;
        TxOutcome::Arrives(start + tx + self.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(
            LinkEnd {
                node: NodeId(0),
                port: PortNo(1),
            },
            LinkEnd {
                node: NodeId(1),
                port: PortNo(2),
            },
            100_000_000, // 100 Mb/s, the paper's links
            SimTime::from_micros(250),
        )
    }

    #[test]
    fn single_frame_latency_is_tx_plus_delay() {
        let mut l = link();
        // 1250 bytes at 100 Mb/s = 100 µs serialization.
        match l.transmit(NodeId(0), 1250, SimTime::ZERO) {
            TxOutcome::Arrives(t) => {
                assert_eq!(t, SimTime::from_micros(100) + SimTime::from_micros(250))
            }
            TxOutcome::Dropped => panic!("dropped"),
        }
    }

    #[test]
    fn back_to_back_frames_queue_behind_each_other() {
        let mut l = link();
        let t1 = match l.transmit(NodeId(0), 1250, SimTime::ZERO) {
            TxOutcome::Arrives(t) => t,
            _ => panic!(),
        };
        let t2 = match l.transmit(NodeId(0), 1250, SimTime::ZERO) {
            TxOutcome::Arrives(t) => t,
            _ => panic!(),
        };
        assert_eq!(t2 - t1, SimTime::from_micros(100)); // one serialization apart
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link();
        let fwd = l.transmit(NodeId(0), 1250, SimTime::ZERO);
        let rev = l.transmit(NodeId(1), 1250, SimTime::ZERO);
        assert_eq!(fwd, rev); // no cross-direction contention
    }

    #[test]
    fn sustained_overload_drops() {
        let mut l = link();
        let mut dropped = 0;
        // 50 ms of queue at 100 µs/frame holds ~500 frames.
        for _ in 0..1000 {
            if l.transmit(NodeId(0), 1250, SimTime::ZERO) == TxOutcome::Dropped {
                dropped += 1;
            }
        }
        assert!(dropped > 400, "expected heavy drop-tail, got {dropped}");
        assert_eq!(l.drops_ab, dropped);
        assert_eq!(l.drops_ba, 0);
    }

    #[test]
    fn opposite_end_lookup() {
        let l = link();
        assert_eq!(l.opposite(NodeId(0)).unwrap().node, NodeId(1));
        assert_eq!(l.opposite(NodeId(1)).unwrap().port, PortNo(1));
        assert_eq!(l.opposite(NodeId(9)), None);
    }

    #[test]
    fn throughput_saturates_at_line_rate() {
        // Offer 2x line rate for one second; accepted bytes ≈ 100 Mb.
        let mut l = link();
        let frame = 1250; // 10 µs... actually 100 µs at 100 Mb/s
        let mut accepted = 0u64;
        let mut now = SimTime::ZERO;
        // Offer a frame every 50 µs (2x line rate).
        for i in 0..20_000 {
            now = SimTime::from_micros(50 * i);
            if matches!(l.transmit(NodeId(0), frame, now), TxOutcome::Arrives(_)) {
                accepted += frame as u64;
            }
        }
        let seconds = now.as_secs_f64();
        let mbps = accepted as f64 * 8.0 / seconds / 1e6;
        // Line rate plus at most the 50 ms queue's worth of slack.
        assert!(
            (95.0..=106.0).contains(&mbps),
            "accepted rate {mbps} Mb/s should be ≈ line rate"
        );
    }
}
