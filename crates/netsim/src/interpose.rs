//! The control-plane interposition hook.
//!
//! Every message on every control-plane connection passes through the
//! simulation's registered [`Interposer`] — exactly where the paper's
//! runtime injector proxy sits (§VI-B2: "a practitioner need only modify
//! his or her network's switch configurations to point to the proxy as
//! the SDN controller"). The default (no interposer) forwards verbatim.

use crate::command::HostCommand;
use crate::engine::ConnId;
use crate::time::SimTime;
use attain_openflow::Frame;
use std::fmt;

/// Which way a control-plane message is travelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// From the switch (client) toward the controller (server).
    SwitchToController,
    /// From the controller toward the switch.
    ControllerToSwitch,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(&self) -> Direction {
        match self {
            Direction::SwitchToController => Direction::ControllerToSwitch,
            Direction::ControllerToSwitch => Direction::SwitchToController,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::SwitchToController => write!(f, "switch→controller"),
            Direction::ControllerToSwitch => write!(f, "controller→switch"),
        }
    }
}

/// A message offered to the interposer.
#[derive(Debug, Clone, Copy)]
pub struct ProxiedMessage<'a> {
    /// The control connection the message traverses.
    pub conn: ConnId,
    /// The direction of travel.
    pub direction: Direction,
    /// The encoded OpenFlow message (header + body); cloning the
    /// [`Frame`] to keep or forward it is a refcount bump, not a copy.
    pub frame: &'a Frame,
    /// Current virtual time (the message's arrival at the proxy).
    pub now: SimTime,
}

/// One message the interposer wants delivered.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Target connection (usually the original; `INJECTNEWMESSAGE` may
    /// name any connection).
    pub conn: ConnId,
    /// Delivery direction.
    pub direction: Direction,
    /// Encoded message to deliver.
    pub frame: Frame,
    /// Extra delay beyond the channel latency (`DELAYMESSAGE`).
    pub extra_delay: SimTime,
}

/// Everything an interposer callback wants done.
#[derive(Debug, Default)]
pub struct InterposerActions {
    /// Messages to put on the wire.
    pub deliveries: Vec<Delivery>,
    /// Workload commands to execute now (`SYSCMD`).
    pub commands: Vec<HostCommand>,
    /// Ask to be woken at this absolute time (`SLEEP` support).
    pub wakeup: Option<SimTime>,
}

impl InterposerActions {
    /// No actions at all (drops the triggering message).
    pub fn drop_message() -> InterposerActions {
        InterposerActions::default()
    }

    /// Forward the triggering message unchanged (shares the frame's
    /// buffer — no byte copy).
    pub fn pass(msg: &ProxiedMessage<'_>) -> InterposerActions {
        InterposerActions {
            deliveries: vec![Delivery {
                conn: msg.conn,
                direction: msg.direction,
                frame: msg.frame.clone(),
                extra_delay: SimTime::ZERO,
            }],
            commands: Vec::new(),
            wakeup: None,
        }
    }
}

/// A control-plane interposer (the runtime injector's seat).
///
/// Implementations must be deterministic; the simulator calls them in
/// total message order, which is the property the paper's single,
/// centralized injector instance provides (§VI-C).
pub trait Interposer: Send {
    /// A message arrived at the proxy; decide its fate.
    fn on_message(&mut self, msg: ProxiedMessage<'_>) -> InterposerActions;

    /// A previously requested wakeup fired.
    fn on_wakeup(&mut self, now: SimTime) -> InterposerActions {
        let _ = now;
        InterposerActions::default()
    }
}

/// The trivial pass-everything interposer — the paper's Figure 5
/// "attack" that models normal control-plane operation.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassThrough;

impl Interposer for PassThrough {
    fn on_message(&mut self, msg: ProxiedMessage<'_>) -> InterposerActions {
        InterposerActions::pass(&msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_through_forwards_verbatim() {
        let mut p = PassThrough;
        let frame = Frame::new(vec![1u8, 2, 3]);
        let msg = ProxiedMessage {
            conn: ConnId(3),
            direction: Direction::SwitchToController,
            frame: &frame,
            now: SimTime::from_secs(1),
        };
        let actions = p.on_message(msg);
        assert_eq!(actions.deliveries.len(), 1);
        let d = &actions.deliveries[0];
        assert_eq!(d.conn, ConnId(3));
        assert_eq!(d.direction, Direction::SwitchToController);
        assert_eq!(d.frame, frame);
        assert_eq!(d.extra_delay, SimTime::ZERO);
        assert!(actions.commands.is_empty());
        assert!(actions.wakeup.is_none());
    }

    #[test]
    fn drop_message_produces_nothing() {
        let a = InterposerActions::drop_message();
        assert!(a.deliveries.is_empty());
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(
            Direction::SwitchToController.reverse(),
            Direction::ControllerToSwitch
        );
        assert_eq!(
            Direction::ControllerToSwitch.reverse(),
            Direction::SwitchToController
        );
    }
}
