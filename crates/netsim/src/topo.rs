//! Datacenter-scale topology generators.
//!
//! The paper's evaluation ran on a ~10-node GENI slice; ROADMAP item 1
//! grows the substrate to fabrics with thousands of switches. This
//! module generates two classic datacenter shapes on top of the
//! ordinary [`NetworkBuilder`] calls — controllers, fail modes, table
//! bounds, and fault plans compose unchanged:
//!
//! * a **k-ary fat-tree** (Al-Fares et al.): `k` pods of `k/2` edge and
//!   `k/2` aggregation switches plus `(k/2)²` cores — `5k²/4` switches
//!   and up to `k³/4` hosts (k=32 → 1280 switches, 8192 hosts at the
//!   classic density, tens of thousands with `hosts_per_edge` raised);
//! * a **leaf-spine** fabric: every leaf links to every spine, hosts
//!   hang off leaves.
//!
//! Everything is deterministic: names, DPIDs (builder insertion order),
//! MACs (node index), IPs (`10.pod.edge.n` / `10.x.y.n`), and port
//! numbers (link-creation order) are pure functions of the parameters,
//! so same-seed runs digest identically.
//!
//! Generated fabrics are loopy, and MAC-learning flood-on-miss would
//! storm in them. [`install_fat_tree_routes`] / [`install_leaf_spine_routes`]
//! therefore install proactive two-level OpenFlow 1.0 prefix routes
//! (exact `/32` at the edge, pod `/16` and subnet `/24` aggregates
//! above), the standard destination-based fat-tree scheme; switches
//! default to fail-secure so anything unroutable drops instead of
//! flooding.

use crate::builder::{LinkParams, NetworkBuilder};
use crate::engine::NodeId;
use crate::sim::Simulation;
use crate::switch::{EvictionPolicy, FailMode};
use attain_openflow::{Action, FlowMod, Match, PortNo, Wildcards};
use std::fmt;
use std::net::Ipv4Addr;

/// A malformed generator parameterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoError {
    /// Fat-tree `k` must be even (pods split into k/2 + k/2).
    OddK(usize),
    /// Fat-tree `k` outside the supported 4..=64 range.
    KOutOfRange(usize),
    /// More hosts per edge/leaf than the `/24` host subnet can address.
    TooManyHosts(usize),
    /// A leaf-spine dimension was zero or beyond the IP scheme's range.
    BadDimensions {
        /// Requested spine count.
        spines: usize,
        /// Requested leaf count.
        leaves: usize,
    },
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::OddK(k) => write!(f, "fat-tree k must be even, got {k}"),
            TopoError::KOutOfRange(k) => write!(f, "fat-tree k must be in 4..=64, got {k}"),
            TopoError::TooManyHosts(n) => {
                write!(f, "at most 253 hosts fit one /24 host subnet, got {n}")
            }
            TopoError::BadDimensions { spines, leaves } => {
                write!(
                    f,
                    "leaf-spine needs 1..=64 spines and 1..=16000 leaves, got {spines}x{leaves}"
                )
            }
        }
    }
}

impl std::error::Error for TopoError {}

/// Parameters for [`fat_tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTreeParams {
    /// Fat-tree arity: even, in 4..=64. `5k²/4` switches, `k` pods.
    pub k: usize,
    /// Hosts attached to each edge switch (1..=253). The classic
    /// fat-tree uses `k/2`; raise it to push host counts into the tens
    /// of thousands without growing the switching fabric.
    pub hosts_per_edge: usize,
    /// Fail mode for every generated switch. Defaults to
    /// [`FailMode::Secure`]: in a proactively-routed loopy fabric,
    /// unroutable packets must drop, not flood.
    pub fail_mode: FailMode,
    /// Link parameters for every generated link.
    pub link: LinkParams,
}

impl FatTreeParams {
    /// Classic k-ary fat-tree: `k/2` hosts per edge, secure fail mode,
    /// default links.
    pub fn new(k: usize) -> FatTreeParams {
        FatTreeParams {
            k,
            hosts_per_edge: k / 2,
            fail_mode: FailMode::Secure,
            link: LinkParams::default(),
        }
    }

    /// Same fabric, different host density.
    pub fn with_hosts_per_edge(mut self, hosts: usize) -> FatTreeParams {
        self.hosts_per_edge = hosts;
        self
    }
}

/// Parameters for [`leaf_spine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafSpineParams {
    /// Spine switches (1..=64); every leaf uplinks to every spine.
    pub spines: usize,
    /// Leaf switches (1..=16000).
    pub leaves: usize,
    /// Hosts attached to each leaf (1..=253).
    pub hosts_per_leaf: usize,
    /// Fail mode for every generated switch.
    pub fail_mode: FailMode,
    /// Link parameters for every generated link.
    pub link: LinkParams,
}

impl LeafSpineParams {
    /// A leaf-spine fabric with the given dimensions, secure fail mode,
    /// default links.
    pub fn new(spines: usize, leaves: usize, hosts_per_leaf: usize) -> LeafSpineParams {
        LeafSpineParams {
            spines,
            leaves,
            hosts_per_leaf,
            fail_mode: FailMode::Secure,
            link: LinkParams::default(),
        }
    }
}

/// One generated host: its node id and deterministic address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoHost {
    /// The host's node id.
    pub id: NodeId,
    /// The host's generated IPv4 address.
    pub ip: Ipv4Addr,
}

/// What shape a [`Topology`] is (drives route installation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TopoKind {
    FatTree { k: usize },
    LeafSpine { spines: usize, leaves: usize },
}

/// The wiring record a generator leaves behind: node ids by role, hosts
/// with their addresses, and the port tables route installation needs.
///
/// Indices are *local* to the generated fabric (edge 0 is the first
/// edge switch this generator created), so multiple fabrics — or a
/// fabric plus hand-wired nodes — can share one builder.
#[derive(Debug)]
pub struct Topology {
    kind: TopoKind,
    /// Core (fat-tree) or spine (leaf-spine) switches.
    pub core: Vec<NodeId>,
    /// Aggregation switches (empty for leaf-spine).
    pub agg: Vec<NodeId>,
    /// Edge (fat-tree) or leaf (leaf-spine) switches.
    pub edge: Vec<NodeId>,
    /// Generated hosts in creation order.
    pub hosts: Vec<TopoHost>,
    /// `[edge][local host] -> edge port` toward that host.
    edge_host_port: Vec<Vec<PortNo>>,
    /// `[edge][uplink] -> edge port` toward agg `uplink` (or spine).
    edge_up_port: Vec<Vec<PortNo>>,
    /// `[agg][local edge] -> agg port` down toward that edge.
    agg_down_port: Vec<Vec<PortNo>>,
    /// `[agg][uplink] -> agg port` toward its `uplink`-th core.
    agg_up_port: Vec<Vec<PortNo>>,
    /// `[core][pod] -> core port` toward that pod (or `[spine][leaf]`).
    core_down_port: Vec<Vec<PortNo>>,
}

impl Topology {
    /// Total switches in the generated fabric.
    pub fn switch_count(&self) -> usize {
        self.core.len() + self.agg.len() + self.edge.len()
    }

    /// Total generated hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }
}

/// The address of fat-tree host `idx` on edge `e` of pod `p`:
/// `10.p.e.(idx+2)` (the Al-Fares scheme, host part offset past .0/.1).
fn fat_tree_ip(pod: usize, edge: usize, idx: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, pod as u8, edge as u8, (idx + 2) as u8)
}

/// The address of leaf-spine host `idx` on leaf `l`:
/// `10.(l/250).(l%250).(idx+2)`.
fn leaf_spine_ip(leaf: usize, idx: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, (leaf / 250) as u8, (leaf % 250) as u8, (idx + 2) as u8)
}

/// Generates a k-ary fat-tree into `b`, returning its [`Topology`].
///
/// Names are prefixed to stay disjoint from hand-wired nodes:
/// `ftc<i>` (core), `fta<pod>_<i>` / `fte<pod>_<i>` (aggregation /
/// edge), `fth<n>` (hosts). Link order — and therefore port numbering —
/// is: per pod, edge-to-host, then edge-to-agg, then agg-to-core.
pub fn fat_tree(b: &mut NetworkBuilder, p: &FatTreeParams) -> Result<Topology, TopoError> {
    if !p.k.is_multiple_of(2) {
        return Err(TopoError::OddK(p.k));
    }
    if !(4..=64).contains(&p.k) {
        return Err(TopoError::KOutOfRange(p.k));
    }
    if p.hosts_per_edge == 0 || p.hosts_per_edge > 253 {
        return Err(TopoError::TooManyHosts(p.hosts_per_edge));
    }
    let half = p.k / 2;

    let core: Vec<NodeId> = (0..half * half)
        .map(|i| b.switch_with_mode(&format!("ftc{i}"), p.fail_mode))
        .collect();
    let mut agg = Vec::with_capacity(p.k * half);
    let mut edge = Vec::with_capacity(p.k * half);
    for pod in 0..p.k {
        for i in 0..half {
            agg.push(b.switch_with_mode(&format!("fta{pod}_{i}"), p.fail_mode));
        }
        for i in 0..half {
            edge.push(b.switch_with_mode(&format!("fte{pod}_{i}"), p.fail_mode));
        }
    }

    let mut hosts = Vec::with_capacity(p.k * half * p.hosts_per_edge);
    let mut edge_host_port = vec![Vec::with_capacity(p.hosts_per_edge); edge.len()];
    let mut edge_up_port = vec![Vec::with_capacity(half); edge.len()];
    let mut agg_down_port = vec![Vec::with_capacity(half); agg.len()];
    let mut agg_up_port = vec![Vec::with_capacity(half); agg.len()];
    let mut core_down_port = vec![Vec::with_capacity(p.k); core.len()];
    // Pre-fill core rows so `core_down_port[c][pod]` can be assigned in
    // pod-major order below.
    for row in &mut core_down_port {
        row.resize(p.k, PortNo(0));
    }

    // `pod` is the *inner* index of `core_down_port[c][pod]`; the outer
    // index is the core switch, so iterating `core_down_port` here would
    // invert the wiring.
    #[allow(clippy::needless_range_loop)]
    for pod in 0..p.k {
        for e in 0..half {
            let eg = pod * half + e; // global edge index
            for hidx in 0..p.hosts_per_edge {
                let n = hosts.len();
                let ip = fat_tree_ip(pod, e, hidx);
                let h = b.host(&format!("fth{n}"), &ip.to_string());
                let (_, ep) = b.link_with(h, edge[eg], p.link);
                edge_host_port[eg].push(ep);
                hosts.push(TopoHost { id: h, ip });
            }
            for a in 0..half {
                let ag = pod * half + a;
                let (ep, ap) = b.link_with(edge[eg], agg[ag], p.link);
                edge_up_port[eg].push(ep);
                agg_down_port[ag].push(ap);
            }
        }
        // Aggregation switch `a` of every pod uplinks to cores
        // `a*half .. (a+1)*half` — the standard k-ary wiring.
        for a in 0..half {
            let ag = pod * half + a;
            for m in 0..half {
                let c = a * half + m;
                let (ap, cp) = b.link_with(agg[ag], core[c], p.link);
                agg_up_port[ag].push(ap);
                core_down_port[c][pod] = cp;
            }
        }
    }

    Ok(Topology {
        kind: TopoKind::FatTree { k: p.k },
        core,
        agg,
        edge,
        hosts,
        edge_host_port,
        edge_up_port,
        agg_down_port,
        agg_up_port,
        core_down_port,
    })
}

/// Generates a leaf-spine fabric into `b`, returning its [`Topology`].
///
/// Names: `lss<i>` (spines), `lsl<i>` (leaves), `lsh<n>` (hosts). Spines
/// get their flow-table bound raised to fit one `/24` route per leaf.
pub fn leaf_spine(b: &mut NetworkBuilder, p: &LeafSpineParams) -> Result<Topology, TopoError> {
    if p.spines == 0 || p.spines > 64 || p.leaves == 0 || p.leaves > 16_000 {
        return Err(TopoError::BadDimensions {
            spines: p.spines,
            leaves: p.leaves,
        });
    }
    if p.hosts_per_leaf == 0 || p.hosts_per_leaf > 253 {
        return Err(TopoError::TooManyHosts(p.hosts_per_leaf));
    }

    let spines: Vec<NodeId> = (0..p.spines)
        .map(|i| {
            let s = b.switch_with_mode(&format!("lss{i}"), p.fail_mode);
            if p.leaves + 8 > 1024 {
                b.set_table(s, p.leaves + 8, EvictionPolicy::Reject);
            }
            s
        })
        .collect();
    let leaves: Vec<NodeId> = (0..p.leaves)
        .map(|i| b.switch_with_mode(&format!("lsl{i}"), p.fail_mode))
        .collect();

    let mut hosts = Vec::with_capacity(p.leaves * p.hosts_per_leaf);
    let mut edge_host_port = vec![Vec::with_capacity(p.hosts_per_leaf); p.leaves];
    let mut edge_up_port = vec![Vec::with_capacity(p.spines); p.leaves];
    let mut core_down_port = vec![vec![PortNo(0); p.leaves]; p.spines];

    for l in 0..p.leaves {
        for hidx in 0..p.hosts_per_leaf {
            let n = hosts.len();
            let ip = leaf_spine_ip(l, hidx);
            let h = b.host(&format!("lsh{n}"), &ip.to_string());
            let (_, lp) = b.link_with(h, leaves[l], p.link);
            edge_host_port[l].push(lp);
            hosts.push(TopoHost { id: h, ip });
        }
        for s in 0..p.spines {
            let (lp, sp) = b.link_with(leaves[l], spines[s], p.link);
            edge_up_port[l].push(lp);
            core_down_port[s][l] = sp;
        }
    }

    Ok(Topology {
        kind: TopoKind::LeafSpine {
            spines: p.spines,
            leaves: p.leaves,
        },
        core: spines,
        agg: Vec::new(),
        edge: leaves,
        hosts,
        edge_host_port,
        edge_up_port,
        agg_down_port: Vec::new(),
        agg_up_port: Vec::new(),
        core_down_port,
    })
}

/// Route-rule priorities, most to least specific.
const PRIO_HOST: u16 = 0x9000; // /32 to a local host
const PRIO_SUBNET: u16 = 0x8800; // /24 within the fabric
const PRIO_POD: u16 = 0x8400; // /16 to a pod
const PRIO_DEFAULT: u16 = 0x8000; // everything else

/// A `dl_type=ip, nw_dst=<ip>/<prefix>` match.
fn ip_dst(ip: Ipv4Addr, prefix: u32) -> Match {
    let mut m = Match::all();
    m.wildcards =
        Wildcards(Wildcards::ALL.0 & !Wildcards::DL_TYPE).with_nw_dst_ignored_bits(32 - prefix);
    m.dl_type = 0x0800;
    m.nw_dst = u32::from(ip);
    m
}

fn out(port: PortNo) -> Vec<Action> {
    vec![Action::Output { port, max_len: 0 }]
}

fn route(m: Match, priority: u16, actions: Vec<Action>) -> FlowMod {
    FlowMod {
        priority,
        ..FlowMod::add(m, actions)
    }
}

/// Installs proactive destination-based prefix routes for a generated
/// fat-tree, returning the number of rules installed.
///
/// Per edge switch: one `/32` per local host, a drop for the rest of
/// its own `/24` (so a mangled or unknown address dies at the edge
/// instead of ping-ponging), one `/16` per remote pod toward agg
/// `pod % (k/2)`, and a default up-route for intra-pod traffic. Per
/// aggregation switch: one `/24` per local edge downward, one `/16` per
/// remote pod toward core uplink `pod % (k/2)`. Per core: one `/16`
/// per pod. Every path is a deterministic single route, so the fabric
/// needs no controller to forward (controllers still compose for the
/// attack scenarios — these rules simply never miss for valid hosts).
///
/// # Panics
///
/// Panics if `topo` did not come from [`fat_tree`] or its rules do not
/// fit a switch's flow-table bound.
pub fn install_fat_tree_routes(sim: &mut Simulation, topo: &Topology) -> usize {
    let TopoKind::FatTree { k } = topo.kind else {
        panic!("topology is not a fat-tree");
    };
    let half = k / 2;
    let mut rules = 0;
    let mut push = |sim: &mut Simulation, node: NodeId, fm: FlowMod| {
        sim.install_flow_at(node, &fm)
            .unwrap_or_else(|e| panic!("route rejected: {e:?}"));
        rules += 1;
    };

    for pod in 0..k {
        for e in 0..half {
            let eg = pod * half + e;
            let edge = topo.edge[eg];
            for (hidx, &port) in topo.edge_host_port[eg].iter().enumerate() {
                let ip = fat_tree_ip(pod, e, hidx);
                push(sim, edge, route(ip_dst(ip, 32), PRIO_HOST, out(port)));
            }
            // Unknown addresses in our own subnet: drop at the edge.
            let subnet = Ipv4Addr::new(10, pod as u8, e as u8, 0);
            push(sim, edge, route(ip_dst(subnet, 24), PRIO_SUBNET, vec![]));
            for q in 0..k {
                if q == pod {
                    continue;
                }
                let up = topo.edge_up_port[eg][q % half];
                let pod_net = Ipv4Addr::new(10, q as u8, 0, 0);
                push(sim, edge, route(ip_dst(pod_net, 16), PRIO_POD, out(up)));
            }
            // Intra-pod, other edges: any agg can route it down.
            let any = Ipv4Addr::new(10, 0, 0, 0);
            let up = topo.edge_up_port[eg][e % half];
            push(sim, edge, route(ip_dst(any, 8), PRIO_DEFAULT, out(up)));
        }
        for a in 0..half {
            let ag = pod * half + a;
            let agg = topo.agg[ag];
            for (e, &down) in topo.agg_down_port[ag].iter().enumerate() {
                let subnet = Ipv4Addr::new(10, pod as u8, e as u8, 0);
                push(sim, agg, route(ip_dst(subnet, 24), PRIO_SUBNET, out(down)));
            }
            for q in 0..k {
                if q == pod {
                    continue;
                }
                let up = topo.agg_up_port[ag][q % half];
                let pod_net = Ipv4Addr::new(10, q as u8, 0, 0);
                push(sim, agg, route(ip_dst(pod_net, 16), PRIO_POD, out(up)));
            }
        }
    }
    for (c, ports) in topo.core_down_port.iter().enumerate() {
        let core = topo.core[c];
        for (pod, &port) in ports.iter().enumerate() {
            let pod_net = Ipv4Addr::new(10, pod as u8, 0, 0);
            push(sim, core, route(ip_dst(pod_net, 16), PRIO_POD, out(port)));
        }
    }
    rules
}

/// Installs proactive routes for a generated leaf-spine fabric,
/// returning the number of rules installed: per leaf, one `/32` per
/// local host, a drop for the rest of its own subnet, and a default
/// up-route to spine `leaf % spines`; per spine, one `/24` per leaf.
///
/// # Panics
///
/// Panics if `topo` did not come from [`leaf_spine`] or a rule is
/// rejected.
pub fn install_leaf_spine_routes(sim: &mut Simulation, topo: &Topology) -> usize {
    let TopoKind::LeafSpine { spines, leaves } = topo.kind else {
        panic!("topology is not leaf-spine");
    };
    let mut rules = 0;
    let mut push = |sim: &mut Simulation, node: NodeId, fm: FlowMod| {
        sim.install_flow_at(node, &fm)
            .unwrap_or_else(|e| panic!("route rejected: {e:?}"));
        rules += 1;
    };

    for l in 0..leaves {
        let leaf = topo.edge[l];
        for (hidx, &port) in topo.edge_host_port[l].iter().enumerate() {
            let ip = leaf_spine_ip(l, hidx);
            push(sim, leaf, route(ip_dst(ip, 32), PRIO_HOST, out(port)));
        }
        let subnet = Ipv4Addr::new(10, (l / 250) as u8, (l % 250) as u8, 0);
        push(sim, leaf, route(ip_dst(subnet, 24), PRIO_SUBNET, vec![]));
        let any = Ipv4Addr::new(10, 0, 0, 0);
        let up = topo.edge_up_port[l][l % spines];
        push(sim, leaf, route(ip_dst(any, 8), PRIO_DEFAULT, out(up)));
    }
    for (s, ports) in topo.core_down_port.iter().enumerate() {
        let spine = topo.core[s];
        for (l, &port) in ports.iter().enumerate() {
            let subnet = Ipv4Addr::new(10, (l / 250) as u8, (l % 250) as u8, 0);
            push(
                sim,
                spine,
                route(ip_dst(subnet, 24), PRIO_SUBNET, out(port)),
            );
        }
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::HostCommand;
    use crate::time::SimTime;

    #[test]
    fn fat_tree_dimensions_match_the_formula() {
        for k in [4usize, 8] {
            let mut b = NetworkBuilder::new();
            let t = fat_tree(&mut b, &FatTreeParams::new(k)).unwrap();
            assert_eq!(t.core.len(), k * k / 4);
            assert_eq!(t.agg.len(), k * k / 2);
            assert_eq!(t.edge.len(), k * k / 2);
            assert_eq!(t.switch_count(), 5 * k * k / 4);
            assert_eq!(t.host_count(), k * k * k / 4);
            b.try_build().unwrap();
        }
    }

    #[test]
    fn fat_tree_rejects_bad_parameters() {
        let mut b = NetworkBuilder::new();
        assert_eq!(
            fat_tree(&mut b, &FatTreeParams::new(5)).err(),
            Some(TopoError::OddK(5))
        );
        assert_eq!(
            fat_tree(&mut b, &FatTreeParams::new(2)).err(),
            Some(TopoError::KOutOfRange(2))
        );
        assert_eq!(
            fat_tree(&mut b, &FatTreeParams::new(4).with_hosts_per_edge(300)).err(),
            Some(TopoError::TooManyHosts(300))
        );
        let mut b = NetworkBuilder::new();
        assert_eq!(
            leaf_spine(&mut b, &LeafSpineParams::new(0, 4, 2)).err(),
            Some(TopoError::BadDimensions {
                spines: 0,
                leaves: 4
            })
        );
    }

    #[test]
    fn fat_tree_routes_carry_pings_across_pods() {
        let mut b = NetworkBuilder::new();
        let t = fat_tree(&mut b, &FatTreeParams::new(4)).unwrap();
        let mut sim = b.build();
        let rules = install_fat_tree_routes(&mut sim, &t);
        assert!(rules > 0);
        // First host of pod 0 pings the last host (pod 3): 5 hops each
        // way through edge→agg→core→agg→edge.
        let src = t.hosts[0];
        let dst = *t.hosts.last().unwrap();
        sim.prime_arp(src.id, dst.id);
        sim.schedule_command(
            SimTime::from_secs(1),
            HostCommand::Ping {
                host: src.id,
                dst: dst.ip,
                count: 3,
                interval: SimTime::from_secs(1),
                label: "x-pod".into(),
            },
        );
        // Intra-pod, across edges (exercises the default up-route).
        let same_pod = t.hosts[2]; // edge 1 of pod 0 (k=4: 2 hosts/edge)
        sim.prime_arp(src.id, same_pod.id);
        sim.schedule_command(
            SimTime::from_secs(1),
            HostCommand::Ping {
                host: src.id,
                dst: same_pod.ip,
                count: 3,
                interval: SimTime::from_secs(1),
                label: "in-pod".into(),
            },
        );
        sim.run_until(SimTime::from_secs(6));
        let stats = sim.ping_stats();
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert_eq!(s.received(), 3, "{}: lost pings", s.label);
        }
    }

    #[test]
    fn leaf_spine_routes_carry_pings_across_leaves() {
        let mut b = NetworkBuilder::new();
        let t = leaf_spine(&mut b, &LeafSpineParams::new(2, 4, 3)).unwrap();
        assert_eq!(t.switch_count(), 6);
        assert_eq!(t.host_count(), 12);
        let mut sim = b.build();
        install_leaf_spine_routes(&mut sim, &t);
        let src = t.hosts[0];
        let dst = *t.hosts.last().unwrap();
        sim.prime_arp(src.id, dst.id);
        sim.schedule_command(
            SimTime::from_secs(1),
            HostCommand::Ping {
                host: src.id,
                dst: dst.ip,
                count: 2,
                interval: SimTime::from_secs(1),
                label: "x-leaf".into(),
            },
        );
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.ping_stats()[0].received(), 2);
    }

    #[test]
    fn generated_addressing_is_deterministic() {
        let build = || {
            let mut b = NetworkBuilder::new();
            let t = fat_tree(&mut b, &FatTreeParams::new(4)).unwrap();
            (t.hosts.iter().map(|h| (h.id, h.ip)).collect::<Vec<_>>(),)
        };
        assert_eq!(build(), build());
        let mut b = NetworkBuilder::new();
        let t = fat_tree(&mut b, &FatTreeParams::new(4)).unwrap();
        assert_eq!(t.hosts[0].ip, "10.0.0.2".parse::<Ipv4Addr>().unwrap());
        assert_eq!(t.hosts[2].ip, "10.0.1.2".parse::<Ipv4Addr>().unwrap());
        assert_eq!(
            t.hosts.last().unwrap().ip,
            "10.3.1.3".parse::<Ipv4Addr>().unwrap()
        );
    }
}
