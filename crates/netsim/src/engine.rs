//! The deterministic event queue at the heart of the simulator.

use crate::command::HostCommand;
use crate::interpose::Direction;
use crate::time::SimTime;
use attain_openflow::{Frame, PortNo};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Index of a node (host or switch) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a control-plane connection (one `(controller, switch)` pair
/// of the paper's relation `N_C`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub usize);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}", self.0)
    }
}

/// What a [`EventKind::NodeTimer`] means to its owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerToken {
    /// A switch's 1 Hz housekeeping sweep (flow expiry + liveness).
    SwitchTick,
    /// A switch should (re)start its control-plane handshake.
    Connect {
        /// Which of the switch's connections.
        conn: ConnId,
    },
    /// A switch's handshake deadline expired.
    HandshakeDeadline {
        /// Which of the switch's connections.
        conn: ConnId,
        /// The attempt number the deadline belongs to.
        attempt: u32,
    },
    /// A controller's liveness sweep.
    ControllerTick,
    /// A host application timer; the payload identifies the app slot.
    App {
        /// Index into the host's application table.
        app: usize,
    },
    /// A host's ARP retransmission check.
    ArpRetry,
}

/// An event payload.
#[derive(Debug)]
pub enum EventKind {
    /// A data-plane frame arrives at `node` on `port`.
    Frame {
        /// Receiving node.
        node: NodeId,
        /// Receiving port.
        port: PortNo,
        /// Raw Ethernet frame.
        frame: Vec<u8>,
    },
    /// An encoded OpenFlow message enters the proxy point of a control
    /// connection (where the interposer sits).
    ProxyIngress {
        /// The connection.
        conn: ConnId,
        /// Which way the message travels.
        direction: Direction,
        /// The encoded message.
        frame: Frame,
    },
    /// An encoded OpenFlow message is delivered to one end of a control
    /// connection.
    ControlDeliver {
        /// The connection.
        conn: ConnId,
        /// Which way the message travels (delivery is at the far end).
        direction: Direction,
        /// The encoded message.
        frame: Frame,
    },
    /// A timer owned by `node` fires.
    NodeTimer {
        /// Owning node.
        node: NodeId,
        /// What the timer means.
        token: TimerToken,
    },
    /// A controller-owned timer fires.
    ControllerTimer {
        /// Controller index.
        ctrl: usize,
        /// What the timer means.
        token: TimerToken,
    },
    /// A scheduled workload command executes.
    Command(HostCommand),
    /// The interposer asked to be woken (attack `SLEEP` support).
    InterposerWake,
}

/// A side effect produced by a node event handler, applied by the
/// simulation after the handler returns (keeping node borrows disjoint
/// from link/queue borrows).
#[derive(Debug)]
pub(crate) enum Effect {
    /// Emit a data-plane frame out of a port of the handling node.
    Frame {
        /// Egress port.
        out_port: PortNo,
        /// Raw frame.
        frame: Vec<u8>,
    },
    /// Send an OpenFlow message on a control connection (from the
    /// handling node's side of it).
    Control {
        /// The connection.
        conn: ConnId,
        /// Encoded message.
        frame: Frame,
    },
    /// Arm a timer owned by the handling node.
    Timer {
        /// Absolute fire time.
        at: SimTime,
        /// Meaning.
        token: TimerToken,
    },
    /// Record a trace event.
    Trace(crate::trace::TraceKind),
}

struct QueuedEvent {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A strictly deterministic future-event list.
///
/// Ties at the same virtual time are broken by insertion order, so a
/// simulation run is a pure function of its inputs — the property the
/// paper gets from its single-threaded injector's total message order
/// (§VI-C) and that our tests rely on.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `kind` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(QueuedEvent {
            time: at,
            seq,
            kind,
        }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.kind))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), EventKind::InterposerWake);
        q.schedule(SimTime::from_secs(1), EventKind::InterposerWake);
        q.schedule(SimTime::from_secs(2), EventKind::InterposerWake);
        let times: Vec<_> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(
            times,
            vec![
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(
            t,
            EventKind::NodeTimer {
                node: NodeId(0),
                token: TimerToken::SwitchTick,
            },
        );
        q.schedule(
            t,
            EventKind::NodeTimer {
                node: NodeId(1),
                token: TimerToken::SwitchTick,
            },
        );
        let (_, first) = q.pop().unwrap();
        let (_, second) = q.pop().unwrap();
        match (first, second) {
            (EventKind::NodeTimer { node: a, .. }, EventKind::NodeTimer { node: b, .. }) => {
                assert_eq!(a, NodeId(0));
                assert_eq!(b, NodeId(1));
            }
            _ => panic!("unexpected kinds"),
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), EventKind::InterposerWake);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
