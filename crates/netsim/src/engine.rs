//! The deterministic event queue at the heart of the simulator.
//!
//! Two scheduler backends live here behind one [`EventQueue`] front:
//!
//! * a binary heap (the original implementation, kept as the reference
//!   oracle), and
//! * a hierarchical timer wheel — eight levels of 64 slots at a base
//!   granularity of 2^10 ns (~1 µs), covering 2^58 ns (~9 years of
//!   virtual time) before spilling to an overflow list.
//!
//! Either backend can be sharded: per-node local events (data-plane
//! frames, node timers) hash to `node % shards`, everything else to
//! shard 0, and the front merges shard heads by the global `(time, seq)`
//! key. Because `seq` is a single monotonically increasing counter
//! assigned at schedule time, the merged order is *identical* to the
//! unsharded heap's order — byte-identical traces at every size, for
//! any shard count, for either backend. The campaign goldens pin this.
//!
//! Data-plane payloads are arena-allocated ([`FrameArena`]): a queued
//! frame event carries a 4-byte [`FrameRef`] instead of the `Vec<u8>`
//! itself, so queue records stay small and wheel cascades move index
//! math, not packet buffers.

use crate::command::HostCommand;
use crate::interpose::Direction;
use crate::time::SimTime;
use attain_openflow::{Frame, PortNo};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Index of a node (host or switch) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a control-plane connection (one `(controller, switch)` pair
/// of the paper's relation `N_C`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub usize);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}", self.0)
    }
}

/// What a [`EventKind::NodeTimer`] means to its owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerToken {
    /// A switch's 1 Hz housekeeping sweep (flow expiry + liveness).
    SwitchTick,
    /// A switch should (re)start its control-plane handshake.
    Connect {
        /// Which of the switch's connections.
        conn: ConnId,
    },
    /// A switch's handshake deadline expired.
    HandshakeDeadline {
        /// Which of the switch's connections.
        conn: ConnId,
        /// The attempt number the deadline belongs to.
        attempt: u32,
    },
    /// A controller's liveness sweep.
    ControllerTick,
    /// A host application timer; the payload identifies the app slot.
    App {
        /// Index into the host's application table.
        app: usize,
    },
    /// A host's ARP retransmission check.
    ArpRetry,
}

/// An opaque handle to a data-plane frame payload parked in the
/// simulation's [`FrameArena`]. Stored in queued events in place of the
/// payload itself so scheduler records stay small and flat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameRef(pub(crate) u32);

/// An event payload.
#[derive(Debug)]
pub enum EventKind {
    /// A data-plane frame arrives at `node` on `port`.
    Frame {
        /// Receiving node.
        node: NodeId,
        /// Receiving port.
        port: PortNo,
        /// Handle to the raw Ethernet frame in the simulation's arena.
        frame: FrameRef,
    },
    /// An encoded OpenFlow message enters the proxy point of a control
    /// connection (where the interposer sits).
    ProxyIngress {
        /// The connection.
        conn: ConnId,
        /// Which way the message travels.
        direction: Direction,
        /// The encoded message.
        frame: Frame,
    },
    /// An encoded OpenFlow message is delivered to one end of a control
    /// connection.
    ControlDeliver {
        /// The connection.
        conn: ConnId,
        /// Which way the message travels (delivery is at the far end).
        direction: Direction,
        /// The encoded message.
        frame: Frame,
    },
    /// A timer owned by `node` fires.
    NodeTimer {
        /// Owning node.
        node: NodeId,
        /// What the timer means.
        token: TimerToken,
    },
    /// A controller-owned timer fires.
    ControllerTimer {
        /// Controller index.
        ctrl: usize,
        /// What the timer means.
        token: TimerToken,
    },
    /// A scheduled workload command executes.
    Command(HostCommand),
    /// The interposer asked to be woken (attack `SLEEP` support).
    InterposerWake,
}

impl EventKind {
    /// The shard a queued event of this kind belongs to, given `shards`
    /// total. Per-node local events (data-plane frames, node timers)
    /// hash by node; all global events (control plane, commands,
    /// interposer wakeups) live on shard 0.
    fn shard(&self, shards: usize) -> usize {
        match self {
            EventKind::Frame { node, .. } | EventKind::NodeTimer { node, .. } => node.0 % shards,
            _ => 0,
        }
    }
}

/// A side effect produced by a node event handler, applied by the
/// simulation after the handler returns (keeping node borrows disjoint
/// from link/queue borrows).
#[derive(Debug)]
pub(crate) enum Effect {
    /// Emit a data-plane frame out of a port of the handling node.
    Frame {
        /// Egress port.
        out_port: PortNo,
        /// Raw frame.
        frame: Vec<u8>,
    },
    /// Send an OpenFlow message on a control connection (from the
    /// handling node's side of it).
    Control {
        /// The connection.
        conn: ConnId,
        /// Encoded message.
        frame: Frame,
    },
    /// Arm a timer owned by the handling node.
    Timer {
        /// Absolute fire time.
        at: SimTime,
        /// Meaning.
        token: TimerToken,
    },
    /// Record a trace event.
    Trace(crate::trace::TraceKind),
}

/// Which future-event-list data structure a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// One binary heap per shard (the original structure).
    Heap,
    /// One hierarchical timer wheel per shard.
    #[default]
    Wheel,
}

/// Scheduler configuration: backend kind plus shard count.
///
/// Any configuration yields the same event order (see the module docs),
/// so this only affects performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Backend data structure.
    pub kind: SchedulerKind,
    /// Number of per-node shards (clamped to `1..=64`).
    pub shards: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            kind: SchedulerKind::Wheel,
            shards: 1,
        }
    }
}

impl SchedulerConfig {
    /// A heap scheduler with `shards` shards.
    pub fn heap(shards: usize) -> SchedulerConfig {
        SchedulerConfig {
            kind: SchedulerKind::Heap,
            shards,
        }
    }

    /// A timer-wheel scheduler with `shards` shards.
    pub fn wheel(shards: usize) -> SchedulerConfig {
        SchedulerConfig {
            kind: SchedulerKind::Wheel,
            shards,
        }
    }

    fn clamped_shards(&self) -> usize {
        self.shards.clamp(1, 64)
    }
}

struct QueuedEvent {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl QueuedEvent {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time.0, self.seq)
    }
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

// ---------------------------------------------------------------------------
// Hierarchical timer wheel
// ---------------------------------------------------------------------------

/// log2 of the level-0 slot width in nanoseconds: 2^10 ns ≈ 1 µs. Fine
/// enough that same-slot collisions are rare at datacenter event rates,
/// coarse enough that a 64-slot level covers ~65 µs.
const GRANULARITY_BITS: u32 = 10;
/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `l` slots are `2^(10 + 6l)` ns wide; eight levels
/// reach `2^58` ns (~9 years) before the overflow list takes over.
const LEVELS: usize = 8;

/// A hashed hierarchical timer wheel with a strict total order.
///
/// Invariant: every event whose level-0 slot index is `<= cursor` lives
/// in `ready` (sorted descending by `(time, seq)`, popped from the
/// back); every event still parked in a wheel slot has a level-0 index
/// `> cursor`. `peek`/`pop` therefore only ever look at `ready`, and
/// `refill` maintains the invariant by draining or cascading the slot
/// with the smallest covered time range whenever `ready` runs dry.
struct TimerWheel {
    /// `slots[level * SLOTS + slot]`; unsorted buckets.
    slots: Vec<Vec<QueuedEvent>>,
    /// Per-level occupancy bitmap: bit `s` set iff `slots[l*SLOTS+s]`
    /// is non-empty.
    occupied: [u64; LEVELS],
    /// Absolute level-0 slot index up to which slots have been drained.
    cursor: u64,
    /// Drained events, sorted descending by `(time, seq)`.
    ready: Vec<QueuedEvent>,
    /// Events beyond the top level's horizon.
    overflow: Vec<QueuedEvent>,
    len: usize,
}

impl TimerWheel {
    fn new() -> TimerWheel {
        let mut slots = Vec::with_capacity(LEVELS * SLOTS);
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        TimerWheel {
            slots,
            occupied: [0; LEVELS],
            cursor: 0,
            ready: Vec::with_capacity(SLOTS),
            overflow: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn slot_index(time: SimTime) -> u64 {
        time.0 >> GRANULARITY_BITS
    }

    fn push(&mut self, ev: QueuedEvent) {
        self.len += 1;
        self.place(ev);
        if self.ready.is_empty() {
            self.refill();
        }
    }

    /// Parks `ev` in `ready`, a wheel slot, or the overflow list —
    /// without touching `len`.
    fn place(&mut self, ev: QueuedEvent) {
        let idx0 = Self::slot_index(ev.time);
        if idx0 <= self.cursor {
            self.insert_ready(ev);
            return;
        }
        for level in 0..LEVELS {
            let shift = SLOT_BITS * level as u32;
            let il = idx0 >> shift;
            let cl = self.cursor >> shift;
            // `<=` (not `<`) so a cascaded slot's tail events land strictly
            // below the cascaded level: after `cursor = range_start - 1` an
            // event in the top 1/64th of the old slot's range sits exactly
            // SLOTS level-(l-1) slots past the cursor, and re-filing it at
            // level l would loop refill forever. The candidate scan copes:
            // a distance-SLOTS slot shows up as the cursor's own position.
            if il - cl <= SLOTS as u64 {
                let slot = (il as usize) & (SLOTS - 1);
                self.slots[level * SLOTS + slot].push(ev);
                self.occupied[level] |= 1 << slot;
                return;
            }
        }
        self.overflow.push(ev);
    }

    fn insert_ready(&mut self, ev: QueuedEvent) {
        // `ready` is sorted descending so the minimum pops off the back.
        let key = ev.key();
        let pos = self
            .ready
            .binary_search_by(|e| key.cmp(&e.key()))
            .unwrap_or_else(|p| p);
        self.ready.insert(pos, ev);
    }

    fn pop(&mut self) -> Option<QueuedEvent> {
        let ev = self.ready.pop()?;
        self.len -= 1;
        if self.ready.is_empty() {
            self.refill();
        }
        Some(ev)
    }

    fn peek_key(&self) -> Option<(u64, u64)> {
        self.ready.last().map(QueuedEvent::key)
    }

    /// Restores the `ready`-nonempty-unless-empty invariant: repeatedly
    /// drains (level 0) or cascades (level ≥ 1) the pending slot whose
    /// covered time range starts earliest, until `ready` holds the
    /// wheel's minimum.
    ///
    /// Candidate choice matters for correctness: among the next occupied
    /// slot of every level, the one with the smallest *range start* must
    /// be processed first, and on a tie the *higher* level first — a
    /// level-l slot whose range starts at or before the next level-0
    /// slot may contain events earlier than anything in that level-0
    /// slot, so it has to cascade down before level 0 drains.
    fn refill(&mut self) {
        while self.ready.is_empty() {
            let mut best: Option<(u64, usize, usize)> = None; // (range_start, level, slot)
            for level in 0..LEVELS {
                let occ = self.occupied[level];
                if occ == 0 {
                    continue;
                }
                let shift = SLOT_BITS * level as u32;
                let cl = self.cursor >> shift;
                let cslot = (cl as usize) & (SLOTS - 1);
                // Distance (in level-l slots) to the next occupied slot,
                // scanning circularly just past the cursor's own slot.
                let rotated = occ.rotate_right((cslot as u32 + 1) & 63);
                let dist = u64::from(rotated.trailing_zeros()) + 1;
                let il = cl + dist;
                let range_start = il << shift;
                let better = match best {
                    None => true,
                    Some((bs, bl, _)) => range_start < bs || (range_start == bs && level > bl),
                };
                if better {
                    best = Some((range_start, level, (il as usize) & (SLOTS - 1)));
                }
            }
            match best {
                Some((range_start, 0, slot)) => {
                    let mut drained = std::mem::take(&mut self.slots[slot]);
                    self.occupied[0] &= !(1 << slot);
                    self.cursor = range_start; // == level-0 slot index
                    drained.sort_by_key(|e| std::cmp::Reverse(e.key()));
                    debug_assert!(self.ready.is_empty());
                    self.ready = drained;
                    return;
                }
                Some((range_start, level, slot)) => {
                    let cascaded = std::mem::take(&mut self.slots[level * SLOTS + slot]);
                    self.occupied[level] &= !(1 << slot);
                    // Events in this slot have level-0 indices >= range_start;
                    // the cursor must sit strictly below them so `place`
                    // re-files them into lower levels (or level 0).
                    self.cursor = range_start - 1;
                    for ev in cascaded {
                        self.place(ev);
                    }
                }
                None => {
                    if self.overflow.is_empty() {
                        return; // wheel truly empty
                    }
                    // Jump the cursor to just below the earliest overflow
                    // event and re-file whatever now fits in the wheel.
                    let min_idx = self
                        .overflow
                        .iter()
                        .map(|e| Self::slot_index(e.time))
                        .min()
                        .expect("overflow non-empty");
                    self.cursor = self.cursor.max(min_idx.saturating_sub(1));
                    for ev in std::mem::take(&mut self.overflow) {
                        self.place(ev);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded front
// ---------------------------------------------------------------------------

enum ShardQueue {
    Heap(BinaryHeap<Reverse<QueuedEvent>>),
    Wheel(Box<TimerWheel>),
}

impl ShardQueue {
    fn push(&mut self, ev: QueuedEvent) {
        match self {
            ShardQueue::Heap(h) => h.push(Reverse(ev)),
            ShardQueue::Wheel(w) => w.push(ev),
        }
    }

    fn pop(&mut self) -> Option<QueuedEvent> {
        match self {
            ShardQueue::Heap(h) => h.pop().map(|Reverse(e)| e),
            ShardQueue::Wheel(w) => w.pop(),
        }
    }

    fn peek_key(&self) -> Option<(u64, u64)> {
        match self {
            ShardQueue::Heap(h) => h.peek().map(|Reverse(e)| e.key()),
            ShardQueue::Wheel(w) => w.peek_key(),
        }
    }
}

/// A strictly deterministic future-event list.
///
/// Ties at the same virtual time are broken by insertion order (one
/// global sequence counter), so a simulation run is a pure function of
/// its inputs — the property the paper gets from its single-threaded
/// injector's total message order (§VI-C) and that our tests rely on.
/// The backend (heap or timer wheel, 1..=64 shards) is a pure
/// performance choice; see [`SchedulerConfig`].
pub struct EventQueue {
    shards: Vec<ShardQueue>,
    seq: u64,
    len: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::with_config(SchedulerConfig::default(), 0)
    }
}

impl EventQueue {
    /// Creates an empty queue with the default scheduler.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Creates an empty queue with an explicit scheduler configuration.
    /// `capacity_hint` pre-sizes per-shard storage (pass 0 for none).
    pub fn with_config(config: SchedulerConfig, capacity_hint: usize) -> EventQueue {
        let n = config.clamped_shards();
        let per_shard = capacity_hint / n;
        let shards = (0..n)
            .map(|_| match config.kind {
                SchedulerKind::Heap => ShardQueue::Heap(BinaryHeap::with_capacity(per_shard)),
                SchedulerKind::Wheel => ShardQueue::Wheel(Box::new(TimerWheel::new())),
            })
            .collect();
        EventQueue {
            shards,
            seq: 0,
            len: 0,
        }
    }

    /// Schedules `kind` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        let shard = kind.shard(self.shards.len());
        self.len += 1;
        self.shards[shard].push(QueuedEvent {
            time: at,
            seq,
            kind,
        });
    }

    fn min_shard(&self) -> Option<usize> {
        let mut best: Option<((u64, u64), usize)> = None;
        for (i, s) in self.shards.iter().enumerate() {
            if let Some(key) = s.peek_key() {
                // `seq` is globally unique, so keys never tie and the
                // shard index never participates in ordering.
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        let shard = self.min_shard()?;
        let ev = self.shards[shard].pop().expect("peeked shard non-empty");
        self.len -= 1;
        Some((ev.time, ev.kind))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut best: Option<(u64, u64)> = None;
        for s in &self.shards {
            if let Some(key) = s.peek_key() {
                if best.is_none_or(|bk| key < bk) {
                    best = Some(key);
                }
            }
        }
        best.map(|(t, _)| SimTime(t))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len)
            .field("shards", &self.shards.len())
            .field("next_seq", &self.seq)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Frame arena
// ---------------------------------------------------------------------------

/// Slab storage for in-flight data-plane frame payloads.
///
/// A payload is stored exactly once when its delivery event is
/// scheduled and taken exactly once when the event dispatches, so a
/// frame's arena lifetime equals its time on the wire. Freed slots are
/// recycled through a free list: at steady state the slab stops
/// growing, queue records stay at 32 bytes regardless of frame size,
/// and wheel cascades move index math, not packet buffers.
#[derive(Debug, Default)]
pub(crate) struct FrameArena {
    slots: Vec<Vec<u8>>,
    free: Vec<u32>,
}

impl FrameArena {
    pub(crate) fn with_capacity(n: usize) -> FrameArena {
        FrameArena {
            slots: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
        }
    }

    /// Parks `frame` and returns its handle.
    pub(crate) fn store(&mut self, frame: Vec<u8>) -> FrameRef {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = frame;
                FrameRef(i)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("frame arena overflow");
                self.slots.push(frame);
                FrameRef(i)
            }
        }
    }

    /// Takes the payload back out, freeing the slot.
    pub(crate) fn take(&mut self, r: FrameRef) -> Vec<u8> {
        let buf = std::mem::take(&mut self.slots[r.0 as usize]);
        self.free.push(r.0);
        buf
    }

    /// Frames currently parked (stored but not yet taken).
    pub(crate) fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), EventKind::InterposerWake);
        q.schedule(SimTime::from_secs(1), EventKind::InterposerWake);
        q.schedule(SimTime::from_secs(2), EventKind::InterposerWake);
        let times: Vec<_> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(
            times,
            vec![
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(
            t,
            EventKind::NodeTimer {
                node: NodeId(0),
                token: TimerToken::SwitchTick,
            },
        );
        q.schedule(
            t,
            EventKind::NodeTimer {
                node: NodeId(1),
                token: TimerToken::SwitchTick,
            },
        );
        let (_, first) = q.pop().unwrap();
        let (_, second) = q.pop().unwrap();
        match (first, second) {
            (EventKind::NodeTimer { node: a, .. }, EventKind::NodeTimer { node: b, .. }) => {
                assert_eq!(a, NodeId(0));
                assert_eq!(b, NodeId(1));
            }
            _ => panic!("unexpected kinds"),
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), EventKind::InterposerWake);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    /// A tiny deterministic generator (xorshift64*) for differential
    /// tests; seeds must be non-zero.
    struct TestRng(u64);
    impl TestRng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    fn timer(node: usize) -> EventKind {
        EventKind::NodeTimer {
            node: NodeId(node),
            token: TimerToken::SwitchTick,
        }
    }

    fn node_of(kind: &EventKind) -> usize {
        match kind {
            EventKind::NodeTimer { node, .. } => node.0,
            _ => panic!("expected NodeTimer"),
        }
    }

    /// Replays an identical pseudo-random schedule/pop workload against
    /// every scheduler configuration and checks all pop sequences match
    /// the reference heap exactly — the sharded-wheel determinism
    /// contract in miniature.
    #[test]
    fn all_backends_pop_identically() {
        let configs = [
            SchedulerConfig::heap(1),
            SchedulerConfig::heap(4),
            SchedulerConfig::wheel(1),
            SchedulerConfig::wheel(3),
            SchedulerConfig::wheel(64),
        ];
        let runs: Vec<Vec<(SimTime, usize)>> = configs
            .iter()
            .map(|cfg| {
                let mut q = EventQueue::with_config(*cfg, 0);
                let mut rng = TestRng(0x5eed_cafe);
                let mut popped = Vec::new();
                let mut now = 0u64;
                for step in 0..4000 {
                    // Bursty schedule: near-term, same-time ties, far
                    // future (crosses several wheel levels), and ancient
                    // overflow-range events.
                    let r = rng.next();
                    let dt = match r % 7 {
                        0 => 0,
                        1 => r % 1_000,                 // sub-slot
                        2 => r % 100_000,               // level 0/1
                        3 => r % 50_000_000,            // level 2/3
                        4 => r % 5_000_000_000,         // level 4/5
                        5 => r % 400_000_000_000_000,   // level 6/7
                        _ => 1_000_000_000_000_000_000, // overflow
                    };
                    q.schedule(SimTime(now + dt), timer(step % 11));
                    if r.is_multiple_of(3) {
                        if let Some((t, k)) = q.pop() {
                            assert!(t.0 >= now, "time went backwards");
                            now = t.0;
                            popped.push((t, node_of(&k)));
                        }
                    }
                }
                while let Some((t, k)) = q.pop() {
                    assert!(t.0 >= now);
                    now = t.0;
                    popped.push((t, node_of(&k)));
                }
                assert!(q.is_empty());
                popped
            })
            .collect();
        for run in &runs[1..] {
            assert_eq!(runs[0].len(), run.len());
            assert_eq!(&runs[0], run, "backend diverged from reference heap");
        }
    }

    #[test]
    fn wheel_handles_same_slot_ties_and_reinsertion_at_cursor() {
        let mut q = EventQueue::with_config(SchedulerConfig::wheel(1), 0);
        // Two events in the same level-0 slot, inserted out of order.
        q.schedule(SimTime(2048 + 7), EventKind::InterposerWake);
        q.schedule(SimTime(2048 + 3), EventKind::InterposerWake);
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, SimTime(2048 + 3));
        // Scheduling back into the already-drained slot must still order
        // after the popped event but before the remaining one.
        q.schedule(SimTime(2048 + 5), EventKind::InterposerWake);
        let (t2, _) = q.pop().unwrap();
        let (t3, _) = q.pop().unwrap();
        assert_eq!(t2, SimTime(2048 + 5));
        assert_eq!(t3, SimTime(2048 + 7));
        assert!(q.pop().is_none());
    }

    #[test]
    fn wheel_cascade_preserves_order_across_levels() {
        let mut q = EventQueue::with_config(SchedulerConfig::wheel(1), 0);
        // An event far out (level >= 1) and one just before it in a
        // level-0 slot; the higher-level slot's range starts earlier, so
        // the cascade-first rule is what keeps this ordered.
        let base = 1u64 << (GRANULARITY_BITS + SLOT_BITS); // first level-1 slot
        q.schedule(SimTime(base + 10), EventKind::InterposerWake);
        q.schedule(SimTime(base + 5_000), EventKind::InterposerWake);
        q.schedule(SimTime(100), EventKind::InterposerWake);
        let times: Vec<_> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.0)).collect();
        assert_eq!(times, vec![100, base + 10, base + 5_000]);
    }

    #[test]
    fn frame_arena_round_trips_and_recycles() {
        let mut a = FrameArena::with_capacity(4);
        let r1 = a.store(vec![1, 2, 3]);
        let r2 = a.store(vec![4, 5]);
        assert_eq!(a.live(), 2);
        assert_eq!(a.take(r1), vec![1, 2, 3]);
        assert_eq!(a.live(), 1);
        let r3 = a.store(vec![6]); // reuses r1's slot
        assert_eq!(r3.0, r1.0);
        assert_eq!(a.take(r2), vec![4, 5]);
        assert_eq!(a.take(r3), vec![6]);
        assert_eq!(a.live(), 0);
    }
}
