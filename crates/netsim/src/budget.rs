//! Deterministic run budgets and cooperative cancellation.
//!
//! A campaign runs hundreds of simulations unattended; one cell whose
//! event loop stops advancing virtual time must not hang its worker
//! forever. The supervisor has two distinct tools here, chosen by what
//! they cost determinism:
//!
//! * **Budgets** ([`RunBudget::max_events`],
//!   [`RunBudget::max_events_per_instant`]) are counted in dispatched
//!   events — pure virtual-time quantities. A budget halt happens after
//!   the same event, at the same virtual time, on every same-seed run,
//!   so it is recorded in the trace ([`TraceKind::RunHalted`]) and
//!   participates in golden digests.
//! * **Cancellation** ([`CancelToken`]) is the wall-clock escape hatch:
//!   an external watchdog flips the token and the event loop notices on
//!   its next iteration. *When* that happens depends on host scheduling,
//!   so a cancelled run is never traced or digested — the cell is
//!   reported as timed out, not judged.
//!
//! [`TraceKind::RunHalted`]: crate::trace::TraceKind::RunHalted

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared flag an external supervisor flips to stop a running
/// simulation cooperatively. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Bounds on a simulation run. The default budget is unlimited and
/// uncancellable — exactly the pre-supervision behaviour.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Halt after this many dispatched events, total across the run.
    pub max_events: Option<u64>,
    /// Halt after this many consecutive events at a single virtual
    /// instant — the livelock detector. A healthy simulation advances
    /// time; an event loop rescheduling itself at `now` does not.
    pub max_events_per_instant: Option<u64>,
    /// Cooperative cancellation, checked in the event loop.
    pub cancel: Option<CancelToken>,
}

impl RunBudget {
    /// An unlimited budget.
    pub fn unlimited() -> RunBudget {
        RunBudget::default()
    }

    /// Caps total dispatched events.
    pub fn with_max_events(mut self, max: u64) -> RunBudget {
        self.max_events = Some(max);
        self
    }

    /// Caps events dispatched at one virtual instant.
    pub fn with_livelock_bound(mut self, max: u64) -> RunBudget {
        self.max_events_per_instant = Some(max);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> RunBudget {
        self.cancel = Some(token);
        self
    }
}

/// Why a [`run_until`](crate::Simulation::run_until) call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// The run reached its horizon (or drained the queue) normally.
    Horizon,
    /// The total event budget was exhausted. Deterministic; traced.
    EventBudget {
        /// Events dispatched when the budget tripped.
        events: u64,
    },
    /// Too many events at one virtual instant: the simulation stopped
    /// advancing time. Deterministic; traced.
    Livelock {
        /// Events dispatched at the stuck instant.
        events_at_instant: u64,
    },
    /// The cancellation token fired. Wall-clock-driven; never traced.
    Cancelled,
}

impl HaltReason {
    /// Whether the run completed normally.
    pub fn is_horizon(&self) -> bool {
        matches!(self, HaltReason::Horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        a.cancel(); // idempotent
        assert!(b.is_cancelled());
    }

    #[test]
    fn budget_builder_sets_bounds() {
        let b = RunBudget::unlimited()
            .with_max_events(10)
            .with_livelock_bound(4);
        assert_eq!(b.max_events, Some(10));
        assert_eq!(b.max_events_per_instant, Some(4));
        assert!(b.cancel.is_none());
        assert!(HaltReason::Horizon.is_horizon());
        assert!(!HaltReason::Cancelled.is_horizon());
    }
}
