//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, in nanoseconds since simulation
/// start.
///
/// The same type serves as instant and duration — the simulator's
/// arithmetic is simple enough that the distinction would add noise
/// without catching real bugs, and the paper's experiment scripts are all
/// phrased as absolute `t = …` offsets anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// From fractional seconds (rounds to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> SimTime {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As whole nanoseconds.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    /// Formats as seconds with millisecond precision, e.g. `12.345s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).0, 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).0, 3_000_000);
        assert_eq!(SimTime::from_micros(5).0, 5_000);
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime(1_500_000_000));
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a + b, SimTime::from_secs(4));
        assert_eq!(a - b, SimTime::from_secs(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_secs(4));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(12345).to_string(), "12.345s");
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn from_secs_f64_rejects_negative() {
        SimTime::from_secs_f64(-1.0);
    }
}
