//! Deterministic discrete-event SDN network simulator.
//!
//! This crate is the testbed substrate of the ATTAIN reproduction: where
//! the paper deployed eleven GENI virtual machines (six end hosts, four
//! Open vSwitch instances, one control-plane switch) with 100 Mb/s links,
//! this crate simulates the same network deterministically in virtual
//! time:
//!
//! * [`engine`] — a virtual-time event queue with strict deterministic
//!   ordering (identical inputs ⇒ identical traces, byte for byte);
//! * [`Link`] — full-duplex links with configurable propagation delay and
//!   bandwidth-accurate serialization (so `iperf` throughput means
//!   something);
//! * [`Switch`] — an Open vSwitch v1.9.3 model: OpenFlow 1.0 flow table
//!   with priorities/wildcards/timeouts, packet buffering, `PACKET_IN` on
//!   miss, echo-based connection liveness probing, and the two
//!   `fail-mode` behaviours (`standalone`/fail-safe vs. `secure`) the
//!   connection-interruption experiment contrasts;
//! * [`Host`] — end hosts with ARP and the paper's two workload tools:
//!   a `ping` model (1 Hz ICMP echo trials with RTT/loss accounting) and
//!   an `iperf` model (TCP handshake + windowed bulk transfer with
//!   per-trial throughput);
//! * [`ControllerHost`] — hosts any [`attain_controllers::Controller`]
//!   on simulated control-plane connections, performing the OpenFlow
//!   handshake and modelling controller processing as a serial bottleneck;
//! * [`interpose`] — the hook through which the ATTAIN runtime injector
//!   proxies every control-plane message (drop/delay/modify/inject),
//!   exactly where the paper's proxy sits;
//! * [`fault`] — deterministic environment faults (link down/flap/degrade,
//!   seeded loss and corruption, controller crash/restart, switch
//!   restart), the testbed conditions an attack campaign runs against.
//!
//! # Example: two hosts, one switch, one controller
//!
//! ```
//! use attain_netsim::{NetworkBuilder, SimTime, HostCommand};
//! use attain_controllers::Floodlight;
//!
//! let mut b = NetworkBuilder::new();
//! let h1 = b.host("h1", "10.0.0.1");
//! let h2 = b.host("h2", "10.0.0.2");
//! let s1 = b.switch("s1");
//! b.link(h1, s1);
//! b.link(h2, s1);
//! let c1 = b.controller("c1", Box::new(Floodlight::new()));
//! b.control(c1, s1);
//! let mut sim = b.build();
//!
//! sim.schedule_command(SimTime::from_secs(5), HostCommand::Ping {
//!     host: h1,
//!     dst: "10.0.0.2".parse().unwrap(),
//!     count: 10,
//!     interval: SimTime::from_secs(1),
//!     label: "h1->h2".into(),
//! });
//! sim.run_until(SimTime::from_secs(20));
//! let stats = &sim.ping_stats()[0];
//! assert_eq!(stats.received(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod builder;
mod command;
mod controller_host;
pub mod engine;
pub mod fault;
mod host;
pub mod interpose;
mod link;
mod sim;
mod switch;
mod time;
pub mod topo;
mod trace;
pub mod workload;

pub use budget::{CancelToken, HaltReason, RunBudget};
pub use builder::{BuildError, ControllerRef, LinkParams, NetworkBuilder};
pub use command::{HostCommand, ParseCommandError};
pub use controller_host::ControllerHost;
pub use engine::{ConnId, NodeId, SchedulerConfig, SchedulerKind, TimerToken};
pub use fault::{
    ControllerFaultStats, DetRng, FaultKind, FaultPlan, FaultReport, FaultSpec, FaultTarget,
    LinkStats, ParseFaultError, SwitchFaultStats,
};
pub use host::{Host, IperfStats, PingStats, ProbeStats};
pub use interpose::{
    Delivery, Direction, Interposer, InterposerActions, PassThrough, ProxiedMessage,
};
pub use link::{Link, LinkEnd, TxOutcome};
pub use sim::{ConnInfo, Simulation};
pub use switch::{
    ApplyOutcome, EvictionPolicy, FailMode, FlowEntry, FlowModError, FlowTable, Switch,
};
pub use time::SimTime;
pub use topo::{FatTreeParams, LeafSpineParams, TopoError, Topology};
pub use trace::{Trace, TraceDigest, TraceEvent, TraceKind, TraceMode};
pub use workload::{FlowKind, TrafficMatrix, TrafficPattern, WorkloadStats};
