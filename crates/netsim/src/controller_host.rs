//! Hosts a [`Controller`] implementation on simulated control-plane
//! connections: OpenFlow handshake, liveness, and a serial processing
//! model for the controller's event loop.

use crate::engine::ConnId;
use crate::interpose::Direction;
use crate::time::SimTime;
use crate::trace::TraceKind;
use attain_controllers::{Controller, Outbox};
use attain_openflow::{DatapathId, Frame, OfMessage, OfType, Xid};

/// Controller-side silence threshold before a switch is declared gone.
const DEAD_AFTER: SimTime = SimTime::from_secs(15);

/// Consecutive undecodable messages on one connection before the
/// controller resets it: a corrupted stream cannot stay "up" forever.
pub(crate) const MAX_DECODE_FAILURES: u32 = 8;

/// Handshake state of the controller's side of one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    WaitHello,
    WaitFeatures,
    Up,
}

#[derive(Debug)]
struct CtrlConn {
    conn: ConnId,
    phase: Phase,
    dpid: Option<DatapathId>,
    last_rx: SimTime,
    next_xid: Xid,
    /// Consecutive undecodable deliveries (reset by any good message).
    decode_fails: u32,
}

/// A message the controller wants delivered, with its departure time
/// (after queueing behind the controller's serial event loop).
#[derive(Debug)]
pub(crate) struct CtrlSend {
    pub conn: ConnId,
    pub frame: Frame,
    pub depart: SimTime,
}

/// A controller process: platform runtime + hosted application.
pub struct ControllerHost {
    name: String,
    app: Box<dyn Controller>,
    conns: Vec<CtrlConn>,
    /// The event loop is busy until this time; each message's processing
    /// starts no earlier (the serial-bottleneck model that makes the
    /// controller path a measurable data-plane detour under attack).
    busy_until: SimTime,
    /// Per-message processing jitter amplitude in microseconds. 0 by
    /// default — the jitterless delay model stays byte-identical to the
    /// pre-jitter simulator; fingerprint-robustness tests opt in.
    jitter_amp_us: u64,
    /// SplitMix64 state for the deterministic jitter stream.
    jitter_state: u64,
    /// `false` after a crash fault, until the matching restart.
    alive: bool,
    /// Crash faults applied (for the fault report).
    pub(crate) crashes: u64,
    /// Restart faults applied (for the fault report).
    pub(crate) restarts: u64,
    /// Total undecodable deliveries observed across all connections.
    pub decode_failures: u64,
}

impl std::fmt::Debug for ControllerHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControllerHost")
            .field("name", &self.name)
            .field("kind", &self.app.kind())
            .field("conns", &self.conns.len())
            .finish()
    }
}

impl ControllerHost {
    pub(crate) fn new(name: String, app: Box<dyn Controller>) -> ControllerHost {
        ControllerHost {
            name,
            app,
            conns: Vec::new(),
            busy_until: SimTime::ZERO,
            jitter_amp_us: 0,
            jitter_state: 0,
            alive: true,
            crashes: 0,
            restarts: 0,
            decode_failures: 0,
        }
    }

    /// The controller's name (e.g. `c1`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hosted application's kind.
    pub fn kind(&self) -> attain_controllers::ControllerKind {
        self.app.kind()
    }

    pub(crate) fn add_conn(&mut self, conn: ConnId) {
        self.conns.push(CtrlConn {
            conn,
            phase: Phase::WaitHello,
            dpid: None,
            last_rx: SimTime::ZERO,
            next_xid: 0x1000,
            decode_fails: 0,
        });
    }

    /// Whether the process is running (not crashed by a fault).
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// A crash fault: the process dies. Every connection is torn down
    /// (the application sees disconnects first — its last gasp — then
    /// all state is lost; the restart builds a pristine app).
    pub(crate) fn crash(&mut self) {
        if !self.alive {
            return;
        }
        self.alive = false;
        self.crashes += 1;
        for c in &mut self.conns {
            if c.phase == Phase::Up {
                if let Some(dpid) = c.dpid.take() {
                    self.app.on_switch_disconnect(dpid);
                }
            }
            c.phase = Phase::WaitHello;
            c.dpid = None;
            c.decode_fails = 0;
        }
        self.app.reset();
    }

    /// A restart fault: a fresh process comes up. Handshake state and
    /// the hosted application start from scratch; switches re-handshake
    /// when their reconnect timers fire.
    pub(crate) fn restart(&mut self) {
        if self.alive {
            return;
        }
        self.alive = true;
        self.restarts += 1;
        self.busy_until = SimTime::ZERO;
        for c in &mut self.conns {
            c.phase = Phase::WaitHello;
            c.dpid = None;
            c.next_xid = 0x1000;
            c.decode_fails = 0;
        }
        self.app.reset();
    }

    fn conn_index(&self, conn: ConnId) -> Option<usize> {
        self.conns.iter().position(|c| c.conn == conn)
    }

    fn conn_for_dpid(&self, dpid: DatapathId) -> Option<ConnId> {
        self.conns
            .iter()
            .find(|c| c.dpid == Some(dpid) && c.phase == Phase::Up)
            .map(|c| c.conn)
    }

    /// Enables seeded per-message processing jitter: each handled
    /// message adds a deterministic `0..=amplitude_us` microseconds on
    /// top of the app's fixed processing delay. Amplitude 0 (the
    /// default) restores the exact jitterless delay model.
    pub fn set_processing_jitter(&mut self, amplitude_us: u64, seed: u64) {
        self.jitter_amp_us = amplitude_us;
        self.jitter_state = seed;
    }

    /// SplitMix64 step — the jitter stream is a pure function of the
    /// seed and the number of messages processed so far.
    fn next_jitter_us(&mut self) -> u64 {
        if self.jitter_amp_us == 0 {
            return 0;
        }
        self.jitter_state = self.jitter_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % (self.jitter_amp_us + 1)
    }

    /// Computes when processing started `now` departs, advancing the
    /// serial event loop.
    fn depart_time(&mut self, now: SimTime) -> SimTime {
        let start = self.busy_until.max(now);
        let jitter = self.next_jitter_us();
        let depart = start + SimTime::from_micros(self.app.processing_delay_us() + jitter);
        self.busy_until = depart;
        depart
    }

    fn drain_outbox(&mut self, out: &mut Outbox, depart: SimTime, sends: &mut Vec<CtrlSend>) {
        for (dpid, msg) in out.drain() {
            if let Some(conn) = self.conn_for_dpid(dpid) {
                let xid = {
                    let i = self.conn_index(conn).expect("conn just resolved");
                    let c = &mut self.conns[i];
                    let x = c.next_xid;
                    c.next_xid += 1;
                    x
                };
                sends.push(CtrlSend {
                    conn,
                    frame: Frame::from_message(msg, xid),
                    depart,
                });
            }
        }
    }

    /// An encoded message arrived from a switch on `conn`. Trace records
    /// (decode failures, connection resets) are pushed onto `traces`.
    pub(crate) fn handle_control(
        &mut self,
        conn: ConnId,
        frame: &Frame,
        now: SimTime,
        traces: &mut Vec<TraceKind>,
    ) -> Vec<CtrlSend> {
        if !self.alive {
            // A crashed process reads nothing off its sockets.
            return Vec::new();
        }
        let Some(i) = self.conn_index(conn) else {
            return Vec::new();
        };
        self.conns[i].last_rx = now;
        let Some((msg, _xid)) = frame.decoded() else {
            // Garbled bytes at the controller: platforms log and drop —
            // but a persistently corrupted stream means the peer (or the
            // path) is broken, so after enough consecutive failures the
            // connection is reset rather than left "up" forever.
            self.decode_failures += 1;
            self.conns[i].decode_fails += 1;
            traces.push(TraceKind::DecodeFailure {
                conn,
                direction: Direction::SwitchToController,
            });
            if self.conns[i].decode_fails >= MAX_DECODE_FAILURES {
                let failures = self.conns[i].decode_fails;
                self.conns[i].phase = Phase::WaitHello;
                self.conns[i].decode_fails = 0;
                if let Some(dpid) = self.conns[i].dpid.take() {
                    self.app.on_switch_disconnect(dpid);
                }
                traces.push(TraceKind::ConnectionReset { conn, failures });
            }
            return Vec::new();
        };
        self.conns[i].decode_fails = 0;
        let mut sends = Vec::new();
        match msg {
            OfMessage::Hello => {
                // A HELLO in any phase (re)starts the handshake.
                if self.conns[i].phase == Phase::Up {
                    if let Some(dpid) = self.conns[i].dpid {
                        self.app.on_switch_disconnect(dpid);
                    }
                }
                self.conns[i].phase = Phase::WaitFeatures;
                let depart = self.depart_time(now);
                for reply in [OfMessage::Hello, OfMessage::FeaturesRequest] {
                    let xid = {
                        let c = &mut self.conns[i];
                        let x = c.next_xid;
                        c.next_xid += 1;
                        x
                    };
                    sends.push(CtrlSend {
                        conn,
                        frame: Frame::from_message(reply, xid),
                        depart,
                    });
                }
            }
            OfMessage::FeaturesReply(features) => {
                if self.conns[i].phase == Phase::WaitFeatures {
                    self.conns[i].phase = Phase::Up;
                    self.conns[i].dpid = Some(features.datapath_id);
                    let depart = self.depart_time(now);
                    let mut out = Outbox::new();
                    self.app
                        .on_switch_connect(features.datapath_id, features, &mut out);
                    self.drain_outbox(&mut out, depart, &mut sends);
                }
            }
            OfMessage::EchoRequest(_) => {
                // Echo handling bypasses the application (platform duty).
                // The reply is the request with the header's type and xid
                // patched: same body, no decode→re-encode round trip.
                let depart = self.depart_time(now);
                let xid = {
                    let c = &mut self.conns[i];
                    let x = c.next_xid;
                    c.next_xid += 1;
                    x
                };
                if let Some(reply) = frame.patched_reply(OfType::EchoReply, xid) {
                    sends.push(CtrlSend {
                        conn,
                        frame: reply,
                        depart,
                    });
                }
            }
            OfMessage::EchoReply(_) => {}
            OfMessage::PacketIn(pi) => {
                if self.conns[i].phase == Phase::Up {
                    if let Some(dpid) = self.conns[i].dpid {
                        let depart = self.depart_time(now);
                        let mut out = Outbox::new();
                        self.app.on_packet_in(dpid, pi, &mut out);
                        self.drain_outbox(&mut out, depart, &mut sends);
                    }
                }
            }
            other => {
                if self.conns[i].phase == Phase::Up {
                    if let Some(dpid) = self.conns[i].dpid {
                        let depart = self.depart_time(now);
                        let mut out = Outbox::new();
                        self.app.on_message(dpid, other, &mut out);
                        self.drain_outbox(&mut out, depart, &mut sends);
                    }
                }
            }
        }
        sends
    }

    /// Periodic liveness sweep: declares silent switches disconnected.
    pub(crate) fn tick(&mut self, now: SimTime) {
        if !self.alive {
            return;
        }
        for i in 0..self.conns.len() {
            if self.conns[i].phase == Phase::Up
                && now.saturating_sub(self.conns[i].last_rx) >= DEAD_AFTER
            {
                self.conns[i].phase = Phase::WaitHello;
                if let Some(dpid) = self.conns[i].dpid.take() {
                    self.app.on_switch_disconnect(dpid);
                }
            }
        }
    }

    /// Whether the connection has completed its handshake.
    pub fn is_up(&self, conn: ConnId) -> bool {
        self.conn_index(conn)
            .map(|i| self.conns[i].phase == Phase::Up)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_controllers::Floodlight;
    use attain_openflow::{MacAddr, PhyPort, PortNo, SwitchFeatures};

    fn features(dpid: u64) -> SwitchFeatures {
        SwitchFeatures {
            datapath_id: DatapathId(dpid),
            n_buffers: 256,
            n_tables: 1,
            capabilities: 0,
            actions: 0xfff,
            ports: vec![PhyPort::simulated(PortNo(1), MacAddr::from_low(1))],
        }
    }

    fn host() -> ControllerHost {
        let mut h = ControllerHost::new("c1".into(), Box::new(Floodlight::new()));
        h.add_conn(ConnId(0));
        h
    }

    #[test]
    fn hello_yields_hello_and_features_request() {
        let mut h = host();
        let sends = h.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::Hello, 1),
            SimTime::ZERO,
            &mut Vec::new(),
        );
        let types: Vec<_> = sends
            .iter()
            .map(|s| s.frame.message().unwrap().clone())
            .collect();
        assert_eq!(types[0], OfMessage::Hello);
        assert_eq!(types[1], OfMessage::FeaturesRequest);
        assert!(!h.is_up(ConnId(0)));
    }

    #[test]
    fn features_reply_completes_handshake() {
        let mut h = host();
        h.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::Hello, 1),
            SimTime::ZERO,
            &mut Vec::new(),
        );
        h.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::FeaturesReply(features(7)), 2),
            SimTime::from_millis(1),
            &mut Vec::new(),
        );
        assert!(h.is_up(ConnId(0)));
    }

    #[test]
    fn echo_request_is_answered_without_the_app() {
        let mut h = host();
        let sends = h.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::EchoRequest(vec![9]), 3),
            SimTime::ZERO,
            &mut Vec::new(),
        );
        assert_eq!(sends.len(), 1);
        assert_eq!(
            sends[0].frame.message(),
            Some(&OfMessage::EchoReply(vec![9]))
        );
    }

    #[test]
    fn serial_processing_queues_departures() {
        let mut h = host();
        h.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::Hello, 1),
            SimTime::ZERO,
            &mut Vec::new(),
        );
        h.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::FeaturesReply(features(7)), 2),
            SimTime::ZERO,
            &mut Vec::new(),
        );
        // Two echo requests arriving at the same instant depart one
        // processing quantum apart.
        let s1 = h.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::EchoRequest(vec![1]), 3),
            SimTime::from_secs(1),
            &mut Vec::new(),
        );
        let s2 = h.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::EchoRequest(vec![2]), 4),
            SimTime::from_secs(1),
            &mut Vec::new(),
        );
        assert!(s2[0].depart > s1[0].depart);
        let quantum = s2[0].depart - s1[0].depart;
        assert_eq!(quantum, SimTime::from_micros(300)); // Floodlight's delay
    }

    #[test]
    fn silence_disconnects_the_switch() {
        let mut h = host();
        h.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::Hello, 1),
            SimTime::ZERO,
            &mut Vec::new(),
        );
        h.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::FeaturesReply(features(7)), 2),
            SimTime::ZERO,
            &mut Vec::new(),
        );
        assert!(h.is_up(ConnId(0)));
        h.tick(SimTime::from_secs(20));
        assert!(!h.is_up(ConnId(0)));
    }

    #[test]
    fn packet_in_before_handshake_is_ignored() {
        let mut h = host();
        let pi = OfMessage::PacketIn(attain_openflow::PacketIn {
            buffer_id: None,
            total_len: 0,
            in_port: PortNo(1),
            reason: attain_openflow::PacketInReason::NoMatch,
            data: vec![],
        });
        let sends = h.handle_control(
            ConnId(0),
            &Frame::from_message(pi, 9),
            SimTime::ZERO,
            &mut Vec::new(),
        );
        assert!(sends.is_empty());
    }

    #[test]
    fn garbage_bytes_are_dropped_silently() {
        let mut h = host();
        let sends = h.handle_control(
            ConnId(0),
            &Frame::new(vec![0xde, 0xad]),
            SimTime::ZERO,
            &mut Vec::new(),
        );
        assert!(sends.is_empty());
    }
}
