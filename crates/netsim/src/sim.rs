//! The [`Simulation`]: event dispatch, effect application, and the
//! control-plane proxy point.

use crate::budget::{HaltReason, RunBudget};
use crate::command::HostCommand;
use crate::controller_host::ControllerHost;
use crate::engine::{
    ConnId, Effect, EventKind, EventQueue, FrameArena, NodeId, SchedulerConfig, TimerToken,
};
use crate::fault::{
    ControllerFaultStats, FaultKind, FaultPlan, FaultReport, FaultSpec, FaultTarget, LinkStats,
    SwitchFaultStats,
};
use crate::host::Host;
use crate::interpose::{Direction, Interposer, InterposerActions, ProxiedMessage};
use crate::link::{Link, TxOutcome};
use crate::switch::{ApplyOutcome, EvictionPolicy, FlowModError, Switch};
use crate::time::SimTime;
use crate::trace::{Trace, TraceKind, TraceMode};
use crate::{IperfStats, PingStats, ProbeStats};
use attain_openflow::{FlowMod, Frame, PortNo};
use std::collections::HashMap;

/// A node: an end host or a switch.
#[derive(Debug)]
pub(crate) enum Node {
    /// An end host.
    Host(Host),
    /// A switch. Boxed: the switch state (flow table, connections) dwarfs
    /// a host, and nodes of both kinds share one `Vec<Node>`.
    Switch(Box<Switch>),
}

/// One control-plane connection of the relation `N_C`.
#[derive(Debug)]
pub(crate) struct Connection {
    pub controller: usize,
    pub switch: NodeId,
    pub latency: SimTime,
}

/// Descriptive metadata for one control connection, used by the injector
/// to map attack-model connection names onto simulator ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnInfo {
    /// The connection id.
    pub id: ConnId,
    /// The controller's name (e.g. `c1`).
    pub controller: String,
    /// The switch's name (e.g. `s2`).
    pub switch: String,
}

/// The assembled network simulation.
///
/// Built with [`NetworkBuilder`](crate::NetworkBuilder); driven with
/// [`Simulation::run_until`]; interrogated through the stats accessors.
pub struct Simulation {
    now: SimTime,
    queue: EventQueue,
    pub(crate) nodes: Vec<Node>,
    pub(crate) links: Vec<Link>,
    pub(crate) port_map: HashMap<(NodeId, PortNo), usize>,
    pub(crate) controllers: Vec<ControllerHost>,
    pub(crate) connections: Vec<Connection>,
    interposer: Option<Box<dyn Interposer>>,
    trace: Trace,
    names: HashMap<String, NodeId>,
    /// In-flight data-plane frame payloads (see [`FrameArena`]).
    arena: FrameArena,
    /// High-water mark of pending events, sampled each dispatch loop.
    peak_pending: usize,
    /// Data-plane frames dropped by link queues.
    pub frames_dropped: u64,
    budget: RunBudget,
    events_dispatched: u64,
    /// Events dispatched at the current instant (livelock detector).
    instant_events: u64,
    /// Sticky: once a budget halt or cancellation fires, further
    /// `run_until` calls return the same reason without dispatching.
    halted: Option<HaltReason>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("controllers", &self.controllers.len())
            .field("connections", &self.connections.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl Simulation {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        nodes: Vec<Node>,
        links: Vec<Link>,
        port_map: HashMap<(NodeId, PortNo), usize>,
        controllers: Vec<ControllerHost>,
        connections: Vec<Connection>,
        names: HashMap<String, NodeId>,
        scheduler: SchedulerConfig,
        capacity_hint: usize,
    ) -> Simulation {
        let mut sim = Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::with_config(scheduler, capacity_hint),
            nodes,
            links,
            port_map,
            controllers,
            connections,
            interposer: None,
            trace: Trace::new(),
            names,
            arena: FrameArena::with_capacity(capacity_hint.min(1 << 16)),
            peak_pending: 0,
            frames_dropped: 0,
            budget: RunBudget::default(),
            events_dispatched: 0,
            instant_events: 0,
            halted: None,
        };
        // Stagger the initial handshakes and housekeeping ticks slightly
        // so same-instant ties don't depend on construction order alone.
        for (i, conn) in sim.connections.iter().enumerate() {
            sim.queue.schedule(
                SimTime::from_millis(100 + 10 * i as u64),
                EventKind::NodeTimer {
                    node: conn.switch,
                    token: TimerToken::Connect { conn: ConnId(i) },
                },
            );
        }
        for (i, node) in sim.nodes.iter().enumerate() {
            if matches!(node, Node::Switch(_)) {
                sim.queue.schedule(
                    SimTime::from_secs(1) + SimTime::from_millis(i as u64),
                    EventKind::NodeTimer {
                        node: NodeId(i),
                        token: TimerToken::SwitchTick,
                    },
                );
            }
        }
        for i in 0..sim.controllers.len() {
            sim.queue.schedule(
                SimTime::from_secs(2) + SimTime::from_millis(i as u64),
                EventKind::ControllerTimer {
                    ctrl: i,
                    token: TimerToken::ControllerTick,
                },
            );
        }
        sim
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Installs the control-plane interposer (the attack injector).
    pub fn set_interposer(&mut self, interposer: Box<dyn Interposer>) {
        self.interposer = Some(interposer);
    }

    /// Schedules a workload command at absolute time `at`.
    pub fn schedule_command(&mut self, at: SimTime, cmd: HostCommand) {
        self.queue.schedule(at, EventKind::Command(cmd));
    }

    /// Schedules an environment fault at absolute time `at`.
    pub fn schedule_fault(&mut self, at: SimTime, spec: FaultSpec) {
        self.queue
            .schedule(at, EventKind::Command(HostCommand::Fault(spec)));
    }

    /// Bounds the named switch's flow table at `capacity` entries under
    /// the given overflow `policy`. Scenario configuration: call before
    /// driving the simulation (the table is rebuilt empty).
    ///
    /// # Panics
    ///
    /// Panics if `switch` is unknown or names a host.
    pub fn set_table_config(&mut self, switch: &str, capacity: usize, policy: EvictionPolicy) {
        let id = self
            .names
            .get(switch)
            .copied()
            .unwrap_or_else(|| panic!("no node named {switch}"));
        match &mut self.nodes[id.0] {
            Node::Switch(s) => s.set_table_config(capacity, policy),
            Node::Host(_) => panic!("{switch} is a host, not a switch"),
        }
    }

    /// Sets the scenario seed for the per-link loss/corruption streams.
    ///
    /// Each link's stream is derived from `seed` and the link's index,
    /// so runs with the same topology, schedule, and seed are
    /// byte-identical, and per-link streams are mutually decorrelated.
    pub fn set_fault_seed(&mut self, seed: u64) {
        for (i, link) in self.links.iter_mut().enumerate() {
            link.reseed(seed, i);
        }
    }

    /// Applies a [`FaultPlan`]: installs its seed and schedules every
    /// event.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        self.set_fault_seed(plan.seed);
        for (at, spec) in &plan.events {
            self.schedule_fault(*at, spec.clone());
        }
    }

    /// Installs the run budget enforced by [`Simulation::run_until`].
    pub fn set_run_budget(&mut self, budget: RunBudget) {
        self.budget = budget;
    }

    /// Total events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Events currently pending in the future-event list.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of pending events observed so far.
    pub fn peak_pending_events(&self) -> usize {
        self.peak_pending.max(self.queue.len())
    }

    /// Data-plane frame payloads currently in flight (arena occupancy).
    pub fn live_frames(&self) -> usize {
        self.arena.live()
    }

    /// The sticky halt reason, if a budget or cancellation ever fired.
    pub fn halt_reason(&self) -> Option<HaltReason> {
        self.halted
    }

    /// Runs the simulation until virtual time `t` (inclusive of events at
    /// `t`), subject to the installed [`RunBudget`].
    ///
    /// Budget halts (event cap, livelock detector) are deterministic:
    /// they trip after the same event on every same-seed run, record a
    /// [`TraceKind::RunHalted`] event, and stick — further calls return
    /// the same reason without dispatching. Cancellation is wall-clock
    /// driven and leaves the trace untouched.
    pub fn run_until(&mut self, t: SimTime) -> HaltReason {
        if let Some(reason) = self.halted {
            return reason;
        }
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.peak_pending = self.peak_pending.max(self.queue.len());
            if let Some(token) = &self.budget.cancel {
                if token.is_cancelled() {
                    // Nondeterministic by nature — do not trace it.
                    self.halted = Some(HaltReason::Cancelled);
                    return HaltReason::Cancelled;
                }
            }
            if let Some(max) = self.budget.max_events {
                if self.events_dispatched >= max {
                    let reason = HaltReason::EventBudget {
                        events: self.events_dispatched,
                    };
                    self.halt(reason, "event-budget");
                    return reason;
                }
            }
            let (time, kind) = self.queue.pop().expect("peeked event");
            if time > self.now {
                self.instant_events = 0;
            }
            self.now = time;
            self.dispatch(kind);
            self.events_dispatched += 1;
            self.instant_events += 1;
            if let Some(max) = self.budget.max_events_per_instant {
                if self.instant_events >= max {
                    let reason = HaltReason::Livelock {
                        events_at_instant: self.instant_events,
                    };
                    self.halt(reason, "livelock");
                    return reason;
                }
            }
        }
        self.now = self.now.max(t);
        HaltReason::Horizon
    }

    fn halt(&mut self, reason: HaltReason, slug: &'static str) {
        self.halted = Some(reason);
        self.trace.push(
            self.now,
            TraceKind::RunHalted {
                reason: slug,
                events: self.events_dispatched,
            },
        );
    }

    /// Runs for `d` more virtual time.
    pub fn run_for(&mut self, d: SimTime) -> HaltReason {
        let t = self.now + d;
        self.run_until(t)
    }

    // ---- lookups ------------------------------------------------------

    /// The node id of the named host or switch.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// The named host.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a host.
    pub fn host(&self, name: &str) -> &Host {
        match &self.nodes[self.names[name].0] {
            Node::Host(h) => h,
            Node::Switch(_) => panic!("{name} is a switch, not a host"),
        }
    }

    /// The named switch.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a switch.
    pub fn switch(&self, name: &str) -> &Switch {
        match &self.nodes[self.names[name].0] {
            Node::Switch(s) => s,
            Node::Host(_) => panic!("{name} is a host, not a switch"),
        }
    }

    /// The named controller host.
    ///
    /// # Panics
    ///
    /// Panics if no controller has that name.
    pub fn controller(&self, name: &str) -> &ControllerHost {
        self.controllers
            .iter()
            .find(|c| c.name() == name)
            .unwrap_or_else(|| panic!("no controller named {name}"))
    }

    /// The named controller host, mutably (e.g. to enable seeded
    /// processing jitter before `run`).
    ///
    /// # Panics
    ///
    /// Panics if no controller has that name.
    pub fn controller_mut(&mut self, name: &str) -> &mut ControllerHost {
        self.controllers
            .iter_mut()
            .find(|c| c.name() == name)
            .unwrap_or_else(|| panic!("no controller named {name}"))
    }

    fn node_name(&self, id: NodeId) -> &str {
        match &self.nodes[id.0] {
            Node::Host(h) => h.name(),
            Node::Switch(s) => s.name(),
        }
    }

    /// Per-link transmission and fault counters, in link-creation order.
    pub fn link_stats(&self) -> Vec<LinkStats> {
        self.links
            .iter()
            .map(|l| LinkStats {
                a: self.node_name(l.a.node).to_string(),
                b: self.node_name(l.b.node).to_string(),
                tx: l.tx_ab + l.tx_ba,
                queue_drops: l.drops_ab + l.drops_ba,
                down_drops: l.down_drops,
                lost: l.lost,
                corrupted: l.corrupted,
                down_events: l.down_events,
                up: l.is_up(),
            })
            .collect()
    }

    /// Aggregate fault/drop/corruption accounting for this run.
    pub fn fault_report(&self) -> FaultReport {
        FaultReport {
            links: self.link_stats(),
            controllers: self
                .controllers
                .iter()
                .map(|c| ControllerFaultStats {
                    name: c.name().to_string(),
                    crashes: c.crashes,
                    restarts: c.restarts,
                    alive: c.is_alive(),
                })
                .collect(),
            switches: self
                .nodes
                .iter()
                .filter_map(|n| match n {
                    Node::Switch(s) => Some(SwitchFaultStats {
                        name: s.name().to_string(),
                        restarts: s.restarts,
                        secure_drops: s.secure_drops,
                        standalone_forwards: s.standalone_forwards,
                    }),
                    Node::Host(_) => None,
                })
                .collect(),
        }
    }

    /// Metadata for every control connection, in id order.
    pub fn conn_infos(&self) -> Vec<ConnInfo> {
        self.connections
            .iter()
            .enumerate()
            .map(|(i, c)| ConnInfo {
                id: ConnId(i),
                controller: self.controllers[c.controller].name().to_string(),
                switch: match &self.nodes[c.switch.0] {
                    Node::Switch(s) => s.name().to_string(),
                    Node::Host(h) => h.name().to_string(),
                },
            })
            .collect()
    }

    /// All ping runs across all hosts, in node then start order.
    pub fn ping_stats(&self) -> Vec<PingStats> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Host(h) => Some(h.ping_stats()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// All iperf client runs across all hosts.
    pub fn iperf_stats(&self) -> Vec<IperfStats> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Host(h) => Some(h.iperf_stats()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// All capacity-probe runs across all hosts.
    pub fn probe_stats(&self) -> Vec<ProbeStats> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Host(h) => Some(h.probe_stats()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// The simulation trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Disables per-event trace recording (counters stay on), for long
    /// benchmark runs.
    pub fn set_trace_events(&mut self, on: bool) {
        self.trace.set_mode(if on {
            TraceMode::Full
        } else {
            TraceMode::Counters
        });
    }

    /// Sets the trace mode (see [`TraceMode`]).
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace.set_mode(mode);
    }

    /// Installs a flow entry directly into the named switch's table, as
    /// proactive provisioning would — no control-plane round trip and no
    /// `FlowInstalled` trace event, so a pre-provisioned fabric digests
    /// identically regardless of how many routes were pushed.
    ///
    /// # Panics
    ///
    /// Panics if `switch` is unknown or names a host.
    pub fn install_flow(
        &mut self,
        switch: &str,
        fm: &FlowMod,
    ) -> Result<ApplyOutcome, FlowModError> {
        let id = self
            .names
            .get(switch)
            .copied()
            .unwrap_or_else(|| panic!("no node named {switch}"));
        self.install_flow_at(id, fm)
    }

    /// [`Simulation::install_flow`] by node id (generators hold ids, not
    /// names).
    ///
    /// # Panics
    ///
    /// Panics if `switch` names a host.
    pub fn install_flow_at(
        &mut self,
        switch: NodeId,
        fm: &FlowMod,
    ) -> Result<ApplyOutcome, FlowModError> {
        let now = self.now;
        match &mut self.nodes[switch.0] {
            Node::Switch(s) => s.install_flow(fm, now),
            Node::Host(_) => panic!("install_flow target {switch} is a host"),
        }
    }

    /// Seeds `from`'s ARP table with `to`'s `(ip, mac)` binding, as a
    /// static ARP entry would. Large generated workloads prime the pairs
    /// they use so the fabric isn't warmed up by broadcast ARP storms.
    ///
    /// # Panics
    ///
    /// Panics if either id is not a host.
    pub fn prime_arp(&mut self, from: NodeId, to: NodeId) {
        let (ip, mac) = match &self.nodes[to.0] {
            Node::Host(h) => (h.ip(), h.mac()),
            Node::Switch(_) => panic!("prime_arp target {to} is a switch"),
        };
        match &mut self.nodes[from.0] {
            Node::Host(h) => h.prime_arp(ip, mac),
            Node::Switch(_) => panic!("prime_arp source {from} is a switch"),
        }
    }

    // ---- dispatch -----------------------------------------------------

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Frame { node, port, frame } => {
                let frame = self.arena.take(frame);
                // A frame still in flight when its link was severed never
                // arrives: the LinkDown fault discards it at delivery.
                if let Some(&link_idx) = self.port_map.get(&(node, port)) {
                    let link = &mut self.links[link_idx];
                    if !link.is_up() {
                        link.down_drops += 1;
                        return;
                    }
                }
                let mut fx = Vec::new();
                match &mut self.nodes[node.0] {
                    Node::Host(h) => h.handle_frame(&frame, self.now, &mut fx),
                    Node::Switch(s) => s.handle_frame(port, frame, self.now, &mut fx),
                }
                self.apply_effects(node, fx);
            }
            EventKind::ProxyIngress {
                conn,
                direction,
                frame,
            } => self.proxy_ingress(conn, direction, frame),
            EventKind::ControlDeliver {
                conn,
                direction,
                frame,
            } => match direction {
                Direction::SwitchToController => {
                    let ctrl = self.connections[conn.0].controller;
                    let mut traces = Vec::new();
                    let sends =
                        self.controllers[ctrl].handle_control(conn, &frame, self.now, &mut traces);
                    for kind in traces {
                        self.trace.push(self.now, kind);
                    }
                    for s in sends {
                        self.queue.schedule(
                            s.depart,
                            EventKind::ProxyIngress {
                                conn: s.conn,
                                direction: Direction::ControllerToSwitch,
                                frame: s.frame,
                            },
                        );
                    }
                }
                Direction::ControllerToSwitch => {
                    let node = self.connections[conn.0].switch;
                    let mut fx = Vec::new();
                    if let Node::Switch(s) = &mut self.nodes[node.0] {
                        s.handle_control(conn, &frame, self.now, &mut fx);
                    }
                    self.apply_effects(node, fx);
                }
            },
            EventKind::NodeTimer { node, token } => {
                let mut fx = Vec::new();
                match (&mut self.nodes[node.0], token) {
                    (Node::Switch(s), TimerToken::SwitchTick) => s.tick(self.now, &mut fx),
                    (Node::Switch(s), TimerToken::Connect { conn }) => {
                        s.start_connect(conn, self.now, &mut fx)
                    }
                    (Node::Switch(s), TimerToken::HandshakeDeadline { conn, attempt }) => {
                        s.handshake_deadline(conn, attempt, self.now, &mut fx)
                    }
                    (Node::Host(h), token) => h.handle_timer(token, self.now, &mut fx),
                    _ => {}
                }
                self.apply_effects(node, fx);
            }
            EventKind::ControllerTimer { ctrl, .. } => {
                self.controllers[ctrl].tick(self.now);
                self.queue.schedule(
                    self.now + SimTime::from_secs(2),
                    EventKind::ControllerTimer {
                        ctrl,
                        token: TimerToken::ControllerTick,
                    },
                );
            }
            EventKind::Command(cmd) => self.apply_command(cmd),
            EventKind::InterposerWake => {
                if let Some(mut ip) = self.interposer.take() {
                    let actions = ip.on_wakeup(self.now);
                    self.interposer = Some(ip);
                    self.apply_interposer_actions(actions);
                }
            }
        }
    }

    /// The proxy point: every control-plane message lands here before
    /// delivery, and the interposer (if any) decides its fate.
    fn proxy_ingress(&mut self, conn: ConnId, direction: Direction, frame: Frame) {
        self.trace.push(
            self.now,
            TraceKind::ControlMessage {
                conn,
                direction,
                of_type: frame.of_type(),
                len: frame.len(),
            },
        );
        match self.interposer.take() {
            Some(mut ip) => {
                let actions = ip.on_message(ProxiedMessage {
                    conn,
                    direction,
                    frame: &frame,
                    now: self.now,
                });
                self.interposer = Some(ip);
                self.apply_interposer_actions(actions);
            }
            None => {
                let latency = self.connections[conn.0].latency;
                self.queue.schedule(
                    self.now + latency,
                    EventKind::ControlDeliver {
                        conn,
                        direction,
                        frame,
                    },
                );
            }
        }
    }

    fn apply_interposer_actions(&mut self, actions: InterposerActions) {
        for d in actions.deliveries {
            if d.conn.0 >= self.connections.len() {
                continue; // injected onto a nonexistent connection
            }
            let latency = self.connections[d.conn.0].latency;
            self.queue.schedule(
                self.now + latency + d.extra_delay,
                EventKind::ControlDeliver {
                    conn: d.conn,
                    direction: d.direction,
                    frame: d.frame,
                },
            );
        }
        for cmd in actions.commands {
            self.apply_command(cmd);
        }
        if let Some(at) = actions.wakeup {
            self.queue
                .schedule(at.max(self.now), EventKind::InterposerWake);
        }
    }

    fn apply_command(&mut self, cmd: HostCommand) {
        match cmd {
            HostCommand::Ping {
                host,
                dst,
                count,
                interval,
                label,
            } => {
                let mut fx = Vec::new();
                if let Node::Host(h) = &mut self.nodes[host.0] {
                    h.start_ping(dst, count, interval, label, self.now, &mut fx);
                }
                self.apply_effects(host, fx);
            }
            HostCommand::IperfServer { host, port } => {
                if let Node::Host(h) = &mut self.nodes[host.0] {
                    h.start_iperf_server(port);
                }
            }
            HostCommand::Probe {
                host,
                dst,
                fill,
                gap,
                label,
            } => {
                let mut fx = Vec::new();
                if let Node::Host(h) = &mut self.nodes[host.0] {
                    h.start_probe(dst, fill as usize, gap, label, self.now, &mut fx);
                }
                self.apply_effects(host, fx);
            }
            HostCommand::IperfClient {
                host,
                dst,
                port,
                duration,
                label,
            } => {
                let mut fx = Vec::new();
                if let Node::Host(h) = &mut self.nodes[host.0] {
                    h.start_iperf_client(dst, port, duration, label, self.now, &mut fx);
                }
                self.apply_effects(host, fx);
            }
            HostCommand::Marker { label } => {
                self.trace.push(self.now, TraceKind::Marker(label));
            }
            HostCommand::Fault(spec) => self.apply_fault(spec),
        }
    }

    /// Looks up the link between two named nodes (order-insensitive).
    fn link_index(&self, a: &str, b: &str) -> Option<usize> {
        let na = *self.names.get(a)?;
        let nb = *self.names.get(b)?;
        self.links
            .iter()
            .position(|l| (l.a.node == na && l.b.node == nb) || (l.a.node == nb && l.b.node == na))
    }

    /// Applies one environment fault, tracing the transition. Unknown
    /// targets are traced (not panicked on): a fault schedule is data,
    /// often authored separately from the topology.
    fn apply_fault(&mut self, spec: FaultSpec) {
        let target = spec.target.to_string();
        let what = spec.kind.to_string();
        match (&spec.target, &spec.kind) {
            (FaultTarget::Link { a, b }, kind) => {
                let Some(idx) = self.link_index(a, b) else {
                    self.trace.push(
                        self.now,
                        TraceKind::Fault {
                            target,
                            what: "unknown link (ignored)".into(),
                        },
                    );
                    return;
                };
                let link = &mut self.links[idx];
                let changed = match kind {
                    FaultKind::LinkDown => link.set_down(),
                    FaultKind::LinkUp => link.set_up(),
                    FaultKind::LinkFlap { count, down, up } => {
                        if *count > 0 {
                            link.set_down();
                            let target = FaultTarget::Link {
                                a: a.clone(),
                                b: b.clone(),
                            };
                            self.schedule_fault(
                                self.now + *down,
                                FaultSpec {
                                    target: target.clone(),
                                    kind: FaultKind::LinkUp,
                                },
                            );
                            if *count > 1 {
                                self.schedule_fault(
                                    self.now + *down + *up,
                                    FaultSpec {
                                        target,
                                        kind: FaultKind::LinkFlap {
                                            count: count - 1,
                                            down: *down,
                                            up: *up,
                                        },
                                    },
                                );
                            }
                        }
                        *count > 0
                    }
                    FaultKind::LinkDegrade {
                        bandwidth_bps,
                        delay,
                    } => {
                        link.degrade(*bandwidth_bps, *delay);
                        true
                    }
                    FaultKind::LinkRestore => {
                        link.restore();
                        link.set_up();
                        true
                    }
                    FaultKind::PacketLoss { pct } => {
                        link.set_loss(*pct);
                        true
                    }
                    FaultKind::PacketCorrupt { pct } => {
                        link.set_corrupt(*pct);
                        true
                    }
                    _ => false,
                };
                if changed {
                    self.trace.push(self.now, TraceKind::Fault { target, what });
                }
            }
            (FaultTarget::Controller(name), kind) => {
                let Some(ctrl) = self.controllers.iter_mut().find(|c| c.name() == name) else {
                    self.trace.push(
                        self.now,
                        TraceKind::Fault {
                            target,
                            what: "unknown controller (ignored)".into(),
                        },
                    );
                    return;
                };
                let changed = match kind {
                    FaultKind::ControllerCrash => {
                        let was_alive = ctrl.is_alive();
                        ctrl.crash();
                        was_alive
                    }
                    FaultKind::ControllerRestart => {
                        let was_dead = !ctrl.is_alive();
                        ctrl.restart();
                        was_dead
                    }
                    _ => false,
                };
                if changed {
                    self.trace.push(self.now, TraceKind::Fault { target, what });
                }
            }
            (FaultTarget::Switch(name), FaultKind::SwitchRestart) => {
                let Some(&node) = self.names.get(name.as_str()) else {
                    self.trace.push(
                        self.now,
                        TraceKind::Fault {
                            target,
                            what: "unknown switch (ignored)".into(),
                        },
                    );
                    return;
                };
                let mut fx = Vec::new();
                if let Node::Switch(s) = &mut self.nodes[node.0] {
                    s.restart(self.now, &mut fx);
                    self.trace.push(self.now, TraceKind::Fault { target, what });
                }
                self.apply_effects(node, fx);
            }
            (FaultTarget::Switch(_), _) => {
                // Unreachable through the parser; ignore quietly.
            }
        }
    }

    fn apply_effects(&mut self, node: NodeId, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Frame { out_port, frame } => {
                    let Some(&link_idx) = self.port_map.get(&(node, out_port)) else {
                        continue; // unconnected port
                    };
                    let link = &mut self.links[link_idx];
                    match link.transmit(node, frame.len(), self.now) {
                        TxOutcome::Arrives(at) => {
                            let mut frame = frame;
                            if !link.stochastic(&mut frame) {
                                continue; // lost; counted on the link
                            }
                            let far = link.opposite(node).expect("node attached");
                            let frame = self.arena.store(frame);
                            self.queue.schedule(
                                at,
                                EventKind::Frame {
                                    node: far.node,
                                    port: far.port,
                                    frame,
                                },
                            );
                        }
                        TxOutcome::Dropped => self.frames_dropped += 1,
                    }
                }
                Effect::Control { conn, frame } => {
                    // Only switches emit Control effects: direction fixed.
                    self.queue.schedule(
                        self.now,
                        EventKind::ProxyIngress {
                            conn,
                            direction: Direction::SwitchToController,
                            frame,
                        },
                    );
                }
                Effect::Timer { at, token } => {
                    self.queue
                        .schedule(at.max(self.now), EventKind::NodeTimer { node, token });
                }
                Effect::Trace(kind) => self.trace.push(self.now, kind),
            }
        }
    }
}
