//! The [`Simulation`]: event dispatch, effect application, and the
//! control-plane proxy point.

use crate::command::HostCommand;
use crate::controller_host::ControllerHost;
use crate::engine::{ConnId, Effect, EventKind, EventQueue, NodeId, TimerToken};
use crate::host::Host;
use crate::interpose::{Direction, Interposer, InterposerActions, ProxiedMessage};
use crate::link::{Link, TxOutcome};
use crate::switch::Switch;
use crate::time::SimTime;
use crate::trace::{Trace, TraceKind};
use crate::{IperfStats, PingStats};
use attain_openflow::{OfMessage, PortNo};
use std::collections::HashMap;

/// A node: an end host or a switch.
#[derive(Debug)]
pub(crate) enum Node {
    /// An end host.
    Host(Host),
    /// A switch. Boxed: the switch state (flow table, connections) dwarfs
    /// a host, and nodes of both kinds share one `Vec<Node>`.
    Switch(Box<Switch>),
}

/// One control-plane connection of the relation `N_C`.
#[derive(Debug)]
pub(crate) struct Connection {
    pub controller: usize,
    pub switch: NodeId,
    pub latency: SimTime,
}

/// Descriptive metadata for one control connection, used by the injector
/// to map attack-model connection names onto simulator ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnInfo {
    /// The connection id.
    pub id: ConnId,
    /// The controller's name (e.g. `c1`).
    pub controller: String,
    /// The switch's name (e.g. `s2`).
    pub switch: String,
}

/// The assembled network simulation.
///
/// Built with [`NetworkBuilder`](crate::NetworkBuilder); driven with
/// [`Simulation::run_until`]; interrogated through the stats accessors.
pub struct Simulation {
    now: SimTime,
    queue: EventQueue,
    pub(crate) nodes: Vec<Node>,
    pub(crate) links: Vec<Link>,
    pub(crate) port_map: HashMap<(NodeId, PortNo), usize>,
    pub(crate) controllers: Vec<ControllerHost>,
    pub(crate) connections: Vec<Connection>,
    interposer: Option<Box<dyn Interposer>>,
    trace: Trace,
    names: HashMap<String, NodeId>,
    /// Data-plane frames dropped by link queues.
    pub frames_dropped: u64,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("controllers", &self.controllers.len())
            .field("connections", &self.connections.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl Simulation {
    pub(crate) fn assemble(
        nodes: Vec<Node>,
        links: Vec<Link>,
        port_map: HashMap<(NodeId, PortNo), usize>,
        controllers: Vec<ControllerHost>,
        connections: Vec<Connection>,
        names: HashMap<String, NodeId>,
    ) -> Simulation {
        let mut sim = Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes,
            links,
            port_map,
            controllers,
            connections,
            interposer: None,
            trace: Trace::new(),
            names,
            frames_dropped: 0,
        };
        // Stagger the initial handshakes and housekeeping ticks slightly
        // so same-instant ties don't depend on construction order alone.
        for (i, conn) in sim.connections.iter().enumerate() {
            sim.queue.schedule(
                SimTime::from_millis(100 + 10 * i as u64),
                EventKind::NodeTimer {
                    node: conn.switch,
                    token: TimerToken::Connect { conn: ConnId(i) },
                },
            );
        }
        for (i, node) in sim.nodes.iter().enumerate() {
            if matches!(node, Node::Switch(_)) {
                sim.queue.schedule(
                    SimTime::from_secs(1) + SimTime::from_millis(i as u64),
                    EventKind::NodeTimer {
                        node: NodeId(i),
                        token: TimerToken::SwitchTick,
                    },
                );
            }
        }
        for i in 0..sim.controllers.len() {
            sim.queue.schedule(
                SimTime::from_secs(2) + SimTime::from_millis(i as u64),
                EventKind::ControllerTimer {
                    ctrl: i,
                    token: TimerToken::ControllerTick,
                },
            );
        }
        sim
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Installs the control-plane interposer (the attack injector).
    pub fn set_interposer(&mut self, interposer: Box<dyn Interposer>) {
        self.interposer = Some(interposer);
    }

    /// Schedules a workload command at absolute time `at`.
    pub fn schedule_command(&mut self, at: SimTime, cmd: HostCommand) {
        self.queue.schedule(at, EventKind::Command(cmd));
    }

    /// Runs the simulation until virtual time `t` (inclusive of events at
    /// `t`).
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            let (time, kind) = self.queue.pop().expect("peeked event");
            self.now = time;
            self.dispatch(kind);
        }
        self.now = self.now.max(t);
    }

    /// Runs for `d` more virtual time.
    pub fn run_for(&mut self, d: SimTime) {
        let t = self.now + d;
        self.run_until(t);
    }

    // ---- lookups ------------------------------------------------------

    /// The node id of the named host or switch.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// The named host.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a host.
    pub fn host(&self, name: &str) -> &Host {
        match &self.nodes[self.names[name].0] {
            Node::Host(h) => h,
            Node::Switch(_) => panic!("{name} is a switch, not a host"),
        }
    }

    /// The named switch.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a switch.
    pub fn switch(&self, name: &str) -> &Switch {
        match &self.nodes[self.names[name].0] {
            Node::Switch(s) => s,
            Node::Host(_) => panic!("{name} is a host, not a switch"),
        }
    }

    /// Metadata for every control connection, in id order.
    pub fn conn_infos(&self) -> Vec<ConnInfo> {
        self.connections
            .iter()
            .enumerate()
            .map(|(i, c)| ConnInfo {
                id: ConnId(i),
                controller: self.controllers[c.controller].name().to_string(),
                switch: match &self.nodes[c.switch.0] {
                    Node::Switch(s) => s.name().to_string(),
                    Node::Host(h) => h.name().to_string(),
                },
            })
            .collect()
    }

    /// All ping runs across all hosts, in node then start order.
    pub fn ping_stats(&self) -> Vec<PingStats> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Host(h) => Some(h.ping_stats()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// All iperf client runs across all hosts.
    pub fn iperf_stats(&self) -> Vec<IperfStats> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Host(h) => Some(h.iperf_stats()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// The simulation trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Disables per-event trace recording (counters stay on), for long
    /// benchmark runs.
    pub fn set_trace_events(&mut self, on: bool) {
        self.trace.record_events = on;
    }

    // ---- dispatch -----------------------------------------------------

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Frame { node, port, frame } => {
                let mut fx = Vec::new();
                match &mut self.nodes[node.0] {
                    Node::Host(h) => h.handle_frame(&frame, self.now, &mut fx),
                    Node::Switch(s) => s.handle_frame(port, frame, self.now, &mut fx),
                }
                self.apply_effects(node, fx);
            }
            EventKind::ProxyIngress {
                conn,
                direction,
                bytes,
            } => self.proxy_ingress(conn, direction, bytes),
            EventKind::ControlDeliver {
                conn,
                direction,
                bytes,
            } => match direction {
                Direction::SwitchToController => {
                    let ctrl = self.connections[conn.0].controller;
                    let sends = self.controllers[ctrl].handle_control(conn, &bytes, self.now);
                    for s in sends {
                        self.queue.schedule(
                            s.depart,
                            EventKind::ProxyIngress {
                                conn: s.conn,
                                direction: Direction::ControllerToSwitch,
                                bytes: s.bytes,
                            },
                        );
                    }
                }
                Direction::ControllerToSwitch => {
                    let node = self.connections[conn.0].switch;
                    let mut fx = Vec::new();
                    if let Node::Switch(s) = &mut self.nodes[node.0] {
                        s.handle_control(conn, &bytes, self.now, &mut fx);
                    }
                    self.apply_effects(node, fx);
                }
            },
            EventKind::NodeTimer { node, token } => {
                let mut fx = Vec::new();
                match (&mut self.nodes[node.0], token) {
                    (Node::Switch(s), TimerToken::SwitchTick) => s.tick(self.now, &mut fx),
                    (Node::Switch(s), TimerToken::Connect { conn }) => {
                        s.start_connect(conn, self.now, &mut fx)
                    }
                    (Node::Switch(s), TimerToken::HandshakeDeadline { conn, attempt }) => {
                        s.handshake_deadline(conn, attempt, self.now, &mut fx)
                    }
                    (Node::Host(h), token) => h.handle_timer(token, self.now, &mut fx),
                    _ => {}
                }
                self.apply_effects(node, fx);
            }
            EventKind::ControllerTimer { ctrl, .. } => {
                self.controllers[ctrl].tick(self.now);
                self.queue.schedule(
                    self.now + SimTime::from_secs(2),
                    EventKind::ControllerTimer {
                        ctrl,
                        token: TimerToken::ControllerTick,
                    },
                );
            }
            EventKind::Command(cmd) => self.apply_command(cmd),
            EventKind::InterposerWake => {
                if let Some(mut ip) = self.interposer.take() {
                    let actions = ip.on_wakeup(self.now);
                    self.interposer = Some(ip);
                    self.apply_interposer_actions(actions);
                }
            }
        }
    }

    /// The proxy point: every control-plane message lands here before
    /// delivery, and the interposer (if any) decides its fate.
    fn proxy_ingress(&mut self, conn: ConnId, direction: Direction, bytes: Vec<u8>) {
        let of_type = OfMessage::decode(&bytes).ok().map(|(m, _)| m.of_type());
        self.trace.push(
            self.now,
            TraceKind::ControlMessage {
                conn,
                direction,
                of_type,
                len: bytes.len(),
            },
        );
        match self.interposer.take() {
            Some(mut ip) => {
                let actions = ip.on_message(ProxiedMessage {
                    conn,
                    direction,
                    bytes: &bytes,
                    now: self.now,
                });
                self.interposer = Some(ip);
                self.apply_interposer_actions(actions);
            }
            None => {
                let latency = self.connections[conn.0].latency;
                self.queue.schedule(
                    self.now + latency,
                    EventKind::ControlDeliver {
                        conn,
                        direction,
                        bytes,
                    },
                );
            }
        }
    }

    fn apply_interposer_actions(&mut self, actions: InterposerActions) {
        for d in actions.deliveries {
            if d.conn.0 >= self.connections.len() {
                continue; // injected onto a nonexistent connection
            }
            let latency = self.connections[d.conn.0].latency;
            self.queue.schedule(
                self.now + latency + d.extra_delay,
                EventKind::ControlDeliver {
                    conn: d.conn,
                    direction: d.direction,
                    bytes: d.bytes,
                },
            );
        }
        for cmd in actions.commands {
            self.apply_command(cmd);
        }
        if let Some(at) = actions.wakeup {
            self.queue
                .schedule(at.max(self.now), EventKind::InterposerWake);
        }
    }

    fn apply_command(&mut self, cmd: HostCommand) {
        match cmd {
            HostCommand::Ping {
                host,
                dst,
                count,
                interval,
                label,
            } => {
                let mut fx = Vec::new();
                if let Node::Host(h) = &mut self.nodes[host.0] {
                    h.start_ping(dst, count, interval, label, self.now, &mut fx);
                }
                self.apply_effects(host, fx);
            }
            HostCommand::IperfServer { host, port } => {
                if let Node::Host(h) = &mut self.nodes[host.0] {
                    h.start_iperf_server(port);
                }
            }
            HostCommand::IperfClient {
                host,
                dst,
                port,
                duration,
                label,
            } => {
                let mut fx = Vec::new();
                if let Node::Host(h) = &mut self.nodes[host.0] {
                    h.start_iperf_client(dst, port, duration, label, self.now, &mut fx);
                }
                self.apply_effects(host, fx);
            }
            HostCommand::Marker { label } => {
                self.trace.push(self.now, TraceKind::Marker(label));
            }
        }
    }

    fn apply_effects(&mut self, node: NodeId, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Frame { out_port, frame } => {
                    let Some(&link_idx) = self.port_map.get(&(node, out_port)) else {
                        continue; // unconnected port
                    };
                    let link = &mut self.links[link_idx];
                    match link.transmit(node, frame.len(), self.now) {
                        TxOutcome::Arrives(at) => {
                            let far = link.opposite(node).expect("node attached");
                            self.queue.schedule(
                                at,
                                EventKind::Frame {
                                    node: far.node,
                                    port: far.port,
                                    frame,
                                },
                            );
                        }
                        TxOutcome::Dropped => self.frames_dropped += 1,
                    }
                }
                Effect::Control { conn, bytes } => {
                    // Only switches emit Control effects: direction fixed.
                    self.queue.schedule(
                        self.now,
                        EventKind::ProxyIngress {
                            conn,
                            direction: Direction::SwitchToController,
                            bytes,
                        },
                    );
                }
                Effect::Timer { at, token } => {
                    self.queue
                        .schedule(at.max(self.now), EventKind::NodeTimer { node, token });
                }
                Effect::Trace(kind) => self.trace.push(self.now, kind),
            }
        }
    }
}
