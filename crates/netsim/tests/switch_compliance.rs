//! An OFTest-style compliance suite for the simulated switch (the paper
//! notes ATTAIN subsumes OFTest's methodology, §IX-A): a scripted
//! controller drives one switch through the OpenFlow 1.0 request/reply
//! surface and checks every answer.

use attain_controllers::{Controller, ControllerKind, Outbox};
use attain_netsim::{HostCommand, NetworkBuilder, SimTime, Simulation};
use attain_openflow::{
    Action, DatapathId, FlowMod, FlowModFlags, Match, OfMessage, PacketIn, PortNo, StatsBody,
    StatsReplyBody, SwitchConfig, SwitchFeatures,
};
use std::sync::{Arc, Mutex};

/// A controller that sends a fixed script once the switch connects and
/// records every message it gets back.
struct ScriptedController {
    script: Vec<OfMessage>,
    received: Arc<Mutex<Vec<OfMessage>>>,
    features: Arc<Mutex<Option<SwitchFeatures>>>,
}

impl Controller for ScriptedController {
    fn kind(&self) -> ControllerKind {
        ControllerKind::Floodlight // immaterial for the script
    }

    fn on_switch_connect(&mut self, dpid: DatapathId, features: &SwitchFeatures, out: &mut Outbox) {
        *self.features.lock().expect("lock") = Some(features.clone());
        for msg in &self.script {
            out.send(dpid, msg.clone());
        }
    }

    fn on_packet_in(&mut self, _dpid: DatapathId, pi: &PacketIn, _out: &mut Outbox) {
        self.received
            .lock()
            .expect("lock")
            .push(OfMessage::PacketIn(pi.clone()));
    }

    fn on_message(&mut self, _dpid: DatapathId, msg: &OfMessage, _out: &mut Outbox) {
        self.received.lock().expect("lock").push(msg.clone());
    }
}

struct Rig {
    sim: Simulation,
    received: Arc<Mutex<Vec<OfMessage>>>,
    features: Arc<Mutex<Option<SwitchFeatures>>>,
}

fn rig(script: Vec<OfMessage>) -> Rig {
    let received = Arc::new(Mutex::new(Vec::new()));
    let features = Arc::new(Mutex::new(None));
    let mut b = NetworkBuilder::new();
    let h1 = b.host("h1", "10.0.0.1");
    let h2 = b.host("h2", "10.0.0.2");
    let s1 = b.switch("s1");
    b.link(h1, s1);
    b.link(h2, s1);
    let c1 = b.controller(
        "c1",
        Box::new(ScriptedController {
            script,
            received: Arc::clone(&received),
            features: Arc::clone(&features),
        }),
    );
    b.control(c1, s1);
    Rig {
        sim: b.build(),
        received,
        features,
    }
}

#[test]
fn features_reply_describes_the_datapath() {
    let mut r = rig(vec![]);
    r.sim.run_until(SimTime::from_secs(3));
    let features = r.features.lock().expect("lock").clone().expect("connected");
    assert_eq!(features.datapath_id, DatapathId(1));
    assert_eq!(features.n_tables, 1);
    assert_eq!(features.n_buffers, 256);
    assert_eq!(features.ports.len(), 2);
    assert!(features.ports.iter().any(|p| p.port_no == PortNo(1)));
    assert!(features.ports.iter().any(|p| p.port_no == PortNo(2)));
}

#[test]
fn barrier_get_config_and_desc_stats_are_answered_in_order() {
    let mut r = rig(vec![
        OfMessage::GetConfigRequest,
        OfMessage::StatsRequest(StatsBody::Desc),
        OfMessage::BarrierRequest,
    ]);
    r.sim.run_until(SimTime::from_secs(3));
    let received = r.received.lock().expect("lock").clone();
    assert_eq!(received.len(), 3, "one reply per request: {received:?}");
    let OfMessage::GetConfigReply(cfg) = &received[0] else {
        panic!("expected config reply first, got {:?}", received[0]);
    };
    assert_eq!(*cfg, SwitchConfig::default());
    let OfMessage::StatsReply(StatsReplyBody::Desc(desc)) = &received[1] else {
        panic!("expected desc stats second, got {:?}", received[1]);
    };
    assert_eq!(desc.dp_desc, "s1");
    assert!(desc.sw_desc.contains("attain-netsim"));
    assert_eq!(received[2], OfMessage::BarrierReply);
}

#[test]
fn flow_stats_and_aggregate_stats_reflect_installed_flows() {
    let fm1 = FlowMod::add(
        Match::exact_in_port(PortNo(1)),
        vec![Action::Output {
            port: PortNo(2),
            max_len: 0,
        }],
    );
    let fm2 = FlowMod::add(
        Match::exact_in_port(PortNo(2)),
        vec![Action::Output {
            port: PortNo(1),
            max_len: 0,
        }],
    );
    let mut r = rig(vec![
        OfMessage::FlowMod(fm1),
        OfMessage::FlowMod(fm2),
        OfMessage::StatsRequest(StatsBody::Flow {
            r#match: Match::all(),
            table_id: 0xff,
            out_port: PortNo::NONE,
        }),
        OfMessage::StatsRequest(StatsBody::Aggregate {
            r#match: Match::all(),
            table_id: 0xff,
            out_port: PortNo::NONE,
        }),
        OfMessage::StatsRequest(StatsBody::Table),
    ]);
    r.sim.run_until(SimTime::from_secs(3));
    let received = r.received.lock().expect("lock").clone();
    let flows = received
        .iter()
        .find_map(|m| match m {
            OfMessage::StatsReply(StatsReplyBody::Flow(f)) => Some(f.clone()),
            _ => None,
        })
        .expect("flow stats reply");
    assert_eq!(flows.len(), 2);
    let agg = received
        .iter()
        .find_map(|m| match m {
            OfMessage::StatsReply(StatsReplyBody::Aggregate(a)) => Some(*a),
            _ => None,
        })
        .expect("aggregate stats reply");
    assert_eq!(agg.flow_count, 2);
    let tables = received
        .iter()
        .find_map(|m| match m {
            OfMessage::StatsReply(StatsReplyBody::Table(t)) => Some(t.clone()),
            _ => None,
        })
        .expect("table stats reply");
    assert_eq!(tables[0].active_count, 2);
}

#[test]
fn send_flow_rem_yields_flow_removed_on_idle_expiry() {
    let mut fm = FlowMod::add(
        Match::exact_in_port(PortNo(1)),
        vec![Action::Output {
            port: PortNo(2),
            max_len: 0,
        }],
    );
    fm.idle_timeout = 2;
    fm.flags = FlowModFlags(FlowModFlags::SEND_FLOW_REM);
    let mut r = rig(vec![OfMessage::FlowMod(fm)]);
    r.sim.run_until(SimTime::from_secs(10));
    let received = r.received.lock().expect("lock").clone();
    let removed = received
        .iter()
        .find_map(|m| match m {
            OfMessage::FlowRemoved(fr) => Some(fr.clone()),
            _ => None,
        })
        .expect("flow removed notification");
    assert_eq!(
        removed.reason,
        attain_openflow::FlowRemovedReason::IdleTimeout
    );
    assert_eq!(removed.idle_timeout, 2);
}

#[test]
fn check_overlap_rejection_reaches_the_controller() {
    let base = FlowMod::add(
        Match::exact_in_port(PortNo(1)),
        vec![Action::Output {
            port: PortNo(2),
            max_len: 0,
        }],
    );
    let mut overlapping = FlowMod::add(
        Match::all(),
        vec![Action::Output {
            port: PortNo(2),
            max_len: 0,
        }],
    );
    overlapping.priority = base.priority;
    overlapping.flags = FlowModFlags(FlowModFlags::CHECK_OVERLAP);
    let mut r = rig(vec![
        OfMessage::FlowMod(base),
        OfMessage::FlowMod(overlapping),
    ]);
    r.sim.run_until(SimTime::from_secs(3));
    let received = r.received.lock().expect("lock").clone();
    let err = received
        .iter()
        .find_map(|m| match m {
            OfMessage::Error(e) => Some(e.clone()),
            _ => None,
        })
        .expect("overlap error");
    assert_eq!(err.error_type, attain_openflow::ErrorType::FlowModFailed);
    assert_eq!(err.code, attain_openflow::flow_mod_failed::OVERLAP);
}

#[test]
fn packet_out_to_controller_action_comes_back_as_packet_in() {
    // An OUTPUT:CONTROLLER flow turns data traffic into PACKET_INs with
    // reason ACTION — the monitoring primitive the paper's injector
    // builds on.
    let fm = FlowMod::add(
        Match::exact_in_port(PortNo(1)),
        vec![
            Action::Output {
                port: PortNo(2),
                max_len: 0,
            },
            Action::Output {
                port: PortNo::CONTROLLER,
                max_len: 64,
            },
        ],
    );
    // The scripted controller never forwards, so the reverse path needs
    // its own pre-installed flow.
    let reverse = FlowMod::add(
        Match::exact_in_port(PortNo(2)),
        vec![Action::Output {
            port: PortNo(1),
            max_len: 0,
        }],
    );
    let mut r = rig(vec![OfMessage::FlowMod(fm), OfMessage::FlowMod(reverse)]);
    let h1 = r.sim.node_id("h1").expect("h1 exists");
    r.sim.schedule_command(
        SimTime::from_secs(2),
        HostCommand::Ping {
            host: h1,
            dst: "10.0.0.2".parse().expect("valid"),
            count: 3,
            interval: SimTime::from_secs(1),
            label: "probe".into(),
        },
    );
    r.sim.run_until(SimTime::from_secs(10));
    let received = r.received.lock().expect("lock").clone();
    let mirrored: Vec<&PacketIn> = received
        .iter()
        .filter_map(|m| match m {
            OfMessage::PacketIn(pi) if pi.reason == attain_openflow::PacketInReason::Action => {
                Some(pi)
            }
            _ => None,
        })
        .collect();
    assert!(
        !mirrored.is_empty(),
        "OUTPUT:CONTROLLER must mirror traffic: {received:?}"
    );
    // max_len truncation is honored.
    assert!(mirrored.iter().all(|pi| pi.data.len() <= 64));
    // The ping still went through (the flow also outputs to port 2), so
    // replies flow (reply direction misses and is flooded by NoMatch
    // packet-ins — also visible to the controller).
    assert_eq!(r.sim.ping_stats()[0].received(), 3);
}
