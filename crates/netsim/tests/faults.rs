//! Environment-fault integration tests: link blackholes and flaps,
//! seeded loss determinism, controller crash → fail-mode behaviour →
//! restart reconvergence, switch power-cycles, and trace determinism.

use attain_controllers::{Controller, ControllerKind};
use attain_netsim::{
    FailMode, FaultPlan, HostCommand, NetworkBuilder, SimTime, Simulation, TraceKind,
};

fn controller_box(kind: ControllerKind) -> Box<dyn Controller> {
    kind.instantiate()
}

/// Two hosts, two switches in a line, one controller; `s1`/`s2` in
/// `mode`, faults from `plan`.
fn line_network(mode: FailMode, plan: &FaultPlan) -> Simulation {
    let mut b = NetworkBuilder::new();
    let h1 = b.host("h1", "10.0.0.1");
    let h2 = b.host("h2", "10.0.0.2");
    let s1 = b.switch_with_mode("s1", mode);
    let s2 = b.switch_with_mode("s2", mode);
    b.link(h1, s1);
    b.link(s1, s2);
    b.link(h2, s2);
    let c1 = b.controller("c1", controller_box(ControllerKind::Floodlight));
    b.control(c1, s1);
    b.control(c1, s2);
    b.fault_seed(plan.seed);
    for (at, spec) in &plan.events {
        b.fault_at(*at, spec.clone());
    }
    b.build()
}

fn ping(sim: &Simulation, count: u32, label: &str) -> HostCommand {
    HostCommand::Ping {
        host: sim.node_id("h1").unwrap(),
        dst: "10.0.0.2".parse().unwrap(),
        count,
        interval: SimTime::from_secs(1),
        label: label.into(),
    }
}

fn received(sim: &Simulation, label: &str) -> u32 {
    sim.ping_stats()
        .iter()
        .find(|s| s.label == label)
        .unwrap_or_else(|| panic!("no ping run labelled {label}"))
        .received()
}

fn fault_count(sim: &Simulation) -> usize {
    sim.trace()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Fault { .. }))
        .count()
}

#[test]
fn link_down_blackholes_until_up() {
    let mut plan = FaultPlan::seeded(1);
    plan.at_str(SimTime::from_secs(14), "link s1-s2 down")
        .unwrap();
    plan.at_str(SimTime::from_secs(25), "link s1-s2 up")
        .unwrap();
    let mut sim = line_network(FailMode::Secure, &plan);
    sim.schedule_command(SimTime::from_secs(5), ping(&sim, 5, "before"));
    sim.schedule_command(SimTime::from_secs(15), ping(&sim, 5, "during"));
    sim.schedule_command(SimTime::from_secs(30), ping(&sim, 5, "after"));
    sim.run_until(SimTime::from_secs(45));
    assert_eq!(received(&sim, "before"), 5);
    assert_eq!(received(&sim, "during"), 0, "downed link must blackhole");
    assert_eq!(received(&sim, "after"), 5, "link up must restore service");
    let s1s2 = &sim.link_stats()[1];
    assert!(s1s2.down_drops > 0, "drops must be counted on the link");
    assert_eq!(s1s2.down_events, 1);
    assert!(s1s2.up);
    assert_eq!(fault_count(&sim), 2, "one trace event per transition");
}

#[test]
fn link_flap_emits_paired_transitions_and_recovers() {
    let mut plan = FaultPlan::seeded(1);
    plan.at_str(SimTime::from_secs(10), "link s1-s2 flap 3 0.5 0.5")
        .unwrap();
    let mut sim = line_network(FailMode::Secure, &plan);
    sim.schedule_command(SimTime::from_secs(20), ping(&sim, 5, "after"));
    sim.run_until(SimTime::from_secs(30));
    assert_eq!(received(&sim, "after"), 5);
    assert_eq!(sim.link_stats()[1].down_events, 3);
    // 3 × (down + up) transitions.
    assert_eq!(fault_count(&sim), 6);
}

#[test]
fn seeded_loss_is_deterministic_and_counted() {
    let run = |seed: u64| {
        let mut plan = FaultPlan::seeded(seed);
        plan.at_str(SimTime::from_secs(4), "link s1-s2 loss 40")
            .unwrap();
        let mut sim = line_network(FailMode::Secure, &plan);
        sim.schedule_command(SimTime::from_secs(5), ping(&sim, 30, "lossy"));
        sim.run_until(SimTime::from_secs(45));
        let lost = sim.link_stats()[1].lost;
        (received(&sim, "lossy"), lost)
    };
    let (rx_a, lost_a) = run(7);
    let (rx_b, lost_b) = run(7);
    assert_eq!((rx_a, lost_a), (rx_b, lost_b), "same seed, same outcome");
    assert!(lost_a > 0, "40% loss over 30 trials must lose something");
    assert!(rx_a < 30);
    let (rx_c, lost_c) = run(8);
    assert!(
        (rx_c, lost_c) != (rx_a, lost_a) || rx_c < 30,
        "a different seed should draw a different stream"
    );
}

#[test]
fn degrade_slows_and_restore_recovers_rtt() {
    let mut plan = FaultPlan::seeded(1);
    plan.at_str(SimTime::from_secs(14), "link s1-s2 degrade delay 0.05")
        .unwrap();
    plan.at_str(SimTime::from_secs(25), "link s1-s2 restore")
        .unwrap();
    let mut sim = line_network(FailMode::Secure, &plan);
    sim.schedule_command(SimTime::from_secs(5), ping(&sim, 5, "before"));
    sim.schedule_command(SimTime::from_secs(15), ping(&sim, 5, "during"));
    sim.schedule_command(SimTime::from_secs(30), ping(&sim, 5, "after"));
    sim.run_until(SimTime::from_secs(45));
    let rtt = |label: &str| -> f64 {
        sim.ping_stats()
            .iter()
            .find(|s| s.label == label)
            .unwrap()
            .rtts_ms()
            .iter()
            .flatten()
            .copied()
            .fold(0.0, f64::max)
    };
    // 50 ms extra one-way propagation ⇒ ≥100 ms RTT while degraded.
    assert!(rtt("before") < 50.0);
    assert!(rtt("during") > 100.0, "degraded RTT {}", rtt("during"));
    assert!(rtt("after") < 50.0, "restore must undo the degrade");
}

#[test]
fn controller_crash_locks_down_fail_secure_until_restart() {
    let mut plan = FaultPlan::seeded(1);
    plan.at_str(SimTime::from_secs(20), "controller c1 crash")
        .unwrap();
    plan.at_str(SimTime::from_secs(50), "controller c1 restart")
        .unwrap();
    let mut sim = line_network(FailMode::Secure, &plan);
    sim.schedule_command(SimTime::from_secs(5), ping(&sim, 5, "before"));
    // Liveness declares the controller dead ≈15 s after the crash; probe
    // the lockdown window after installed flows idled out.
    sim.schedule_command(SimTime::from_secs(40), ping(&sim, 5, "during"));
    // Switches reconnect within a 5 s retry period of the restart.
    sim.schedule_command(SimTime::from_secs(60), ping(&sim, 5, "after"));
    sim.run_until(SimTime::from_secs(75));
    assert_eq!(received(&sim, "before"), 5);
    assert_eq!(received(&sim, "during"), 0, "fail-secure must lock down");
    assert_eq!(received(&sim, "after"), 5, "restart must reconverge");
    let report = sim.fault_report();
    assert_eq!(report.controllers[0].crashes, 1);
    assert_eq!(report.controllers[0].restarts, 1);
    assert!(report.controllers[0].alive);
    assert!(
        report.switches.iter().any(|s| s.secure_drops > 0),
        "lockdown drops must be counted: {report}"
    );
    assert!(
        sim.trace().events().iter().any(
            |e| matches!(&e.kind, TraceKind::FailModeEntered { standalone, .. } if !standalone)
        ),
        "lockdown must be traced"
    );
}

#[test]
fn controller_crash_fail_safe_falls_back_to_standalone() {
    let mut plan = FaultPlan::seeded(1);
    plan.at_str(SimTime::from_secs(20), "controller c1 crash")
        .unwrap();
    let mut sim = line_network(FailMode::Safe, &plan);
    sim.schedule_command(SimTime::from_secs(5), ping(&sim, 5, "before"));
    sim.schedule_command(SimTime::from_secs(40), ping(&sim, 5, "during"));
    sim.run_until(SimTime::from_secs(55));
    assert_eq!(received(&sim, "before"), 5);
    assert_eq!(
        received(&sim, "during"),
        5,
        "fail-safe standalone forwarding must carry traffic"
    );
    let report = sim.fault_report();
    assert!(
        report.switches.iter().any(|s| s.standalone_forwards > 0),
        "standalone forwarding must be counted: {report}"
    );
    assert!(!report.controllers[0].alive);
}

#[test]
fn switch_restart_wipes_state_and_rehandshakes() {
    let mut plan = FaultPlan::seeded(1);
    plan.at_str(SimTime::from_secs(15), "switch s1 restart")
        .unwrap();
    let mut sim = line_network(FailMode::Secure, &plan);
    sim.schedule_command(SimTime::from_secs(5), ping(&sim, 5, "before"));
    sim.schedule_command(SimTime::from_secs(20), ping(&sim, 5, "after"));
    sim.run_until(SimTime::from_secs(35));
    assert_eq!(received(&sim, "before"), 5);
    assert_eq!(
        received(&sim, "after"),
        5,
        "post-restart re-handshake must restore forwarding"
    );
    assert_eq!(sim.fault_report().switches[0].restarts, 1);
    assert!(sim.switch("s1").is_connected());
    // The wipe happened mid-run: before-pings installed flows, and the
    // after-pings had to re-miss to the controller.
    assert!(sim.switch("s1").flow_table().lookup_count > 0);
    // Two ConnectionUp events for s1's single connection: the original
    // handshake and the post-restart one. s1 holds conn 0.
    let ups = sim
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::ConnectionUp { conn } if conn.0 == 0))
        .count();
    assert_eq!(ups, 2, "restart must replay the handshake");
}

#[test]
fn same_seed_same_trace_different_seed_may_differ() {
    let run = |seed: u64| -> Vec<String> {
        let mut plan = FaultPlan::seeded(seed);
        plan.at_str(SimTime::from_secs(4), "link s1-s2 loss 30")
            .unwrap();
        plan.at_str(SimTime::from_secs(10), "link s1-s2 flap 2 0.5 0.5")
            .unwrap();
        plan.at_str(SimTime::from_secs(20), "controller c1 crash")
            .unwrap();
        plan.at_str(SimTime::from_secs(30), "controller c1 restart")
            .unwrap();
        let mut sim = line_network(FailMode::Secure, &plan);
        sim.schedule_command(SimTime::from_secs(5), ping(&sim, 25, "work"));
        sim.run_until(SimTime::from_secs(50));
        sim.trace().events().iter().map(|e| e.to_string()).collect()
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "identical seeds must reproduce identical traces");
    let c = run(43);
    assert_ne!(a, c, "a different seed should perturb the lossy trace");
}

#[test]
fn corruption_reaches_hosts_without_panicking() {
    let mut plan = FaultPlan::seeded(3);
    plan.at_str(SimTime::from_secs(4), "link s1-s2 corrupt 60")
        .unwrap();
    let mut sim = line_network(FailMode::Secure, &plan);
    sim.schedule_command(SimTime::from_secs(5), ping(&sim, 20, "corrupted"));
    sim.run_until(SimTime::from_secs(40));
    // Corrupted frames are delivered (and typically discarded by the
    // receiver's parser); nothing may panic and the count must show.
    assert!(sim.link_stats()[1].corrupted > 0);
    assert!(received(&sim, "corrupted") < 20);
}

#[test]
fn fault_free_runs_are_unperturbed_by_the_fault_machinery() {
    let run = |seed: u64| -> Vec<String> {
        let plan = FaultPlan::seeded(seed);
        let mut sim = line_network(FailMode::Secure, &plan);
        sim.schedule_command(SimTime::from_secs(5), ping(&sim, 10, "clean"));
        sim.run_until(SimTime::from_secs(20));
        sim.trace().events().iter().map(|e| e.to_string()).collect()
    };
    // With no loss/corruption configured the RNG is never consulted:
    // the seed must not influence the trace at all.
    assert_eq!(run(1), run(999));
}

#[test]
fn faults_arrive_via_host_command_strings_too() {
    let plan = FaultPlan::seeded(1);
    let mut sim = line_network(FailMode::Secure, &plan);
    let h1 = sim.node_id("h1").unwrap();
    let cmd = HostCommand::parse(h1, "fault link s1-s2 down").unwrap();
    sim.schedule_command(SimTime::from_secs(10), cmd);
    sim.schedule_command(SimTime::from_secs(12), ping(&sim, 3, "during"));
    sim.run_until(SimTime::from_secs(20));
    assert_eq!(received(&sim, "during"), 0);
    assert_eq!(fault_count(&sim), 1);
}

#[test]
fn unknown_fault_targets_are_traced_not_fatal() {
    let mut plan = FaultPlan::seeded(1);
    plan.at_str(SimTime::from_secs(5), "link s1-s9 down")
        .unwrap();
    plan.at_str(SimTime::from_secs(5), "controller c9 crash")
        .unwrap();
    plan.at_str(SimTime::from_secs(5), "switch s9 restart")
        .unwrap();
    let mut sim = line_network(FailMode::Secure, &plan);
    sim.schedule_command(SimTime::from_secs(6), ping(&sim, 3, "fine"));
    sim.run_until(SimTime::from_secs(15));
    assert_eq!(received(&sim, "fine"), 3, "unknown targets must be inert");
    let ignored = sim
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(&e.kind, TraceKind::Fault { what, .. } if what.contains("ignored")))
        .count();
    assert_eq!(ignored, 3);
}
