//! Property-based tests on the simulator substrate: flow-table
//! semantics, link timing invariants, and command parsing.

use attain_netsim::{FlowTable, Link, LinkEnd, NodeId, SimTime};
use attain_openflow::{
    Action, FlowKey, FlowMod, FlowModCommand, MacAddr, Match, PortNo, Wildcards,
};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = FlowKey> {
    (
        1u16..8,
        0u64..8,
        0u64..8,
        prop_oneof![Just(0x0800u16), Just(0x0806u16)],
        0u8..3,
        0u32..16,
        0u32..16,
        0u16..4,
        0u16..4,
    )
        .prop_map(
            |(in_port, src, dst, dl_type, nw_proto, nw_src, nw_dst, tp_src, tp_dst)| FlowKey {
                in_port: PortNo(in_port),
                dl_src: MacAddr::from_low(src),
                dl_dst: MacAddr::from_low(dst),
                dl_vlan: 0xffff,
                dl_vlan_pcp: 0,
                dl_type,
                nw_tos: 0,
                nw_proto,
                nw_src,
                nw_dst,
                tp_src,
                tp_dst,
            },
        )
}

fn arb_match() -> impl Strategy<Value = (Match, u16)> {
    // A match derived from a key with a random subset of wildcards, plus
    // a priority.
    (arb_key(), 0u32..0x3f_ffff, 0u16..100).prop_map(|(key, wild_bits, priority)| {
        let mut m = Match::from_flow_key(&key);
        // Only flag-bit wildcards (keep the nw prefixes exact) for
        // simpler reasoning; coverage of prefix wildcards lives in the
        // openflow crate's own tests.
        m.wildcards = Wildcards(wild_bits & 0xff);
        (m, priority)
    })
}

proptest! {
    /// Lookup returns an entry only if that entry's match admits the key,
    /// and among admitting entries it never picks a lower-priority
    /// wildcarded entry over a higher-priority one.
    #[test]
    fn flow_table_lookup_soundness(
        entries in proptest::collection::vec(arb_match(), 0..24),
        key in arb_key(),
    ) {
        let mut table = FlowTable::default();
        for (i, (m, priority)) in entries.iter().enumerate() {
            let fm = FlowMod {
                priority: *priority,
                ..FlowMod::add(
                    *m,
                    vec![Action::Output { port: PortNo(100 + i as u16), max_len: 0 }],
                )
            };
            // Identical match+priority pairs replace; that is fine.
            table.apply(&fm, SimTime::ZERO).expect("capacity not reached");
        }
        let admitting: Vec<&(Match, u16)> =
            entries.iter().filter(|(m, _)| m.matches(&key)).collect();
        let result = table.lookup(&key, 64, SimTime::ZERO);
        if admitting.is_empty() {
            prop_assert!(result.is_none());
        } else {
            let actions = result.expect("some admitting entry wins");
            // The winner is one of the admitting entries.
            let winner_port = match actions[0] {
                Action::Output { port, .. } => port,
                _ => unreachable!("all entries output"),
            };
            prop_assert!(winner_port.0 >= 100);
            // No admitting exact entry may lose to a wildcarded one, and
            // among same-exactness entries priority is respected — check
            // via the table's own entries (replacements make index-based
            // checks unreliable).
            let best_live = table
                .entries()
                .iter()
                .filter(|e| e.r#match.matches(&key))
                .map(|e| (e.is_exact(), e.priority))
                .max()
                .expect("an entry admitted the key");
            let winner = table
                .entries()
                .iter()
                .find(|e| e.actions == actions)
                .expect("winner is a live entry");
            prop_assert_eq!((winner.is_exact(), winner.priority), best_live);
        }
    }

    /// Non-strict delete removes exactly the subsumed entries.
    #[test]
    fn flow_table_delete_subsumption(
        entries in proptest::collection::vec(arb_match(), 1..16),
        selector in arb_match(),
    ) {
        let mut table = FlowTable::default();
        for (m, priority) in &entries {
            let fm = FlowMod { priority: *priority, ..FlowMod::add(*m, vec![]) };
            table.apply(&fm, SimTime::ZERO).expect("capacity not reached");
        }
        let before: Vec<Match> = table.entries().iter().map(|e| e.r#match).collect();
        let del = FlowMod {
            command: FlowModCommand::Delete,
            ..FlowMod::add(selector.0, vec![])
        };
        table.apply(&del, SimTime::ZERO).expect("delete never fails");
        let after: Vec<Match> = table.entries().iter().map(|e| e.r#match).collect();
        for m in &before {
            let kept = after.contains(m);
            let subsumed = selector.0.subsumes(m);
            prop_assert_eq!(kept, !subsumed, "match {} subsumed={}", m, subsumed);
        }
    }

    /// Per-direction link arrivals are monotone in offer order and never
    /// earlier than tx-time + propagation.
    #[test]
    fn link_arrivals_are_monotone(
        frames in proptest::collection::vec((64usize..1514, 0u64..1_000_000), 1..50),
    ) {
        let mut link = Link::new(
            LinkEnd { node: NodeId(0), port: PortNo(1) },
            LinkEnd { node: NodeId(1), port: PortNo(1) },
            100_000_000,
            SimTime::from_micros(250),
        );
        let mut last_arrival = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for (bytes, gap_ns) in frames {
            now += SimTime::from_nanos(gap_ns);
            match link.transmit(NodeId(0), bytes, now) {
                attain_netsim::TxOutcome::Arrives(at) => {
                    prop_assert!(at >= last_arrival, "reordering on the wire");
                    prop_assert!(at >= now + link.tx_time(bytes) + link.delay);
                    last_arrival = at;
                }
                attain_netsim::TxOutcome::Dropped => {}
            }
        }
    }
}
