//! Property-based tests on the simulator substrate: flow-table
//! semantics, link timing invariants, and command parsing.
//!
//! The flow table's two-tier classifier is checked differentially: a
//! reference implementation preserving the original linear-scan
//! semantics lives in this file, and random command sequences are driven
//! through both, asserting identical winners, counters, and removals.

use attain_netsim::{EvictionPolicy, FlowModError, FlowTable, Link, LinkEnd, NodeId, SimTime};
use attain_openflow::{
    Action, FlowKey, FlowKeyBits, FlowMod, FlowModCommand, FlowModFlags, FlowRemovedReason,
    MacAddr, Match, PortNo, Wildcards,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Reference model: the flat-Vec linear scan the classifier replaced,
// kept verbatim as the semantic oracle.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
struct RefEntry {
    m: Match,
    priority: u16,
    actions: Vec<Action>,
    cookie: u64,
    idle_timeout: u16,
    hard_timeout: u16,
    send_flow_rem: bool,
    installed_at: SimTime,
    last_matched: SimTime,
    packet_count: u64,
    byte_count: u64,
}

impl RefEntry {
    fn from_mod(fm: &FlowMod, now: SimTime) -> RefEntry {
        RefEntry {
            m: fm.r#match,
            priority: fm.priority,
            actions: fm.actions.clone(),
            cookie: fm.cookie,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            send_flow_rem: fm.flags.has(FlowModFlags::SEND_FLOW_REM),
            installed_at: now,
            last_matched: now,
            packet_count: 0,
            byte_count: 0,
        }
    }

    fn is_exact(&self) -> bool {
        self.m.wildcards.0 & 0xff == 0
            && !self.m.wildcards.has(Wildcards::DL_VLAN_PCP)
            && !self.m.wildcards.has(Wildcards::NW_TOS)
            && self.m.wildcards.nw_src_ignored_bits() == 0
            && self.m.wildcards.nw_dst_ignored_bits() == 0
    }

    fn outputs_to(&self, port: PortNo) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a, Action::Output { port: p, .. } if *p == port))
    }
}

#[derive(Debug)]
struct RefTable {
    entries: Vec<RefEntry>,
    capacity: usize,
    policy: EvictionPolicy,
}

impl RefTable {
    fn with_policy(capacity: usize, policy: EvictionPolicy) -> RefTable {
        RefTable {
            entries: Vec::new(),
            capacity,
            policy,
        }
    }

    fn lookup(&mut self, key: &FlowKey, frame_len: usize, now: SimTime) -> Option<Vec<Action>> {
        let mut best: Option<usize> = None;
        let mut best_rank = (false, 0u16);
        for (i, e) in self.entries.iter().enumerate() {
            if !e.m.matches(key) {
                continue;
            }
            let rank = (e.is_exact(), e.priority);
            if best.is_none() || rank > best_rank {
                best = Some(i);
                best_rank = rank;
            }
        }
        let i = best?;
        let e = &mut self.entries[i];
        e.packet_count += 1;
        e.byte_count += frame_len as u64;
        e.last_matched = now;
        Some(e.actions.clone())
    }

    /// Returns `(added, removed, evicted)`, mirroring [`ApplyOutcome`].
    #[allow(clippy::type_complexity)]
    fn apply(
        &mut self,
        fm: &FlowMod,
        now: SimTime,
    ) -> Result<(bool, Vec<RefEntry>, Vec<RefEntry>), FlowModError> {
        match fm.command {
            FlowModCommand::Add => self.add(fm, now).map(|ev| (true, Vec::new(), ev)),
            FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                let strict = fm.command == FlowModCommand::ModifyStrict;
                let mut touched = false;
                for e in &mut self.entries {
                    let hit = if strict {
                        e.m == fm.r#match && e.priority == fm.priority
                    } else {
                        fm.r#match.subsumes(&e.m)
                    };
                    if hit {
                        e.actions = fm.actions.clone();
                        e.cookie = fm.cookie;
                        touched = true;
                    }
                }
                if touched {
                    Ok((false, Vec::new(), Vec::new()))
                } else {
                    self.add(fm, now).map(|ev| (true, Vec::new(), ev))
                }
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                let strict = fm.command == FlowModCommand::DeleteStrict;
                let mut removed = Vec::new();
                self.entries.retain(|e| {
                    let hit = if strict {
                        e.m == fm.r#match && e.priority == fm.priority
                    } else {
                        fm.r#match.subsumes(&e.m)
                    };
                    let hit = hit && (fm.out_port == PortNo::NONE || e.outputs_to(fm.out_port));
                    if hit && e.send_flow_rem {
                        removed.push(e.clone());
                    }
                    !hit
                });
                Ok((false, removed, Vec::new()))
            }
        }
    }

    fn add(&mut self, fm: &FlowMod, now: SimTime) -> Result<Vec<RefEntry>, FlowModError> {
        if fm.flags.has(FlowModFlags::CHECK_OVERLAP) {
            let overlapping = self
                .entries
                .iter()
                .any(|e| e.priority == fm.priority && e.m.overlaps(&fm.r#match));
            if overlapping {
                return Err(FlowModError::Overlap);
            }
        }
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.m == fm.r#match && e.priority == fm.priority)
        {
            *e = RefEntry::from_mod(fm, now);
            return Ok(Vec::new());
        }
        let mut evicted = Vec::new();
        if self.entries.len() >= self.capacity {
            match self.victim(fm.priority) {
                Some(i) => evicted.push(self.entries.remove(i)),
                None => return Err(FlowModError::TableFull),
            }
        }
        self.entries.push(RefEntry::from_mod(fm, now));
        Ok(evicted)
    }

    /// The victim index under the table's overflow policy: `entries` is
    /// insertion-ordered and `min_by_key` keeps the first minimum, so
    /// ties go to the oldest install — the contract the classifier must
    /// reproduce.
    fn victim(&self, incoming_priority: u16) -> Option<usize> {
        match self.policy {
            EvictionPolicy::Reject => None,
            EvictionPolicy::EvictLru => self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_matched)
                .map(|(i, _)| i),
            EvictionPolicy::EvictLowestPriority => {
                let (i, e) = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.priority)?;
                (e.priority <= incoming_priority).then_some(i)
            }
        }
    }

    fn expire(&mut self, now: SimTime) -> Vec<(RefEntry, FlowRemovedReason)> {
        let mut out = Vec::new();
        self.entries.retain(|e| {
            if e.hard_timeout > 0
                && now.saturating_sub(e.installed_at) >= SimTime::from_secs(e.hard_timeout as u64)
            {
                out.push((e.clone(), FlowRemovedReason::HardTimeout));
                return false;
            }
            if e.idle_timeout > 0
                && now.saturating_sub(e.last_matched) >= SimTime::from_secs(e.idle_timeout as u64)
            {
                out.push((e.clone(), FlowRemovedReason::IdleTimeout));
                return false;
            }
            true
        });
        out
    }
}

/// Field-by-field equality between a classifier entry and a reference
/// entry, including every counter and timestamp.
fn entries_agree(e: &attain_netsim::FlowEntry, r: &RefEntry) -> bool {
    e.r#match == r.m
        && e.priority == r.priority
        && e.actions[..] == r.actions[..]
        && e.cookie == r.cookie
        && e.idle_timeout == r.idle_timeout
        && e.hard_timeout == r.hard_timeout
        && e.send_flow_rem == r.send_flow_rem
        && e.installed_at == r.installed_at
        && e.last_matched == r.last_matched
        && e.packet_count == r.packet_count
        && e.byte_count == r.byte_count
}

/// One step of the differential script.
#[derive(Debug, Clone)]
enum Op {
    Mod(FlowMod),
    Lookup(FlowKey, usize),
    /// Advance the clock by this many seconds, then expire.
    Expire(u64),
}

fn arb_flow_mod() -> impl Strategy<Value = FlowMod> {
    (
        arb_rich_match(),
        0u8..5,
        any::<bool>(),
        any::<bool>(),
        0u16..4,
        0u16..4,
        0u16..3,
        0u16..3,
    )
        .prop_map(
            |((m, priority), cmd, flow_rem, overlap, idle, hard, out_sel, action_port)| {
                let mut flags = 0;
                if flow_rem {
                    flags |= FlowModFlags::SEND_FLOW_REM;
                }
                if overlap {
                    flags |= FlowModFlags::CHECK_OVERLAP;
                }
                FlowMod {
                    command: match cmd {
                        0 => FlowModCommand::Add,
                        1 => FlowModCommand::Modify,
                        2 => FlowModCommand::ModifyStrict,
                        3 => FlowModCommand::Delete,
                        _ => FlowModCommand::DeleteStrict,
                    },
                    priority,
                    idle_timeout: idle,
                    hard_timeout: hard,
                    flags: FlowModFlags(flags),
                    out_port: if out_sel == 0 {
                        PortNo::NONE
                    } else {
                        PortNo(100 + out_sel - 1)
                    },
                    cookie: action_port as u64,
                    ..FlowMod::add(
                        m,
                        vec![Action::Output {
                            port: PortNo(100 + action_port),
                            max_len: 0,
                        }],
                    )
                }
            },
        )
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_flow_mod().prop_map(Op::Mod),
        (arb_key(), 1usize..512).prop_map(|(k, len)| Op::Lookup(k, len)),
        (0u64..4).prop_map(Op::Expire),
    ]
}

fn arb_key() -> impl Strategy<Value = FlowKey> {
    (
        1u16..8,
        0u64..8,
        0u64..8,
        prop_oneof![Just(0x0800u16), Just(0x0806u16)],
        0u8..3,
        0u32..16,
        0u32..16,
        0u16..4,
        0u16..4,
    )
        .prop_map(
            |(in_port, src, dst, dl_type, nw_proto, nw_src, nw_dst, tp_src, tp_dst)| FlowKey {
                in_port: PortNo(in_port),
                dl_src: MacAddr::from_low(src),
                dl_dst: MacAddr::from_low(dst),
                dl_vlan: 0xffff,
                dl_vlan_pcp: 0,
                dl_type,
                nw_tos: 0,
                nw_proto,
                nw_src,
                nw_dst,
                tp_src,
                tp_dst,
            },
        )
}

fn arb_match() -> impl Strategy<Value = (Match, u16)> {
    // A match derived from a key with a random subset of wildcards, plus
    // a priority.
    (arb_key(), 0u32..0x3f_ffff, 0u16..100).prop_map(|(key, wild_bits, priority)| {
        let mut m = Match::from_flow_key(&key);
        // Only flag-bit wildcards (keep the nw prefixes exact) for
        // simpler reasoning; coverage of prefix wildcards lives in the
        // openflow crate's own tests.
        m.wildcards = Wildcards(wild_bits & 0xff);
        (m, priority)
    })
}

fn arb_rich_match() -> impl Strategy<Value = (Match, u16)> {
    // The full 22-bit wildcard space: field flags, VLAN PCP / ToS flags,
    // and CIDR prefix counts — everything the classifier's exact-tier
    // split and compiled masks have to decode.
    (arb_key(), 0u32..=0x3f_ffff, 0u16..100).prop_map(|(key, wild_bits, priority)| {
        let mut m = Match::from_flow_key(&key);
        m.wildcards = Wildcards(wild_bits);
        (m, priority)
    })
}

proptest! {
    /// Lookup returns an entry only if that entry's match admits the key,
    /// and among admitting entries it never picks a lower-priority
    /// wildcarded entry over a higher-priority one.
    #[test]
    fn flow_table_lookup_soundness(
        entries in proptest::collection::vec(arb_match(), 0..24),
        key in arb_key(),
    ) {
        let mut table = FlowTable::default();
        for (i, (m, priority)) in entries.iter().enumerate() {
            let fm = FlowMod {
                priority: *priority,
                ..FlowMod::add(
                    *m,
                    vec![Action::Output { port: PortNo(100 + i as u16), max_len: 0 }],
                )
            };
            // Identical match+priority pairs replace; that is fine.
            table.apply(&fm, SimTime::ZERO).expect("capacity not reached");
        }
        let admitting: Vec<&(Match, u16)> =
            entries.iter().filter(|(m, _)| m.matches(&key)).collect();
        let result = table.lookup(&key, 64, SimTime::ZERO);
        if admitting.is_empty() {
            prop_assert!(result.is_none());
        } else {
            let actions = result.expect("some admitting entry wins");
            // The winner is one of the admitting entries.
            let winner_port = match actions[0] {
                Action::Output { port, .. } => port,
                _ => unreachable!("all entries output"),
            };
            prop_assert!(winner_port.0 >= 100);
            // No admitting exact entry may lose to a wildcarded one, and
            // among same-exactness entries priority is respected — check
            // via the table's own entries (replacements make index-based
            // checks unreliable).
            let best_live = table
                .entries()
                .filter(|e| e.r#match.matches(&key))
                .map(|e| (e.is_exact(), e.priority))
                .max()
                .expect("an entry admitted the key");
            let winner = table
                .entries()
                .find(|e| e.actions == actions)
                .expect("winner is a live entry");
            prop_assert_eq!((winner.is_exact(), winner.priority), best_live);
        }
    }

    /// Non-strict delete removes exactly the subsumed entries.
    #[test]
    fn flow_table_delete_subsumption(
        entries in proptest::collection::vec(arb_match(), 1..16),
        selector in arb_match(),
    ) {
        let mut table = FlowTable::default();
        for (m, priority) in &entries {
            let fm = FlowMod { priority: *priority, ..FlowMod::add(*m, vec![]) };
            table.apply(&fm, SimTime::ZERO).expect("capacity not reached");
        }
        let before: Vec<Match> = table.entries().map(|e| e.r#match).collect();
        let del = FlowMod {
            command: FlowModCommand::Delete,
            ..FlowMod::add(selector.0, vec![])
        };
        table.apply(&del, SimTime::ZERO).expect("delete never fails");
        let after: Vec<Match> = table.entries().map(|e| e.r#match).collect();
        for m in &before {
            let kept = after.contains(m);
            let subsumed = selector.0.subsumes(m);
            prop_assert_eq!(kept, !subsumed, "match {} subsumed={}", m, subsumed);
        }
    }

    /// The compiled value/mask form of a match admits exactly the keys
    /// its interpreted form does, over the full wildcard space.
    #[test]
    fn compiled_match_agrees_with_interpreter(
        m in arb_rich_match(),
        keys in proptest::collection::vec(arb_key(), 1..16),
    ) {
        let bits = m.0.compile();
        for key in &keys {
            prop_assert_eq!(
                bits.matches(&FlowKeyBits::from_key(key)),
                m.0.matches(key),
                "compiled/interpreted divergence for {} on {:?}",
                m.0,
                key
            );
        }
    }

    /// Differential test: random add/modify/delete/lookup/expire command
    /// sequences produce bit-for-bit identical winners, counters, errors,
    /// removal notifications (in order), and eviction victims in the
    /// two-tier classifier and the reference linear scan — under each of
    /// the three overflow policies. Eviction interleaved with expiry and
    /// slot reuse is exactly the regime where a stale heap deadline or a
    /// mis-unlinked index would diverge.
    #[test]
    fn classifier_matches_reference_scan(
        ops in proptest::collection::vec(arb_op(), 0..48),
        capacity in 1usize..12,
        policy in prop_oneof![
            Just(EvictionPolicy::Reject),
            Just(EvictionPolicy::EvictLru),
            Just(EvictionPolicy::EvictLowestPriority),
        ],
    ) {
        let mut table = FlowTable::with_policy(capacity, policy);
        let mut model = RefTable::with_policy(capacity, policy);
        let mut now = SimTime::ZERO;
        for op in &ops {
            match op {
                Op::Mod(fm) => {
                    let got = table.apply(fm, now);
                    let want = model.apply(fm, now);
                    match (got, want) {
                        (Ok(g), Ok(w)) => {
                            prop_assert_eq!(g.added, w.0, "added flag diverged on {:?}", fm);
                            prop_assert_eq!(
                                g.removed.len(), w.1.len(),
                                "removal count diverged on {:?}", fm
                            );
                            for (ge, we) in g.removed.iter().zip(&w.1) {
                                prop_assert!(
                                    entries_agree(ge, we),
                                    "removed entry diverged: {:?} vs {:?}", ge, we
                                );
                            }
                            prop_assert_eq!(
                                g.evicted.len(), w.2.len(),
                                "eviction count diverged on {:?}", fm
                            );
                            for (ge, we) in g.evicted.iter().zip(&w.2) {
                                prop_assert!(
                                    entries_agree(ge, we),
                                    "evicted entry diverged: {:?} vs {:?}", ge, we
                                );
                            }
                            if policy == EvictionPolicy::Reject {
                                prop_assert!(
                                    g.evicted.is_empty(),
                                    "the reject policy must never evict"
                                );
                            }
                        }
                        (Err(g), Err(w)) => prop_assert_eq!(g, w),
                        (g, w) => prop_assert!(
                            false,
                            "outcome diverged on {:?}: classifier {:?}, reference {:?}",
                            fm, g.is_ok(), w.is_ok()
                        ),
                    }
                }
                Op::Lookup(key, frame_len) => {
                    let got = table.lookup(key, *frame_len, now);
                    let want = model.lookup(key, *frame_len, now);
                    match (&got, &want) {
                        (Some(g), Some(w)) => prop_assert_eq!(
                            &g[..], &w[..], "winning actions diverged for {:?}", key
                        ),
                        (None, None) => {}
                        _ => prop_assert!(
                            false,
                            "hit/miss diverged for {:?}: classifier {}, reference {}",
                            key, got.is_some(), want.is_some()
                        ),
                    }
                }
                Op::Expire(dt) => {
                    now = SimTime(now.0 + SimTime::from_secs(*dt).0);
                    let got = table.expire(now);
                    let want = model.expire(now);
                    prop_assert_eq!(got.len(), want.len(), "expiry count diverged at {:?}", now);
                    for ((ge, gr), (we, wr)) in got.iter().zip(&want) {
                        prop_assert!(
                            entries_agree(ge, we),
                            "expired entry diverged: {:?} vs {:?}", ge, we
                        );
                        prop_assert_eq!(gr, wr, "expiry reason diverged for {:?}", ge.r#match);
                    }
                }
            }
            // Full-state check after every step: same entries, same order,
            // same counters.
            prop_assert_eq!(table.len(), model.entries.len());
            for (e, r) in table.entries().zip(&model.entries) {
                prop_assert!(
                    entries_agree(e, r),
                    "live entry diverged: {:?} vs {:?}", e, r
                );
            }
        }
    }

    /// Steady-state residency under eviction: filling a table with
    /// distinct same-priority exact entries keeps exactly the newest
    /// `capacity` of them resident, under both evicting policies (equal
    /// priorities and untouched recency reduce both to FIFO). Every
    /// survivor must still win its lookup after the evictions churned
    /// slots; every evicted key must miss.
    #[test]
    fn eviction_keeps_the_newest_entries_resident(
        n in 1usize..32,
        capacity in 1usize..8,
        policy in prop_oneof![
            Just(EvictionPolicy::EvictLru),
            Just(EvictionPolicy::EvictLowestPriority),
        ],
    ) {
        let mut table = FlowTable::with_policy(capacity, policy);
        for i in 0..n {
            let key = FlowKey { in_port: PortNo(i as u16 + 1), ..FlowKey::default() };
            let add = FlowMod::add(
                Match::from_flow_key(&key),
                vec![Action::Output { port: PortNo(100 + i as u16), max_len: 0 }],
            );
            table
                .apply(&add, SimTime::from_secs(i as u64))
                .expect("equal-priority adds are always admitted");
        }
        prop_assert_eq!(table.len(), n.min(capacity));
        prop_assert_eq!(table.eviction_count, n.saturating_sub(capacity) as u64);
        let now = SimTime::from_secs(n as u64);
        for i in 0..n {
            let key = FlowKey { in_port: PortNo(i as u16 + 1), ..FlowKey::default() };
            let hit = table.lookup(&key, 64, now);
            if i + capacity >= n {
                let actions = hit.expect("surviving entry must still match");
                prop_assert_eq!(
                    &actions[..],
                    &[Action::Output { port: PortNo(100 + i as u16), max_len: 0 }][..]
                );
            } else {
                prop_assert!(hit.is_none(), "evicted entry {} still matches", i);
            }
        }
    }

    /// Per-direction link arrivals are monotone in offer order and never
    /// earlier than tx-time + propagation.
    #[test]
    fn link_arrivals_are_monotone(
        frames in proptest::collection::vec((64usize..1514, 0u64..1_000_000), 1..50),
    ) {
        let mut link = Link::new(
            LinkEnd { node: NodeId(0), port: PortNo(1) },
            LinkEnd { node: NodeId(1), port: PortNo(1) },
            100_000_000,
            SimTime::from_micros(250),
        );
        let mut last_arrival = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for (bytes, gap_ns) in frames {
            now += SimTime::from_nanos(gap_ns);
            match link.transmit(NodeId(0), bytes, now) {
                attain_netsim::TxOutcome::Arrives(at) => {
                    prop_assert!(at >= last_arrival, "reordering on the wire");
                    prop_assert!(at >= now + link.tx_time(bytes) + link.delay);
                    last_arrival = at;
                }
                attain_netsim::TxOutcome::Dropped => {}
            }
        }
    }
}
