//! End-to-end capacity inference: the probe host recovers a switch's
//! configured flow-table capacity from data-plane RTTs alone, under
//! each overflow policy.
//!
//! The victim controller is Ryu: its `simple_switch` installs permanent
//! L2 flows, so idle/hard expiry cannot confound residency, and every
//! spoofed source costs exactly two entries (request + reply
//! direction). The probe's estimate is exact for even capacities.

use attain_controllers::Ryu;
use attain_netsim::{
    EvictionPolicy, HostCommand, NetworkBuilder, SimTime, Simulation, TraceDigest,
};

/// Probe host, victim host, one bounded switch, a Ryu controller.
fn probe_network(capacity: usize, policy: EvictionPolicy) -> Simulation {
    let mut b = NetworkBuilder::new();
    let h1 = b.host("h1", "10.0.0.1");
    let h2 = b.host("h2", "10.0.0.2");
    let s1 = b.switch("s1");
    b.set_table(s1, capacity, policy);
    b.link(h1, s1);
    b.link(h2, s1);
    let c1 = b.controller("c1", Box::new(Ryu::new()));
    b.control(c1, s1);
    b.build()
}

/// Runs one probe to completion and returns (estimate, trace digest).
fn run_probe(capacity: usize, policy: EvictionPolicy, fill: u32) -> (Option<usize>, TraceDigest) {
    let mut sim = probe_network(capacity, policy);
    let h1 = sim.node_id("h1").unwrap();
    sim.schedule_command(
        SimTime::from_secs(10),
        HostCommand::Probe {
            host: h1,
            dst: "10.0.0.2".parse().unwrap(),
            fill,
            gap: SimTime::from_millis(10),
            label: format!("capprobe {} {}", capacity, policy.name()),
        },
    );
    // Warmup + fill + settle + sweep at one packet per 10 ms.
    let horizon = 10 + (2 * fill as u64 + 20) / 100 + 2;
    sim.run_until(SimTime::from_secs(horizon));
    let stats = &sim.probe_stats()[0];
    assert!(stats.is_done(), "probe did not finish by t={horizon}s");
    (stats.estimate(), sim.trace().digest())
}

#[test]
fn recovers_capacity_64_under_every_policy() {
    for policy in [
        EvictionPolicy::Reject,
        EvictionPolicy::EvictLru,
        EvictionPolicy::EvictLowestPriority,
    ] {
        let (estimate, _) = run_probe(64, policy, 64);
        let estimate = estimate.expect("no estimate");
        assert!(
            (estimate as i64 - 64).unsigned_abs() as f64 <= 64.0 * 0.05,
            "{}: estimated {estimate}, configured 64",
            policy.name()
        );
    }
}

#[test]
fn recovers_capacity_256_under_every_policy() {
    for policy in [
        EvictionPolicy::Reject,
        EvictionPolicy::EvictLru,
        EvictionPolicy::EvictLowestPriority,
    ] {
        let (estimate, _) = run_probe(256, policy, 256);
        let estimate = estimate.expect("no estimate");
        assert!(
            (estimate as i64 - 256).unsigned_abs() as f64 <= 256.0 * 0.05,
            "{}: estimated {estimate}, configured 256",
            policy.name()
        );
    }
}

#[test]
fn recovers_capacity_1024_under_every_policy() {
    for policy in [
        EvictionPolicy::Reject,
        EvictionPolicy::EvictLru,
        EvictionPolicy::EvictLowestPriority,
    ] {
        let (estimate, _) = run_probe(1024, policy, 1024);
        let estimate = estimate.expect("no estimate");
        assert!(
            (estimate as i64 - 1024).unsigned_abs() as f64 <= 1024.0 * 0.05,
            "{}: estimated {estimate}, configured 1024",
            policy.name()
        );
    }
}

#[test]
fn unbounded_table_reports_fill_exhausted() {
    // Against the default (unbounded) table nothing is ever evicted:
    // every sweep probe is fast, so the estimate saturates at
    // 2*fill + 2 — a lower bound, not a capacity.
    let mut sim = {
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        let h2 = b.host("h2", "10.0.0.2");
        let s1 = b.switch("s1");
        b.link(h1, s1);
        b.link(h2, s1);
        let c1 = b.controller("c1", Box::new(Ryu::new()));
        b.control(c1, s1);
        b.build()
    };
    let h1 = sim.node_id("h1").unwrap();
    sim.schedule_command(
        SimTime::from_secs(10),
        HostCommand::Probe {
            host: h1,
            dst: "10.0.0.2".parse().unwrap(),
            fill: 32,
            gap: SimTime::from_millis(10),
            label: "capprobe unbounded".into(),
        },
    );
    sim.run_until(SimTime::from_secs(15));
    let stats = &sim.probe_stats()[0];
    assert_eq!(stats.fast_count(), 32);
    assert_eq!(stats.estimate(), Some(2 * 32 + 2));
}

#[test]
fn probe_runs_are_deterministic() {
    let (e1, d1) = run_probe(64, EvictionPolicy::EvictLru, 64);
    let (e2, d2) = run_probe(64, EvictionPolicy::EvictLru, 64);
    assert_eq!(e1, e2);
    assert_eq!(d1, d2, "same-seed probe runs must be byte-identical");
}

#[test]
fn post_build_table_config_matches_builder_config() {
    // Simulation::set_table_config (the campaign's entry point) and
    // NetworkBuilder::set_table configure the same bounded table.
    let mut sim = {
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        let h2 = b.host("h2", "10.0.0.2");
        let s1 = b.switch("s1");
        b.link(h1, s1);
        b.link(h2, s1);
        let c1 = b.controller("c1", Box::new(Ryu::new()));
        b.control(c1, s1);
        b.build()
    };
    sim.set_table_config("s1", 64, EvictionPolicy::EvictLru);
    assert_eq!(sim.switch("s1").flow_table().capacity(), 64);
    assert_eq!(
        sim.switch("s1").flow_table().policy(),
        EvictionPolicy::EvictLru
    );
    let h1 = sim.node_id("h1").unwrap();
    sim.schedule_command(
        SimTime::from_secs(10),
        HostCommand::Probe {
            host: h1,
            dst: "10.0.0.2".parse().unwrap(),
            fill: 64,
            gap: SimTime::from_millis(10),
            label: "capprobe post-build".into(),
        },
    );
    sim.run_until(SimTime::from_secs(14));
    assert_eq!(sim.probe_stats()[0].estimate(), Some(64));
}
