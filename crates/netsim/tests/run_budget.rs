//! Run-budget semantics: deterministic halts, livelock detection, and
//! cooperative cancellation.

use attain_controllers::Floodlight;
use attain_netsim::{
    CancelToken, HaltReason, HostCommand, Interposer, InterposerActions, NetworkBuilder,
    ProxiedMessage, RunBudget, SimTime, TraceKind,
};

fn build(budget: RunBudget) -> attain_netsim::Simulation {
    let mut b = NetworkBuilder::new();
    let h1 = b.host("h1", "10.0.0.1");
    let h2 = b.host("h2", "10.0.0.2");
    let s1 = b.switch("s1");
    b.link(h1, s1);
    b.link(h2, s1);
    let c1 = b.controller("c1", Box::new(Floodlight::new()));
    b.control(c1, s1);
    b.run_budget(budget);
    let mut sim = b.build();
    sim.schedule_command(
        SimTime::from_secs(5),
        HostCommand::Ping {
            host: h1,
            dst: "10.0.0.2".parse().unwrap(),
            count: 10,
            interval: SimTime::from_secs(1),
            label: "h1->h2".into(),
        },
    );
    sim
}

/// An interposer that reschedules itself at `now` forever: virtual time
/// stops advancing the moment the first control message reaches it.
struct Spin;

impl Interposer for Spin {
    fn on_message(&mut self, msg: ProxiedMessage<'_>) -> InterposerActions {
        let mut a = InterposerActions::pass(&msg);
        a.wakeup = Some(msg.now);
        a
    }

    fn on_wakeup(&mut self, now: SimTime) -> InterposerActions {
        InterposerActions {
            wakeup: Some(now),
            ..InterposerActions::default()
        }
    }
}

#[test]
fn unlimited_budget_reaches_the_horizon() {
    let mut sim = build(RunBudget::unlimited());
    assert_eq!(sim.run_until(SimTime::from_secs(20)), HaltReason::Horizon);
    assert_eq!(sim.ping_stats()[0].received(), 10);
    assert!(sim.halt_reason().is_none());
    assert!(sim.events_dispatched() > 0);
}

#[test]
fn event_budget_halts_are_sticky_and_traced() {
    let mut sim = build(RunBudget::unlimited().with_max_events(50));
    let halt = sim.run_until(SimTime::from_secs(20));
    assert_eq!(halt, HaltReason::EventBudget { events: 50 });
    assert_eq!(sim.events_dispatched(), 50);
    // Sticky: a further run dispatches nothing and reports the same.
    let before = sim.events_dispatched();
    assert_eq!(sim.run_until(SimTime::from_secs(40)), halt);
    assert_eq!(sim.events_dispatched(), before);
    // The halt is part of the record.
    assert!(sim.trace().events().iter().any(|e| matches!(
        e.kind,
        TraceKind::RunHalted {
            reason: "event-budget",
            events: 50,
        }
    )));
}

#[test]
fn budget_halts_reproduce_same_seed_byte_identical_traces() {
    let run = || {
        let mut sim = build(RunBudget::unlimited().with_max_events(120));
        sim.set_fault_seed(7);
        let halt = sim.run_until(SimTime::from_secs(20));
        (halt, sim.now(), sim.trace().digest())
    };
    let (halt_a, now_a, digest_a) = run();
    let (halt_b, now_b, digest_b) = run();
    assert_eq!(halt_a, HaltReason::EventBudget { events: 120 });
    assert_eq!(halt_a, halt_b);
    assert_eq!(now_a, now_b);
    assert_eq!(digest_a, digest_b);
    // And the digest differs from an unbudgeted run: the halt event is
    // real trace content, not an out-of-band flag.
    let mut free = build(RunBudget::unlimited());
    free.set_fault_seed(7);
    free.run_until(SimTime::from_secs(20));
    assert_ne!(digest_a, free.trace().digest());
}

#[test]
fn livelock_detector_catches_a_stuck_instant() {
    let mut sim = build(RunBudget::unlimited().with_livelock_bound(1_000));
    sim.set_interposer(Box::new(Spin));
    let halt = sim.run_until(SimTime::from_secs(20));
    assert_eq!(
        halt,
        HaltReason::Livelock {
            events_at_instant: 1_000,
        }
    );
    // Virtual time froze well before the horizon.
    assert!(sim.now() < SimTime::from_secs(20));
    // Deterministic: a second identical run halts at the same instant
    // with the same digest.
    let mut again = build(RunBudget::unlimited().with_livelock_bound(1_000));
    again.set_interposer(Box::new(Spin));
    assert_eq!(again.run_until(SimTime::from_secs(20)), halt);
    assert_eq!(again.now(), sim.now());
    assert_eq!(again.trace().digest(), sim.trace().digest());
}

#[test]
fn healthy_runs_never_trip_the_livelock_bound() {
    let mut sim = build(RunBudget::unlimited().with_livelock_bound(1_000));
    assert_eq!(sim.run_until(SimTime::from_secs(20)), HaltReason::Horizon);
    // Identical digest to a fully unbudgeted run: an untripped budget
    // leaves no trace residue.
    let mut free = build(RunBudget::unlimited());
    free.run_until(SimTime::from_secs(20));
    assert_eq!(sim.trace().digest(), free.trace().digest());
}

#[test]
fn cancellation_stops_the_run_without_touching_the_trace() {
    let token = CancelToken::new();
    let mut sim = build(RunBudget::unlimited().with_cancel(token.clone()));
    // Run half way, snapshot, cancel, try to continue.
    assert_eq!(sim.run_until(SimTime::from_secs(8)), HaltReason::Horizon);
    let digest = sim.trace().digest();
    token.cancel();
    assert_eq!(sim.run_until(SimTime::from_secs(20)), HaltReason::Cancelled);
    assert_eq!(sim.run_until(SimTime::from_secs(30)), HaltReason::Cancelled);
    // No RunHalted event, no digest change: wall-clock interruptions
    // never contaminate golden traces.
    assert_eq!(sim.trace().digest(), digest);
    assert_eq!(sim.halt_reason(), Some(HaltReason::Cancelled));
}
