//! End-to-end simulator tests: handshake, learning-switch forwarding,
//! workload realism, fail modes, and determinism.

use attain_controllers::{Controller, ControllerKind};
use attain_netsim::{Direction, FailMode, HostCommand, NetworkBuilder, SimTime, Simulation};
use attain_openflow::OfType;

fn controller_box(kind: ControllerKind) -> Box<dyn Controller> {
    kind.instantiate()
}

/// Two hosts, two switches in a line, one controller.
fn line_network(kind: ControllerKind) -> Simulation {
    let mut b = NetworkBuilder::new();
    let h1 = b.host("h1", "10.0.0.1");
    let h2 = b.host("h2", "10.0.0.2");
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.link(h1, s1);
    b.link(s1, s2);
    b.link(h2, s2);
    let c1 = b.controller("c1", controller_box(kind));
    b.control(c1, s1);
    b.control(c1, s2);
    b.build()
}

#[test]
fn switches_complete_handshake_with_every_controller() {
    for kind in ControllerKind::ALL {
        let mut sim = line_network(kind);
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.switch("s1").is_connected(), "{kind}: s1 not connected");
        assert!(sim.switch("s2").is_connected(), "{kind}: s2 not connected");
    }
}

#[test]
fn ping_works_across_two_switches_with_every_controller() {
    for kind in ControllerKind::ALL {
        let mut sim = line_network(kind);
        let h1 = sim.node_id("h1").unwrap();
        sim.schedule_command(
            SimTime::from_secs(10),
            HostCommand::Ping {
                host: h1,
                dst: "10.0.0.2".parse().unwrap(),
                count: 10,
                interval: SimTime::from_secs(1),
                label: format!("{kind} ping"),
            },
        );
        sim.run_until(SimTime::from_secs(25));
        let stats = &sim.ping_stats()[0];
        assert_eq!(
            stats.received(),
            10,
            "{kind}: lost pings: {:?}",
            stats.rtts_ms()
        );
        // First trial pays the controller path; later trials ride
        // installed flows (POX re-misses every hard timeout; the median
        // stays sub-10 ms regardless).
        let steady = stats.rtts_ms()[5].unwrap();
        assert!(
            steady < 10.0,
            "{kind}: steady-state RTT {steady} ms too high"
        );
        let first = stats.rtts_ms()[0].unwrap();
        assert!(
            first > steady,
            "{kind}: first RTT {first} should exceed steady {steady}"
        );
    }
}

#[test]
fn flows_are_installed_and_expire_per_controller_policy() {
    // Floodlight uses a 5 s idle timeout: entries appear, then vanish.
    let mut sim = line_network(ControllerKind::Floodlight);
    let h1 = sim.node_id("h1").unwrap();
    sim.schedule_command(
        SimTime::from_secs(10),
        HostCommand::Ping {
            host: h1,
            dst: "10.0.0.2".parse().unwrap(),
            count: 3,
            interval: SimTime::from_secs(1),
            label: "short ping".into(),
        },
    );
    sim.run_until(SimTime::from_secs(13));
    assert!(
        !sim.switch("s1").flow_table().is_empty(),
        "flows should be installed during traffic"
    );
    sim.run_until(SimTime::from_secs(30));
    assert!(
        sim.switch("s1").flow_table().is_empty(),
        "idle timeout should have cleared the table"
    );

    // Ryu installs permanent flows: they persist.
    let mut sim = line_network(ControllerKind::Ryu);
    let h1 = sim.node_id("h1").unwrap();
    sim.schedule_command(
        SimTime::from_secs(10),
        HostCommand::Ping {
            host: h1,
            dst: "10.0.0.2".parse().unwrap(),
            count: 3,
            interval: SimTime::from_secs(1),
            label: "short ping".into(),
        },
    );
    sim.run_until(SimTime::from_secs(60));
    assert!(
        !sim.switch("s1").flow_table().is_empty(),
        "Ryu's timeout-free flows should persist"
    );
}

#[test]
fn iperf_reaches_near_line_rate_on_installed_flows() {
    for kind in ControllerKind::ALL {
        let mut sim = line_network(kind);
        let h1 = sim.node_id("h1").unwrap();
        let h2 = sim.node_id("h2").unwrap();
        sim.schedule_command(
            SimTime::from_secs(9),
            HostCommand::IperfServer {
                host: h2,
                port: 5001,
            },
        );
        sim.schedule_command(
            SimTime::from_secs(10),
            HostCommand::IperfClient {
                host: h1,
                dst: "10.0.0.2".parse().unwrap(),
                port: 5001,
                duration: SimTime::from_secs(10),
                label: format!("{kind} iperf"),
            },
        );
        sim.run_until(SimTime::from_secs(30));
        let stats = &sim.iperf_stats()[0];
        assert!(stats.connected, "{kind}: iperf never connected");
        assert!(stats.finished, "{kind}: iperf never finished");
        let mbps = stats.throughput_mbps();
        assert!(
            mbps > 80.0 && mbps <= 100.0,
            "{kind}: baseline throughput {mbps:.1} Mb/s should be near line rate"
        );
    }
}

#[test]
fn control_plane_traffic_is_modest_in_steady_state() {
    let mut sim = line_network(ControllerKind::Floodlight);
    let h1 = sim.node_id("h1").unwrap();
    sim.schedule_command(
        SimTime::from_secs(10),
        HostCommand::Ping {
            host: h1,
            dst: "10.0.0.2".parse().unwrap(),
            count: 20,
            interval: SimTime::from_secs(1),
            label: "ping".into(),
        },
    );
    sim.run_until(SimTime::from_secs(35));
    let packet_ins = sim
        .trace()
        .control_message_count(OfType::PacketIn, Direction::SwitchToController);
    // Flows idle out at 5 s between rounds of... actually 1 s pings keep
    // them alive: misses happen only on the first trial (per switch, per
    // direction, plus ARP). 20 trials must not each cost a packet-in.
    assert!(
        packet_ins < 20,
        "expected flow reuse, saw {packet_ins} packet-ins"
    );
    let flow_mods = sim
        .trace()
        .control_message_count(OfType::FlowMod, Direction::ControllerToSwitch);
    assert!(flow_mods > 0, "controller should have installed flows");
}

#[test]
fn fail_secure_blackholes_without_a_controller() {
    let mut b = NetworkBuilder::new();
    let h1 = b.host("h1", "10.0.0.1");
    let h2 = b.host("h2", "10.0.0.2");
    let s1 = b.switch_with_mode("s1", FailMode::Secure);
    b.link(h1, s1);
    b.link(h2, s1);
    // No controller at all.
    let mut sim = b.build();
    sim.schedule_command(
        SimTime::from_secs(5),
        HostCommand::Ping {
            host: h1,
            dst: "10.0.0.2".parse().unwrap(),
            count: 5,
            interval: SimTime::from_secs(1),
            label: "doomed ping".into(),
        },
    );
    sim.run_until(SimTime::from_secs(15));
    let stats = &sim.ping_stats()[0];
    assert!(stats.is_denial_of_service());
    assert!(sim.switch("s1").secure_drops > 0);
}

#[test]
fn fail_safe_forwards_without_a_controller() {
    let mut b = NetworkBuilder::new();
    let h1 = b.host("h1", "10.0.0.1");
    let h2 = b.host("h2", "10.0.0.2");
    let s1 = b.switch_with_mode("s1", FailMode::Safe);
    let s2 = b.switch_with_mode("s2", FailMode::Safe);
    b.link(h1, s1);
    b.link(s1, s2);
    b.link(h2, s2);
    let mut sim = b.build();
    sim.schedule_command(
        SimTime::from_secs(5),
        HostCommand::Ping {
            host: h1,
            dst: "10.0.0.2".parse().unwrap(),
            count: 5,
            interval: SimTime::from_secs(1),
            label: "standalone ping".into(),
        },
    );
    sim.run_until(SimTime::from_secs(15));
    let stats = &sim.ping_stats()[0];
    assert_eq!(stats.received(), 5, "{:?}", stats.rtts_ms());
    assert!(sim.switch("s1").standalone_forwards > 0);
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut sim = line_network(ControllerKind::Pox);
        let h1 = sim.node_id("h1").unwrap();
        let h2 = sim.node_id("h2").unwrap();
        sim.schedule_command(
            SimTime::from_secs(8),
            HostCommand::IperfServer {
                host: h2,
                port: 5001,
            },
        );
        sim.schedule_command(
            SimTime::from_secs(10),
            HostCommand::Ping {
                host: h1,
                dst: "10.0.0.2".parse().unwrap(),
                count: 10,
                interval: SimTime::from_secs(1),
                label: "ping".into(),
            },
        );
        sim.schedule_command(
            SimTime::from_secs(12),
            HostCommand::IperfClient {
                host: h1,
                dst: "10.0.0.2".parse().unwrap(),
                port: 5001,
                duration: SimTime::from_secs(5),
                label: "iperf".into(),
            },
        );
        sim.run_until(SimTime::from_secs(30));
        (
            sim.ping_stats()[0].rtts_ms().to_vec(),
            sim.iperf_stats()[0].bytes,
            sim.trace().control_message_total(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "two identical runs must produce identical results");
}

#[test]
fn connection_death_and_reconnect_after_silence() {
    // Drop-everything interposer kills the control plane mid-run.
    struct KillAfter {
        at: SimTime,
    }
    impl attain_netsim::Interposer for KillAfter {
        fn on_message(
            &mut self,
            msg: attain_netsim::ProxiedMessage<'_>,
        ) -> attain_netsim::InterposerActions {
            if msg.now >= self.at {
                attain_netsim::InterposerActions::drop_message()
            } else {
                attain_netsim::InterposerActions::pass(&msg)
            }
        }
    }
    let mut sim = line_network(ControllerKind::Floodlight);
    sim.set_interposer(Box::new(KillAfter {
        at: SimTime::from_secs(10),
    }));
    sim.run_until(SimTime::from_secs(9));
    assert!(sim.switch("s1").is_connected());
    // After 15 s of injected silence the switch declares the connection
    // dead; reconnect attempts keep failing against the black hole.
    sim.run_until(SimTime::from_secs(40));
    assert!(!sim.switch("s1").is_connected());
    assert!(!sim.switch("s2").is_connected());
}
