//! Shard- and scheduler-invariance: the engine refactor's contract.
//!
//! The sharded timer-wheel engine must be *observationally invisible*:
//! for any scenario, every `(scheduler, shard count)` combination —
//! heap or hierarchical wheel, 1 shard or many — must produce the same
//! virtual-time history byte for byte. These tests pin that contract on
//! both kinds of scenario the repo cares about: the paper-style small
//! controller networks (where the control-plane trace digest is the
//! oracle) and generated datacenter fabrics under seeded traffic
//! matrices (where the data-plane record is).

use attain_controllers::ControllerKind;
use attain_netsim::topo::{fat_tree, install_fat_tree_routes, FatTreeParams};
use attain_netsim::workload::{FlowKind, TrafficMatrix, TrafficPattern};
use attain_netsim::{
    FaultPlan, HostCommand, NetworkBuilder, PassThrough, SchedulerConfig, SimTime, Simulation,
};

/// Scheduler/shard combinations every scenario is replayed under.
fn configs() -> Vec<SchedulerConfig> {
    vec![
        SchedulerConfig::heap(1),
        SchedulerConfig::heap(4),
        SchedulerConfig::wheel(1),
        SchedulerConfig::wheel(4),
        SchedulerConfig::wheel(64),
    ]
}

/// Everything externally observable about a finished run, rendered.
/// Any reordering, retiming, loss, or duplication anywhere in the
/// simulation shows up here.
fn fingerprint(sim: &Simulation) -> String {
    let mut out = String::new();
    out.push_str(&format!("trace {}\n", sim.trace().digest()));
    out.push_str(&format!("counters {}\n", sim.trace().counter_digest()));
    out.push_str(&format!("events {}\n", sim.events_dispatched()));
    for p in sim.ping_stats() {
        out.push_str(&format!(
            "ping {} {} {}/{} {:?}\n",
            p.label,
            p.dst,
            p.received(),
            p.transmitted(),
            p.rtts_ms()
        ));
    }
    for s in sim.iperf_stats() {
        out.push_str(&format!("iperf {} {} {}\n", s.label, s.dst, s.bytes));
    }
    for l in sim.link_stats() {
        out.push_str(&format!(
            "link {}-{} tx {} drops {}/{}/{} corrupted {}\n",
            l.a, l.b, l.tx, l.queue_drops, l.down_drops, l.lost, l.corrupted
        ));
    }
    out
}

/// The paper-style 10-node line/star scenario: four switches, four
/// hosts, one controller, ping + iperf crossing the fabric while a
/// fault plan flaps a core link — the existing campaign shape.
fn paper_scenario(config: SchedulerConfig, interpose: bool, fault: bool) -> Simulation {
    let mut b = NetworkBuilder::new();
    b.scheduler(config);
    let h1 = b.host("h1", "10.0.0.1");
    let h2 = b.host("h2", "10.0.0.2");
    let h3 = b.host("h3", "10.0.0.3");
    let h4 = b.host("h4", "10.0.0.4");
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    let s3 = b.switch("s3");
    let s4 = b.switch("s4");
    b.link(h1, s1);
    b.link(h2, s2);
    b.link(h3, s3);
    b.link(h4, s4);
    b.link(s1, s2);
    b.link(s2, s3);
    b.link(s3, s4);
    let c1 = b.controller("c1", ControllerKind::Floodlight.instantiate());
    b.control(c1, s1);
    b.control(c1, s2);
    b.control(c1, s3);
    b.control(c1, s4);
    let mut sim = b.build();
    if interpose {
        sim.set_interposer(Box::new(PassThrough));
    }
    if fault {
        let mut plan = FaultPlan::seeded(7);
        plan.at_str(SimTime::from_secs(14), "link s2-s3 down")
            .unwrap()
            .at_str(SimTime::from_secs(18), "link s2-s3 up")
            .unwrap();
        sim.apply_fault_plan(&plan);
    }
    let ping = |host, dst: &str, label: &str| HostCommand::Ping {
        host,
        dst: dst.parse().unwrap(),
        count: 8,
        interval: SimTime::from_secs(1),
        label: label.into(),
    };
    let h1 = sim.node_id("h1").unwrap();
    let h3 = sim.node_id("h3").unwrap();
    sim.schedule_command(SimTime::from_secs(10), ping(h1, "10.0.0.4", "h1->h4"));
    sim.schedule_command(SimTime::from_secs(11), ping(h3, "10.0.0.2", "h3->h2"));
    sim.run_until(SimTime::from_secs(30));
    sim
}

/// A generated fat-tree under a seeded traffic matrix, optionally with
/// an interposer-less fault plan (no controller, so no interposer).
fn fabric_scenario(k: usize, config: SchedulerConfig, fault: bool, seed: u64) -> Simulation {
    let mut b = NetworkBuilder::new();
    b.scheduler(config);
    let t = fat_tree(&mut b, &FatTreeParams::new(k)).unwrap();
    let mut sim = b.build();
    install_fat_tree_routes(&mut sim, &t);
    if fault {
        // Flap one core uplink mid-run; seeded loss on another.
        let mut plan = FaultPlan::seeded(seed);
        plan.at_str(SimTime::from_secs(2), "link fta0_0-ftc0 down")
            .unwrap()
            .at_str(SimTime::from_secs(4), "link fta0_0-ftc0 up")
            .unwrap();
        sim.apply_fault_plan(&plan);
    }
    TrafficMatrix::new(48, seed)
        .with_pattern(TrafficPattern::Hotspot {
            hotspots: 3,
            bias_pct: 70,
        })
        .apply(&mut sim, &t);
    sim.run_until(SimTime::from_secs(8));
    sim
}

#[test]
fn paper_scenario_is_invariant_across_schedulers_and_shards() {
    for interpose in [false, true] {
        for fault in [false, true] {
            let reference =
                fingerprint(&paper_scenario(SchedulerConfig::heap(1), interpose, fault));
            for config in configs() {
                let got = fingerprint(&paper_scenario(config, interpose, fault));
                assert_eq!(
                    got, reference,
                    "divergence under {config:?} (interpose={interpose}, fault={fault})"
                );
            }
        }
    }
}

#[test]
fn fat_tree_k4_traffic_matrix_is_invariant_across_schedulers_and_shards() {
    for fault in [false, true] {
        let reference = fingerprint(&fabric_scenario(4, SchedulerConfig::heap(1), fault, 42));
        assert!(reference.contains("ping"), "scenario produced no flows");
        for config in configs() {
            let got = fingerprint(&fabric_scenario(4, config, fault, 42));
            assert_eq!(
                got, reference,
                "divergence under {config:?} (fault={fault})"
            );
        }
    }
}

#[test]
fn fat_tree_k8_traffic_matrix_is_invariant_across_shard_counts() {
    // k=8: 80 switches, 128 hosts — one fabric size up, heap vs. wheel
    // and 1 vs. 64 shards, two independent runs each (same-seed
    // repeatability and cross-backend equality in one pin).
    let reference = fingerprint(&fabric_scenario(8, SchedulerConfig::heap(1), false, 9));
    for config in [
        SchedulerConfig::heap(1),
        SchedulerConfig::wheel(1),
        SchedulerConfig::wheel(64),
    ] {
        let got = fingerprint(&fabric_scenario(8, config, false, 9));
        assert_eq!(got, reference, "divergence under {config:?}");
    }
}

#[test]
fn iperf_workload_is_invariant_across_schedulers() {
    let run = |config: SchedulerConfig| {
        let mut b = NetworkBuilder::new();
        b.scheduler(config);
        let t = fat_tree(&mut b, &FatTreeParams::new(4)).unwrap();
        let mut sim = b.build();
        install_fat_tree_routes(&mut sim, &t);
        TrafficMatrix::new(12, 5)
            .with_pattern(TrafficPattern::Permutation)
            .with_kind(FlowKind::Iperf {
                duration: SimTime::from_secs(1),
            })
            .apply(&mut sim, &t);
        sim.run_until(SimTime::from_secs(10));
        fingerprint(&sim)
    };
    let reference = run(SchedulerConfig::heap(1));
    assert!(reference.contains("iperf"), "scenario produced no flows");
    for config in configs() {
        assert_eq!(run(config), reference, "divergence under {config:?}");
    }
}
