//! Rules `φ = (n, γ, λ, α)` (paper §V-E).

use crate::lang::action::AttackAction;
use crate::lang::conditional::Expr;
use crate::model::CapabilitySet;
use crate::model::ConnectionId;

/// One attack rule: on which connections it applies (`n`), the
/// capabilities it assumes (`γ`), the conditional that triggers it
/// (`λ`), and the actions it takes (`α`).
///
/// The paper writes `n_i ∈ N_C`; its own Figure 10 rule applies to all
/// four connections at once, so `connections` is a set here.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name (e.g. `phi1`), for logs and graphs.
    pub name: String,
    /// The connections the rule watches.
    pub connections: Vec<ConnectionId>,
    /// The capabilities the rule declares it needs (validated ⊇ the
    /// condition's and actions' requirements, and ⊆ the attack model's
    /// grant on every watched connection).
    pub required: CapabilitySet,
    /// The trigger condition λ.
    pub condition: Expr,
    /// The ordered action list α.
    pub actions: Vec<AttackAction>,
}

impl Rule {
    /// The capabilities actually exercised by the condition and actions.
    pub fn exercised_capabilities(&self) -> CapabilitySet {
        let mut caps = self.condition.required_capabilities();
        for a in &self.actions {
            caps = caps.union(&a.required_capabilities());
        }
        caps
    }

    /// Whether the rule watches `conn`.
    ///
    /// Linear in the watch list; the executor's hot path does not call
    /// this — connection scope is precompiled into per-connection
    /// bitmasks by [`CompiledRuleset`](crate::exec::CompiledRuleset),
    /// making the check O(1) per rule there.
    pub fn applies_to(&self, conn: ConnectionId) -> bool {
        self.connections.contains(&conn)
    }

    /// The indexable guard anchoring this rule's condition, if any
    /// (see [`anchor_guard`](crate::lang::anchor_guard)).
    pub fn anchor_guard(&self) -> Option<crate::lang::Guard> {
        crate::lang::anchor_guard(&self.condition)
    }

    /// `GOTOSTATE` targets named by this rule's actions.
    pub fn goto_targets(&self) -> impl Iterator<Item = usize> + '_ {
        self.actions.iter().filter_map(|a| a.goto_target())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::property::Property;
    use crate::lang::value::Value;
    use crate::model::Capability;
    use attain_openflow::OfType;

    fn rule() -> Rule {
        Rule {
            name: "phi1".into(),
            connections: vec![ConnectionId(0), ConnectionId(2)],
            required: [Capability::ReadMessage, Capability::DropMessage]
                .into_iter()
                .collect(),
            condition: Expr::eq(
                Expr::Prop(Property::Type),
                Expr::Lit(Value::MsgType(OfType::FlowMod)),
            ),
            actions: vec![AttackAction::Drop, AttackAction::GoToState(1)],
        }
    }

    #[test]
    fn exercised_combines_condition_and_actions() {
        let caps = rule().exercised_capabilities();
        assert!(caps.contains(Capability::ReadMessage));
        assert!(caps.contains(Capability::DropMessage));
        assert_eq!(caps.len(), 2);
    }

    #[test]
    fn connection_scope() {
        let r = rule();
        assert!(r.applies_to(ConnectionId(0)));
        assert!(!r.applies_to(ConnectionId(1)));
        assert!(r.applies_to(ConnectionId(2)));
    }

    #[test]
    fn goto_targets() {
        let targets: Vec<_> = rule().goto_targets().collect();
        assert_eq!(targets, vec![1]);
    }
}
