//! Attack actions `α` (paper §V-D): actuations of attacker capabilities,
//! deque operations, and the control actions (`GOTOSTATE`, `SLEEP`,
//! `SYSCMD`).

use crate::lang::conditional::{DequeEnd, Expr};
use crate::model::ConnectionId;
use crate::model::{Capability, CapabilitySet};
use std::fmt;

/// One attack action.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackAction {
    /// `DROPMESSAGE`: remove the message from the outgoing list.
    Drop,
    /// `PASSMESSAGE`: let the message through (re-adding it if a prior
    /// action dropped it).
    Pass,
    /// `DELAYMESSAGE`: delay delivery by the given number of seconds.
    Delay(Expr),
    /// `DUPLICATEMESSAGE`: append a replica to the outgoing list.
    Duplicate,
    /// `READMESSAGEMETADATA`: record the metadata in the injection log.
    ReadMetadata,
    /// `MODIFYMESSAGEMETADATA`: rewrite metadata. The supported field is
    /// `destination`: redirecting the message onto the named component's
    /// connection (the closest meaningful L3/L4 rewrite in a model where
    /// addressing *is* the `N_C` relation).
    ModifyMetadata {
        /// Metadata field (`destination`).
        field: String,
        /// New value.
        value: Expr,
    },
    /// `FUZZMESSAGE`: flip random bits in the outgoing copies.
    Fuzz {
        /// How many bit flips.
        flips: u32,
    },
    /// `READMESSAGE`: record the decoded payload in the injection log.
    Read,
    /// `MODIFYMESSAGE`: rewrite a payload field (same dotted paths as the
    /// `msg[...]` type options), re-encoding the message.
    Modify {
        /// Field path, e.g. `idle_timeout` or `match.nw_dst`.
        field: String,
        /// New value.
        value: Expr,
    },
    /// `INJECTNEWMESSAGE`: put a new message on a connection.
    Inject {
        /// Target connection.
        conn: ConnectionId,
        /// `true` to deliver switch→controller.
        to_controller: bool,
        /// Pre-encoded message, shared across every firing of the rule
        /// (each injection is a refcount bump on the compiled frame).
        frame: attain_openflow::Frame,
    },
    /// `PREPEND(δ, value)`.
    Prepend {
        /// Deque name.
        deque: String,
        /// Value expression (may read properties or other deques).
        value: Expr,
    },
    /// `APPEND(δ, value)`.
    Append {
        /// Deque name.
        deque: String,
        /// Value expression.
        value: Expr,
    },
    /// `SHIFT(δ)`: discard the front element.
    Shift(String),
    /// `POP(δ)`: discard the end element.
    Pop(String),
    /// Store the *current message* into δ (at the end) for later replay —
    /// the `PREPEND(δ, m)` of §VIII-A with `m` the in-flight message.
    StoreMessage {
        /// Deque name.
        deque: String,
        /// `true` to prepend instead of append.
        front: bool,
    },
    /// Emit a stored message from δ onto its original connection — the
    /// `SHIFT(δ)`/`POP(δ)` + `PASSMESSAGE` composition of §VIII-A.
    EmitStored {
        /// Deque name.
        deque: String,
        /// Which end to take from.
        end: DequeEnd,
    },
    /// `GOTOSTATE(σ)`: transition the attack (by state index).
    GoToState(usize),
    /// `SLEEP(t)`: hold attack execution for `t` seconds (messages
    /// arriving meanwhile queue up and are processed on wake).
    Sleep(Expr),
    /// `SYSCMD(host, cmd)`: run a command on a host (dispatched to the
    /// harness's workload layer).
    SysCmd {
        /// Host name.
        host: String,
        /// Command line.
        cmd: String,
    },
    /// `FAULT(spec)`: inject an environment fault (link down/flap,
    /// loss/corruption, process crash/restart) — testbed conditions, not
    /// a message-level capability, so it needs no capabilities.
    Fault {
        /// The fault spec text (the simulator parses the grammar).
        spec: String,
    },
}

impl AttackAction {
    /// The capabilities this action actuates (§V-D: each capability
    /// action requires exactly its capability; deque/control actions are
    /// free, except that storing/emitting whole messages respectively
    /// need to read and re-send them).
    pub fn required_capabilities(&self) -> CapabilitySet {
        let mut caps = CapabilitySet::new();
        match self {
            AttackAction::Drop => caps.insert(Capability::DropMessage),
            AttackAction::Pass => caps.insert(Capability::PassMessage),
            AttackAction::Delay(e) => {
                caps.insert(Capability::DelayMessage);
                caps.extend(e.required_capabilities().iter());
            }
            AttackAction::Duplicate => caps.insert(Capability::DuplicateMessage),
            AttackAction::ReadMetadata => caps.insert(Capability::ReadMessageMetadata),
            AttackAction::ModifyMetadata { value, .. } => {
                caps.insert(Capability::ModifyMessageMetadata);
                caps.extend(value.required_capabilities().iter());
            }
            AttackAction::Fuzz { .. } => caps.insert(Capability::FuzzMessage),
            AttackAction::Read => caps.insert(Capability::ReadMessage),
            AttackAction::Modify { value, .. } => {
                caps.insert(Capability::ModifyMessage);
                caps.extend(value.required_capabilities().iter());
            }
            AttackAction::Inject { .. } => caps.insert(Capability::InjectNewMessage),
            AttackAction::Prepend { value, .. } | AttackAction::Append { value, .. } => {
                caps.extend(value.required_capabilities().iter());
            }
            AttackAction::Shift(_) | AttackAction::Pop(_) => {}
            // Storing a whole message is a metadata-level capture of the
            // (possibly opaque) bytes; emitting it re-sends a copy.
            AttackAction::StoreMessage { .. } => caps.insert(Capability::ReadMessageMetadata),
            AttackAction::EmitStored { .. } => caps.insert(Capability::PassMessage),
            AttackAction::GoToState(_)
            | AttackAction::Sleep(_)
            | AttackAction::SysCmd { .. }
            | AttackAction::Fault { .. } => {}
        }
        caps
    }

    /// Whether this is a `GOTOSTATE` (drives attack-state-graph edges).
    pub fn goto_target(&self) -> Option<usize> {
        match self {
            AttackAction::GoToState(t) => Some(*t),
            _ => None,
        }
    }
}

impl fmt::Display for AttackAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackAction::Drop => write!(f, "DROPMESSAGE(msg)"),
            AttackAction::Pass => write!(f, "PASSMESSAGE(msg)"),
            AttackAction::Delay(_) => write!(f, "DELAYMESSAGE(msg, t)"),
            AttackAction::Duplicate => write!(f, "DUPLICATEMESSAGE(msg)"),
            AttackAction::ReadMetadata => write!(f, "READMESSAGEMETADATA(msg)"),
            AttackAction::ModifyMetadata { field, .. } => {
                write!(f, "MODIFYMESSAGEMETADATA(msg, {field})")
            }
            AttackAction::Fuzz { flips } => write!(f, "FUZZMESSAGE(msg, {flips})"),
            AttackAction::Read => write!(f, "READMESSAGE(msg)"),
            AttackAction::Modify { field, .. } => write!(f, "MODIFYMESSAGE(msg, {field})"),
            AttackAction::Inject { conn, .. } => write!(f, "INJECTNEWMESSAGE({conn})"),
            AttackAction::Prepend { deque, .. } => write!(f, "PREPEND({deque}, …)"),
            AttackAction::Append { deque, .. } => write!(f, "APPEND({deque}, …)"),
            AttackAction::Shift(d) => write!(f, "SHIFT({d})"),
            AttackAction::Pop(d) => write!(f, "POP({d})"),
            AttackAction::StoreMessage { deque, front } => {
                if *front {
                    write!(f, "PREPEND({deque}, msg)")
                } else {
                    write!(f, "APPEND({deque}, msg)")
                }
            }
            AttackAction::EmitStored { deque, end } => match end {
                DequeEnd::Front => write!(f, "PASSMESSAGE(SHIFT({deque}))"),
                DequeEnd::End => write!(f, "PASSMESSAGE(POP({deque}))"),
            },
            AttackAction::GoToState(s) => write!(f, "GOTOSTATE(σ{s})"),
            AttackAction::Sleep(_) => write!(f, "SLEEP(t)"),
            AttackAction::SysCmd { host, cmd } => write!(f, "SYSCMD({host}, {cmd:?})"),
            AttackAction::Fault { spec } => write!(f, "FAULT({spec:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::property::Property;
    use crate::lang::value::Value;

    #[test]
    fn capability_mapping_matches_table_one() {
        assert!(AttackAction::Drop
            .required_capabilities()
            .contains(Capability::DropMessage));
        assert!(AttackAction::Pass
            .required_capabilities()
            .contains(Capability::PassMessage));
        assert!(AttackAction::Duplicate
            .required_capabilities()
            .contains(Capability::DuplicateMessage));
        assert!(AttackAction::Fuzz { flips: 8 }
            .required_capabilities()
            .contains(Capability::FuzzMessage));
        assert!(AttackAction::Read
            .required_capabilities()
            .contains(Capability::ReadMessage));
        assert!(AttackAction::Inject {
            conn: ConnectionId(0),
            to_controller: true,
            frame: attain_openflow::Frame::new(vec![]),
        }
        .required_capabilities()
        .contains(Capability::InjectNewMessage));
    }

    #[test]
    fn control_actions_need_no_capabilities() {
        assert!(AttackAction::GoToState(1)
            .required_capabilities()
            .is_empty());
        assert!(AttackAction::SysCmd {
            host: "h1".into(),
            cmd: "iperf -s".into(),
        }
        .required_capabilities()
        .is_empty());
        assert!(AttackAction::Shift("d".into())
            .required_capabilities()
            .is_empty());
    }

    #[test]
    fn expression_operands_contribute_their_reads() {
        let a = AttackAction::Append {
            deque: "d".into(),
            value: Expr::Prop(Property::Length),
        };
        assert!(a
            .required_capabilities()
            .contains(Capability::ReadMessageMetadata));
        let a = AttackAction::Modify {
            field: "idle_timeout".into(),
            value: Expr::Prop(Property::TypeOption("idle_timeout".into())),
        };
        let caps = a.required_capabilities();
        assert!(caps.contains(Capability::ModifyMessage));
        assert!(caps.contains(Capability::ReadMessage));
    }

    #[test]
    fn goto_target_extraction() {
        assert_eq!(AttackAction::GoToState(3).goto_target(), Some(3));
        assert_eq!(AttackAction::Drop.goto_target(), None);
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(AttackAction::Drop.to_string(), "DROPMESSAGE(msg)");
        assert_eq!(
            AttackAction::Sleep(Expr::Lit(Value::Int(5))).to_string(),
            "SLEEP(t)"
        );
        assert_eq!(AttackAction::GoToState(2).to_string(), "GOTOSTATE(σ2)");
    }
}
