//! Attack states `Σ` and whole attacks (paper §V-F).

use crate::lang::rule::Rule;
use std::fmt;

/// One attack stage `σ`: an unordered set of rules.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackState {
    /// State name (e.g. `sigma1`).
    pub name: String,
    /// The state's rules (empty ⇒ an *end* state that interferes with
    /// nothing).
    pub rules: Vec<Rule>,
}

impl AttackState {
    /// Whether this is an end state (`σ = ∅`, §V-F3).
    pub fn is_end(&self) -> bool {
        self.rules.is_empty()
    }
}

/// A complete attack: its states and the start state.
#[derive(Debug, Clone, PartialEq)]
pub struct Attack {
    /// Attack name.
    pub name: String,
    /// The state set `Σ` (`|Σ| ≥ 1`, §V-F1).
    pub states: Vec<AttackState>,
    /// Index of `σ_start`.
    pub start: usize,
}

/// Error validating an attack's state structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// `|Σ| = 0`.
    NoStates,
    /// `σ_start` out of range.
    BadStart(usize),
    /// A `GOTOSTATE` action names a state out of range.
    BadTransition {
        /// Originating state index.
        from: usize,
        /// Missing target index.
        to: usize,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::NoStates => write!(f, "an attack must have at least one state"),
            AttackError::BadStart(s) => write!(f, "start state index {s} is out of range"),
            AttackError::BadTransition { from, to } => {
                write!(f, "state {from} transitions to nonexistent state {to}")
            }
        }
    }
}

impl std::error::Error for AttackError {}

impl Attack {
    /// Validates the structural rules of §V-F.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), AttackError> {
        if self.states.is_empty() {
            return Err(AttackError::NoStates);
        }
        if self.start >= self.states.len() {
            return Err(AttackError::BadStart(self.start));
        }
        for (i, state) in self.states.iter().enumerate() {
            for rule in &state.rules {
                for target in rule.goto_targets() {
                    if target >= self.states.len() {
                        return Err(AttackError::BadTransition {
                            from: i,
                            to: target,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// State indices with no outgoing transition to a *different* state —
    /// the absorbing states `σ_absorbing` (§V-F2).
    pub fn absorbing_states(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                !s.rules
                    .iter()
                    .flat_map(|r| r.goto_targets())
                    .any(|t| t != *i)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// End-state indices (absorbing states with no rules, §V-F3).
    pub fn end_states(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_end())
            .map(|(i, _)| i)
            .collect()
    }

    /// Looks up a state index by name.
    pub fn state_index(&self, name: &str) -> Option<usize> {
        self.states.iter().position(|s| s.name == name)
    }

    /// The attack's states.
    pub fn states(&self) -> &[AttackState] {
        &self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::action::AttackAction;
    use crate::lang::conditional::Expr;
    use crate::model::CapabilitySet;
    use crate::model::ConnectionId;

    fn rule_going_to(name: &str, target: usize) -> Rule {
        Rule {
            name: name.into(),
            connections: vec![ConnectionId(0)],
            required: CapabilitySet::no_tls(),
            condition: Expr::always(),
            actions: vec![AttackAction::GoToState(target)],
        }
    }

    fn rule_plain(name: &str) -> Rule {
        Rule {
            name: name.into(),
            connections: vec![ConnectionId(0)],
            required: CapabilitySet::no_tls(),
            condition: Expr::always(),
            actions: vec![AttackAction::Drop],
        }
    }

    #[test]
    fn trivial_single_state_attack_like_figure_5() {
        let a = Attack {
            name: "trivial".into(),
            states: vec![AttackState {
                name: "sigma1".into(),
                rules: vec![],
            }],
            start: 0,
        };
        a.validate().unwrap();
        assert_eq!(a.absorbing_states(), vec![0]);
        assert_eq!(a.end_states(), vec![0]); // no rules ⇒ end state
    }

    #[test]
    fn classification_like_figure_12() {
        // σ1 → σ2 → σ3 (dropping, absorbing, not an end state).
        let a = Attack {
            name: "interruption".into(),
            states: vec![
                AttackState {
                    name: "sigma1".into(),
                    rules: vec![rule_going_to("phi1", 1)],
                },
                AttackState {
                    name: "sigma2".into(),
                    rules: vec![rule_going_to("phi2", 2)],
                },
                AttackState {
                    name: "sigma3".into(),
                    rules: vec![rule_plain("phi3")],
                },
            ],
            start: 0,
        };
        a.validate().unwrap();
        assert_eq!(a.absorbing_states(), vec![2]);
        assert!(a.end_states().is_empty()); // σ3 has rules: absorbing, not end
        assert_eq!(a.state_index("sigma2"), Some(1));
        assert_eq!(a.state_index("sigma9"), None);
    }

    #[test]
    fn self_loops_are_still_absorbing() {
        let a = Attack {
            name: "loop".into(),
            states: vec![AttackState {
                name: "s".into(),
                rules: vec![rule_going_to("r", 0)],
            }],
            start: 0,
        };
        a.validate().unwrap();
        assert_eq!(a.absorbing_states(), vec![0]);
    }

    #[test]
    fn validation_catches_structural_errors() {
        let empty = Attack {
            name: "x".into(),
            states: vec![],
            start: 0,
        };
        assert_eq!(empty.validate().unwrap_err(), AttackError::NoStates);

        let bad_start = Attack {
            name: "x".into(),
            states: vec![AttackState {
                name: "s".into(),
                rules: vec![],
            }],
            start: 5,
        };
        assert_eq!(bad_start.validate().unwrap_err(), AttackError::BadStart(5));

        let bad_goto = Attack {
            name: "x".into(),
            states: vec![AttackState {
                name: "s".into(),
                rules: vec![rule_going_to("r", 9)],
            }],
            start: 0,
        };
        assert_eq!(
            bad_goto.validate().unwrap_err(),
            AttackError::BadTransition { from: 0, to: 9 }
        );
    }
}
