//! Runtime values of the attack language.

use crate::model::NodeRef;
use attain_openflow::{Frame, MacAddr, OfType};
use std::fmt;
use std::net::Ipv4Addr;

/// A stored control-plane message (the unit of replay/reorder attacks).
///
/// Captures share the original [`Frame`]: storing and later replaying a
/// message never copies its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredMessage {
    /// Connection index the message was captured on.
    pub conn: usize,
    /// `true` if it was travelling switch→controller.
    pub to_controller: bool,
    /// The encoded message.
    pub frame: Frame,
}

/// A value in the attack language: conditional results, deque elements,
/// and action operands.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer (counters, lengths, field values).
    Int(i64),
    /// A float (timestamps in seconds, delays).
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// A system component (message source/destination).
    Addr(NodeRef),
    /// An OpenFlow message type.
    MsgType(OfType),
    /// An IPv4 address.
    Ip(Ipv4Addr),
    /// A MAC address.
    Mac(MacAddr),
    /// A captured message (for replay attacks).
    Message(StoredMessage),
    /// The absence of a value (empty deque reads, unreadable fields).
    None,
}

impl Value {
    /// Truthiness: `Bool` as itself, `None` false, everything else true.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::None => false,
            _ => true,
        }
    }

    /// The value as an integer, if numeric.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Language equality (`=`): numeric values compare across Int/Float;
    /// everything else compares within its own kind.
    pub fn lang_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                self.as_float() == other.as_float()
            }
            (a, b) => a == b,
        }
    }

    /// A short name for the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Addr(_) => "address",
            Value::MsgType(_) => "message type",
            Value::Ip(_) => "ip",
            Value::Mac(_) => "mac",
            Value::Message(_) => "message",
            Value::None => "none",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Addr(a) => write!(f, "{a:?}"),
            Value::MsgType(t) => write!(f, "{t}"),
            Value::Ip(ip) => write!(f, "{ip}"),
            Value::Mac(m) => write!(f, "{m}"),
            Value::Message(m) => write!(f, "message({} bytes)", m.frame.len()),
            Value::None => write!(f, "none"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Ipv4Addr> for Value {
    fn from(v: Ipv4Addr) -> Self {
        Value::Ip(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::None.truthy());
        assert!(Value::Int(0).truthy()); // ints are not booleans here
        assert!(Value::Str("".into()).truthy());
    }

    #[test]
    fn cross_numeric_equality() {
        assert!(Value::Int(3).lang_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).lang_eq(&Value::Float(3.5)));
        assert!(!Value::Int(3).lang_eq(&Value::Str("3".into())));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::Float(2.9).as_int(), Some(2));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Int(0),
            Value::None,
            Value::Str(String::new()),
            Value::MsgType(OfType::FlowMod),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}
