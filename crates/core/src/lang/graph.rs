//! The attack state graph `Σ_G` (paper §V-G): vertices are attack
//! states, edges are the `GOTOSTATE` transitions, and edge labels list
//! the actions of the rules that take them.

use crate::lang::state::Attack;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One labeled edge of the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphEdge {
    /// Source state index.
    pub from: usize,
    /// Target state index.
    pub to: usize,
    /// The edge-labeled attribute `a_{Σ_G}`: rendered actions of the
    /// rules in `from` that transition to `to`.
    pub label: Vec<String>,
}

/// The attack state graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackStateGraph {
    /// State names, by index (the vertex set `V_{Σ_G} = Σ`).
    pub vertices: Vec<String>,
    /// Edges `E_{Σ_G} ⊆ Σ × Σ` with labels.
    pub edges: Vec<GraphEdge>,
    /// The start state.
    pub start: usize,
    /// Absorbing state indices.
    pub absorbing: Vec<usize>,
    /// End state indices.
    pub end: Vec<usize>,
}

impl AttackStateGraph {
    /// Derives the graph from an attack.
    pub fn from_attack(attack: &Attack) -> AttackStateGraph {
        let mut edges: Vec<GraphEdge> = Vec::new();
        for (i, state) in attack.states.iter().enumerate() {
            for rule in &state.rules {
                let targets: BTreeSet<usize> = rule.goto_targets().collect();
                for t in targets {
                    let label: Vec<String> = rule.actions.iter().map(|a| a.to_string()).collect();
                    if let Some(e) = edges.iter_mut().find(|e| e.from == i && e.to == t) {
                        e.label.extend(label);
                    } else {
                        edges.push(GraphEdge {
                            from: i,
                            to: t,
                            label,
                        });
                    }
                }
            }
        }
        AttackStateGraph {
            vertices: attack.states.iter().map(|s| s.name.clone()).collect(),
            edges,
            start: attack.start,
            absorbing: attack.absorbing_states(),
            end: attack.end_states(),
        }
    }

    /// States unreachable from the start state (useful lint: the paper's
    /// graphs are connected).
    pub fn unreachable_states(&self) -> Vec<usize> {
        let mut seen = vec![false; self.vertices.len()];
        let mut stack = vec![self.start];
        while let Some(s) = stack.pop() {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            for e in &self.edges {
                if e.from == s && !seen[e.to] {
                    stack.push(e.to);
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &v)| !v)
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders the graph in Graphviz DOT, in the visual style of the
    /// paper's Figures 5, 6, 10b, and 12b (start arrow, double circles
    /// for absorbing states).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph attack_state_graph {\n  rankdir=LR;\n");
        out.push_str("  start [shape=point];\n");
        for (i, name) in self.vertices.iter().enumerate() {
            let shape = if self.absorbing.contains(&i) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  s{i} [label=\"{name}\", shape={shape}];");
        }
        let _ = writeln!(out, "  start -> s{};", self.start);
        for e in &self.edges {
            let label = e.label.join("\\n");
            let _ = writeln!(out, "  s{} -> s{} [label=\"{}\"];", e.from, e.to, label);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::action::AttackAction;
    use crate::lang::conditional::Expr;
    use crate::lang::rule::Rule;
    use crate::lang::state::AttackState;
    use crate::model::CapabilitySet;
    use crate::model::ConnectionId;

    fn rule(name: &str, actions: Vec<AttackAction>) -> Rule {
        Rule {
            name: name.into(),
            connections: vec![ConnectionId(0)],
            required: CapabilitySet::no_tls(),
            condition: Expr::always(),
            actions,
        }
    }

    /// The Figure 6 shape: a chain of history states.
    fn chain_attack() -> Attack {
        Attack {
            name: "history".into(),
            states: vec![
                AttackState {
                    name: "sigma1".into(),
                    rules: vec![rule(
                        "r1",
                        vec![AttackAction::Pass, AttackAction::GoToState(1)],
                    )],
                },
                AttackState {
                    name: "sigma2".into(),
                    rules: vec![rule(
                        "r2",
                        vec![AttackAction::Pass, AttackAction::GoToState(2)],
                    )],
                },
                AttackState {
                    name: "sigma3".into(),
                    rules: vec![rule("r3", vec![AttackAction::Drop])],
                },
            ],
            start: 0,
        }
    }

    #[test]
    fn graph_edges_follow_goto_actions() {
        let g = AttackStateGraph::from_attack(&chain_attack());
        assert_eq!(g.vertices, vec!["sigma1", "sigma2", "sigma3"]);
        assert_eq!(g.edges.len(), 2);
        assert_eq!((g.edges[0].from, g.edges[0].to), (0, 1));
        assert_eq!((g.edges[1].from, g.edges[1].to), (1, 2));
        assert_eq!(g.absorbing, vec![2]);
        assert!(g.end.is_empty());
        assert!(g.unreachable_states().is_empty());
    }

    #[test]
    fn edge_labels_carry_the_rule_actions() {
        let g = AttackStateGraph::from_attack(&chain_attack());
        assert!(g.edges[0].label.iter().any(|l| l.contains("PASSMESSAGE")));
        assert!(g.edges[0].label.iter().any(|l| l.contains("GOTOSTATE")));
    }

    #[test]
    fn unreachable_states_are_reported() {
        let mut a = chain_attack();
        a.states.push(AttackState {
            name: "orphan".into(),
            rules: vec![],
        });
        let g = AttackStateGraph::from_attack(&a);
        assert_eq!(g.unreachable_states(), vec![3]);
    }

    #[test]
    fn dot_output_is_well_formed() {
        let g = AttackStateGraph::from_attack(&chain_attack());
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("start -> s0"));
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("doublecircle")); // σ3 is absorbing
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn parallel_rules_to_same_target_merge_labels() {
        let a = Attack {
            name: "merge".into(),
            states: vec![
                AttackState {
                    name: "s0".into(),
                    rules: vec![
                        rule("ra", vec![AttackAction::GoToState(1)]),
                        rule("rb", vec![AttackAction::Drop, AttackAction::GoToState(1)]),
                    ],
                },
                AttackState {
                    name: "s1".into(),
                    rules: vec![],
                },
            ],
            start: 0,
        };
        let g = AttackStateGraph::from_attack(&a);
        assert_eq!(g.edges.len(), 1);
        assert!(g.edges[0].label.len() >= 3);
        assert_eq!(g.end, vec![1]);
    }
}
