//! Attack storage `Δ` (paper §V-C): named double-ended queues.
//!
//! Deques serve as stacks (reordering), queues (replay), and O(1)
//! counters (§VIII-B) — the storage that lets one attack state stand in
//! for `n` memoryless states.

use crate::lang::value::Value;
use std::collections::{BTreeMap, VecDeque};

/// The named deque store `Δ = {δ_1, …, δ_l}`.
#[derive(Debug, Clone, Default)]
pub struct DequeStore {
    deques: BTreeMap<String, VecDeque<Value>>,
}

impl DequeStore {
    /// Creates an empty store.
    pub fn new() -> DequeStore {
        DequeStore::default()
    }

    /// `PREPEND(δ, value)`: adds to the front, creating δ if needed.
    pub fn prepend(&mut self, name: &str, value: Value) {
        self.deques
            .entry(name.to_string())
            .or_default()
            .push_front(value);
    }

    /// `APPEND(δ, value)`: adds to the end, creating δ if needed.
    pub fn append(&mut self, name: &str, value: Value) {
        self.deques
            .entry(name.to_string())
            .or_default()
            .push_back(value);
    }

    /// `EXAMINEFRONT(δ)`: reads the front element without removing it.
    pub fn examine_front(&self, name: &str) -> Value {
        self.deques
            .get(name)
            .and_then(|d| d.front())
            .cloned()
            .unwrap_or(Value::None)
    }

    /// `EXAMINEEND(δ)`: reads the end element without removing it.
    pub fn examine_end(&self, name: &str) -> Value {
        self.deques
            .get(name)
            .and_then(|d| d.back())
            .cloned()
            .unwrap_or(Value::None)
    }

    /// `SHIFT(δ)`: removes and returns the front element.
    pub fn shift(&mut self, name: &str) -> Value {
        self.deques
            .get_mut(name)
            .and_then(|d| d.pop_front())
            .unwrap_or(Value::None)
    }

    /// `POP(δ)`: removes and returns the end element.
    pub fn pop(&mut self, name: &str) -> Value {
        self.deques
            .get_mut(name)
            .and_then(|d| d.pop_back())
            .unwrap_or(Value::None)
    }

    /// Number of elements in δ (0 if it does not exist).
    pub fn len(&self, name: &str) -> usize {
        self.deques.get(name).map(|d| d.len()).unwrap_or(0)
    }

    /// Whether δ is empty or absent.
    pub fn is_empty(&self, name: &str) -> bool {
        self.len(name) == 0
    }

    /// Names of all deques touched so far.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.deques.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_discipline_with_append_and_shift() {
        let mut d = DequeStore::new();
        d.append("q", Value::Int(1));
        d.append("q", Value::Int(2));
        d.append("q", Value::Int(3));
        assert_eq!(d.shift("q"), Value::Int(1));
        assert_eq!(d.shift("q"), Value::Int(2));
        assert_eq!(d.shift("q"), Value::Int(3));
        assert_eq!(d.shift("q"), Value::None);
    }

    #[test]
    fn stack_discipline_with_prepend_and_shift() {
        // The paper's reordering pattern (§VIII-A): PREPEND then SHIFT
        // yields reverse order of arrival... PREPEND stacks, SHIFT pops
        // the most recent.
        let mut d = DequeStore::new();
        for i in 1..=3 {
            d.prepend("s", Value::Int(i));
        }
        assert_eq!(d.shift("s"), Value::Int(3));
        assert_eq!(d.shift("s"), Value::Int(2));
        assert_eq!(d.shift("s"), Value::Int(1));
    }

    #[test]
    fn examine_does_not_remove() {
        let mut d = DequeStore::new();
        d.append("x", Value::Int(7));
        d.append("x", Value::Int(8));
        assert_eq!(d.examine_front("x"), Value::Int(7));
        assert_eq!(d.examine_end("x"), Value::Int(8));
        assert_eq!(d.len("x"), 2);
    }

    #[test]
    fn missing_deques_read_as_none() {
        let mut d = DequeStore::new();
        assert_eq!(d.examine_front("ghost"), Value::None);
        assert_eq!(d.pop("ghost"), Value::None);
        assert!(d.is_empty("ghost"));
        assert_eq!(d.len("ghost"), 0);
    }

    #[test]
    fn counter_pattern_from_section_viii_b() {
        // PREPEND(δ, SHIFT(δ) + 1) — the O(1) counter.
        let mut d = DequeStore::new();
        d.prepend("counter", Value::Int(0));
        for _ in 0..5 {
            let v = d.shift("counter").as_int().unwrap();
            d.prepend("counter", Value::Int(v + 1));
        }
        assert_eq!(d.examine_front("counter"), Value::Int(5));
        assert_eq!(d.len("counter"), 1); // O(1) space, not O(n) states
    }

    #[test]
    fn names_lists_touched_deques() {
        let mut d = DequeStore::new();
        d.append("b", Value::Int(1));
        d.append("a", Value::Int(2));
        let names: Vec<_> = d.names().collect();
        assert_eq!(names, vec!["a", "b"]); // deterministic order
    }
}
