//! Message properties (paper §V-A) and the view of an in-flight message
//! a rule evaluates against.

use crate::lang::value::Value;
use crate::model::{Capability, CapabilitySet};
use crate::model::{ConnectionId, NodeRef};
use attain_openflow::{Frame, OfMessage, StatsBody, StatsReplyBody};
use std::fmt;

/// A message property an attack conditional may read (§V-A).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Property {
    /// `MESSAGE SOURCE` — the sending component (∈ C ∪ S). Metadata.
    Source,
    /// `MESSAGE DESTINATION` — the receiving component. Metadata.
    Destination,
    /// `MESSAGE TIMESTAMP` — arrival time at the proxy, in seconds.
    /// Metadata.
    Timestamp,
    /// `MESSAGE LENGTH` — encoded payload length in bytes. Metadata.
    Length,
    /// `MESSAGE TYPE` — the OpenFlow type. Payload (under TLS the header
    /// is encrypted too).
    Type,
    /// `MESSAGE ID` — the injector's sequential identifier for the
    /// message. Metadata (assigned at the proxy, not read from the
    /// payload).
    Id,
    /// `MESSAGE TYPE OPTIONS` — a type-dependent field addressed by a
    /// dotted path, e.g. `match.nw_src` on a `FLOW_MOD`. Payload.
    TypeOption(String),
    /// A uniform pseudo-random value in `[0, 1)`, derived
    /// deterministically from the injector's seed and the message id —
    /// the paper's §VIII-A "stochastic decision-making" future-work
    /// extension, kept reproducible. Metadata (it keys off the observed
    /// message identity only).
    Entropy,
}

impl Property {
    /// The capability required to *read* this property (§V-A: metadata
    /// properties need `READMESSAGEMETADATA`, payload properties need
    /// `READMESSAGE`).
    pub fn required_capability(&self) -> Capability {
        match self {
            Property::Source
            | Property::Destination
            | Property::Timestamp
            | Property::Length
            | Property::Id
            | Property::Entropy => Capability::ReadMessageMetadata,
            Property::Type | Property::TypeOption(_) => Capability::ReadMessage,
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Property::Source => write!(f, "msg.source"),
            Property::Destination => write!(f, "msg.destination"),
            Property::Timestamp => write!(f, "msg.timestamp"),
            Property::Length => write!(f, "msg.length"),
            Property::Type => write!(f, "msg.type"),
            Property::Id => write!(f, "msg.id"),
            Property::TypeOption(path) => write!(f, "msg[{path:?}]"),
            Property::Entropy => write!(f, "msg.entropy"),
        }
    }
}

/// The executor's view of one in-flight control-plane message.
#[derive(Debug, Clone)]
pub struct MessageView<'a> {
    /// The connection it traverses.
    pub conn: ConnectionId,
    /// Sending component.
    pub source: NodeRef,
    /// Receiving component.
    pub destination: NodeRef,
    /// Arrival time at the proxy, in nanoseconds of virtual/wall time.
    pub timestamp_ns: u64,
    /// The injector's sequential message id.
    pub id: u64,
    /// The in-flight message. Payload property reads go through the
    /// frame's memoized decode, so parsing happens at most once per
    /// frame no matter how many rules inspect it — and not at all for
    /// rules that only touch metadata.
    pub frame: &'a Frame,
    /// The capabilities granted on `conn` — reads beyond them fail.
    pub granted: CapabilitySet,
    /// Deterministic per-message entropy in `[0, 1)` (see
    /// [`Property::Entropy`]).
    pub entropy: f64,
}

/// Why a property read failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyError {
    /// The granted capability set does not allow the read.
    CapabilityDenied {
        /// The property.
        property: String,
        /// What would have been needed.
        needed: Capability,
    },
    /// The message does not decode (so payload properties are
    /// unreadable).
    Unparseable,
    /// The path does not exist on this message type.
    NoSuchField(String),
}

impl fmt::Display for PropertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyError::CapabilityDenied { property, needed } => {
                write!(f, "reading {property} requires {needed}")
            }
            PropertyError::Unparseable => write!(f, "message payload does not parse"),
            PropertyError::NoSuchField(p) => write!(f, "no field {p} on this message type"),
        }
    }
}

impl std::error::Error for PropertyError {}

impl MessageView<'_> {
    /// Reads a property, enforcing the §V-A capability rules.
    ///
    /// # Errors
    ///
    /// Fails when the capability is missing, the payload does not parse
    /// (payload properties only), or the type-option path does not exist.
    pub fn read(&self, prop: &Property) -> Result<Value, PropertyError> {
        let needed = prop.required_capability();
        if !self.granted.contains(needed) {
            return Err(PropertyError::CapabilityDenied {
                property: prop.to_string(),
                needed,
            });
        }
        match prop {
            Property::Source => Ok(Value::Addr(self.source)),
            Property::Destination => Ok(Value::Addr(self.destination)),
            Property::Timestamp => Ok(Value::Float(self.timestamp_ns as f64 / 1e9)),
            Property::Length => Ok(Value::Int(self.frame.len() as i64)),
            Property::Id => Ok(Value::Int(self.id as i64)),
            Property::Entropy => Ok(Value::Float(self.entropy)),
            Property::Type => {
                let msg = self.frame.message().ok_or(PropertyError::Unparseable)?;
                Ok(Value::MsgType(msg.of_type()))
            }
            Property::TypeOption(path) => {
                let msg = self.frame.message().ok_or(PropertyError::Unparseable)?;
                type_option(msg, path).ok_or_else(|| PropertyError::NoSuchField(path.clone()))
            }
        }
    }
}

/// Resolves a type-option path on a decoded message.
///
/// Supported paths are documented per message type; unknown paths return
/// `None`. Fields that are structurally present but wildcarded/absent
/// return [`Value::None`] (so conditionals comparing them simply fail to
/// match — the Ryu/`φ2` behaviour).
pub fn type_option(msg: &OfMessage, path: &str) -> Option<Value> {
    fn match_field(m: &attain_openflow::Match, field: &str) -> Option<Value> {
        use attain_openflow::Wildcards;
        let w = m.wildcards;
        let concrete = |wild: bool, v: Value| if wild { Value::None } else { v };
        Some(match field {
            "in_port" => concrete(w.has(Wildcards::IN_PORT), Value::Int(m.in_port.0 as i64)),
            "dl_src" => concrete(w.has(Wildcards::DL_SRC), Value::Mac(m.dl_src)),
            "dl_dst" => concrete(w.has(Wildcards::DL_DST), Value::Mac(m.dl_dst)),
            "dl_vlan" => concrete(w.has(Wildcards::DL_VLAN), Value::Int(m.dl_vlan as i64)),
            "dl_type" => concrete(w.has(Wildcards::DL_TYPE), Value::Int(m.dl_type as i64)),
            "nw_proto" => concrete(w.has(Wildcards::NW_PROTO), Value::Int(m.nw_proto as i64)),
            "nw_src" => m.nw_src_addr().map(Value::Ip).unwrap_or(Value::None),
            "nw_dst" => m.nw_dst_addr().map(Value::Ip).unwrap_or(Value::None),
            "tp_src" => concrete(w.has(Wildcards::TP_SRC), Value::Int(m.tp_src as i64)),
            "tp_dst" => concrete(w.has(Wildcards::TP_DST), Value::Int(m.tp_dst as i64)),
            _ => return None,
        })
    }
    fn packet_field(data: &[u8], field: &str) -> Option<Value> {
        use attain_openflow::packet;
        use attain_openflow::PortNo;
        let key = packet::flow_key(data, PortNo(0));
        Some(match field {
            "dl_src" => Value::Mac(key.dl_src),
            "dl_dst" => Value::Mac(key.dl_dst),
            "dl_type" => Value::Int(key.dl_type as i64),
            "nw_src" => Value::Ip(key.nw_src.into()),
            "nw_dst" => Value::Ip(key.nw_dst.into()),
            "nw_proto" => Value::Int(key.nw_proto as i64),
            "tp_src" => Value::Int(key.tp_src as i64),
            "tp_dst" => Value::Int(key.tp_dst as i64),
            _ => return None,
        })
    }
    let (head, rest) = match path.split_once('.') {
        Some((h, r)) => (h, Some(r)),
        None => (path, None),
    };
    match msg {
        OfMessage::FlowMod(fm) => match (head, rest) {
            ("match", Some(field)) => match_field(&fm.r#match, field),
            ("command", None) => Some(Value::Str(fm.command.to_string())),
            ("priority", None) => Some(Value::Int(fm.priority as i64)),
            ("idle_timeout", None) => Some(Value::Int(fm.idle_timeout as i64)),
            ("hard_timeout", None) => Some(Value::Int(fm.hard_timeout as i64)),
            ("cookie", None) => Some(Value::Int(fm.cookie as i64)),
            ("buffer_id", None) => Some(
                fm.buffer_id
                    .map(|b| Value::Int(b as i64))
                    .unwrap_or(Value::None),
            ),
            ("actions", Some("len")) => Some(Value::Int(fm.actions.len() as i64)),
            _ => None,
        },
        OfMessage::PacketIn(pi) => match (head, rest) {
            ("in_port", None) => Some(Value::Int(pi.in_port.0 as i64)),
            ("reason", None) => Some(Value::Int(pi.reason as i64)),
            ("total_len", None) => Some(Value::Int(pi.total_len as i64)),
            ("buffer_id", None) => Some(
                pi.buffer_id
                    .map(|b| Value::Int(b as i64))
                    .unwrap_or(Value::None),
            ),
            ("packet", Some(field)) => packet_field(&pi.data, field),
            _ => None,
        },
        OfMessage::PacketOut(po) => match (head, rest) {
            ("in_port", None) => Some(Value::Int(po.in_port.0 as i64)),
            ("buffer_id", None) => Some(
                po.buffer_id
                    .map(|b| Value::Int(b as i64))
                    .unwrap_or(Value::None),
            ),
            ("actions", Some("len")) => Some(Value::Int(po.actions.len() as i64)),
            ("packet", Some(field)) => packet_field(&po.data, field),
            _ => None,
        },
        OfMessage::FlowRemoved(fr) => match (head, rest) {
            ("match", Some(field)) => match_field(&fr.r#match, field),
            ("reason", None) => Some(Value::Int(fr.reason as i64)),
            ("priority", None) => Some(Value::Int(fr.priority as i64)),
            ("packet_count", None) => Some(Value::Int(fr.packet_count as i64)),
            ("byte_count", None) => Some(Value::Int(fr.byte_count as i64)),
            _ => None,
        },
        OfMessage::Error(e) => match (head, rest) {
            ("type", None) => Some(Value::Str(e.error_type.to_string())),
            ("code", None) => Some(Value::Int(e.code as i64)),
            _ => None,
        },
        OfMessage::FeaturesReply(f) => match (head, rest) {
            ("datapath_id", None) => Some(Value::Int(f.datapath_id.0 as i64)),
            ("n_buffers", None) => Some(Value::Int(f.n_buffers as i64)),
            ("ports", Some("len")) => Some(Value::Int(f.ports.len() as i64)),
            _ => None,
        },
        OfMessage::PortStatus(ps) => match (head, rest) {
            ("reason", None) => Some(Value::Int(ps.reason as i64)),
            ("port_no", None) => Some(Value::Int(ps.desc.port_no.0 as i64)),
            _ => None,
        },
        OfMessage::EchoRequest(b) | OfMessage::EchoReply(b) => match (head, rest) {
            ("payload", Some("len")) => Some(Value::Int(b.len() as i64)),
            _ => None,
        },
        OfMessage::StatsRequest(body) => match (head, rest) {
            ("stats_type", None) => Some(Value::Str(
                match body {
                    StatsBody::Desc => "DESC",
                    StatsBody::Flow { .. } => "FLOW",
                    StatsBody::Aggregate { .. } => "AGGREGATE",
                    StatsBody::Table => "TABLE",
                    StatsBody::Port { .. } => "PORT",
                    StatsBody::Queue { .. } => "QUEUE",
                }
                .to_string(),
            )),
            _ => None,
        },
        OfMessage::StatsReply(body) => match (head, rest) {
            ("stats_type", None) => Some(Value::Str(
                match body {
                    StatsReplyBody::Desc(_) => "DESC",
                    StatsReplyBody::Flow(_) => "FLOW",
                    StatsReplyBody::Aggregate(_) => "AGGREGATE",
                    StatsReplyBody::Table(_) => "TABLE",
                    StatsReplyBody::Port(_) => "PORT",
                    StatsReplyBody::Queue(_) => "QUEUE",
                }
                .to_string(),
            )),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ControllerId, SwitchId};
    use attain_openflow::{Action, FlowMod, Match, OfType, PortNo, Wildcards};

    fn flow_mod_with_nw_src() -> OfMessage {
        let mut m = Match::all();
        m.wildcards = Wildcards::ALL.with_nw_src_ignored_bits(0);
        m.nw_src = u32::from(std::net::Ipv4Addr::new(10, 0, 0, 2));
        OfMessage::FlowMod(FlowMod {
            idle_timeout: 10,
            ..FlowMod::add(
                m,
                vec![Action::Output {
                    port: PortNo(1),
                    max_len: 0,
                }],
            )
        })
    }

    fn view(frame: &Frame, granted: CapabilitySet) -> MessageView<'_> {
        MessageView {
            conn: ConnectionId(0),
            source: NodeRef::Controller(ControllerId(0)),
            destination: NodeRef::Switch(SwitchId(0)),
            timestamp_ns: 1_500_000_000,
            id: 42,
            frame,
            granted,
            entropy: 0.5,
        }
    }

    #[test]
    fn metadata_reads_need_metadata_capability() {
        let msg = flow_mod_with_nw_src();
        let frame = Frame::from_message(msg, 1);
        let v = view(&frame, CapabilitySet::EMPTY);
        assert!(matches!(
            v.read(&Property::Source),
            Err(PropertyError::CapabilityDenied { .. })
        ));
        let v = view(&frame, CapabilitySet::tls());
        assert_eq!(
            v.read(&Property::Source).unwrap(),
            Value::Addr(NodeRef::Controller(ControllerId(0)))
        );
        assert_eq!(
            v.read(&Property::Length).unwrap(),
            Value::Int(frame.len() as i64)
        );
        assert_eq!(v.read(&Property::Id).unwrap(), Value::Int(42));
        assert_eq!(v.read(&Property::Timestamp).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn payload_reads_are_denied_under_tls() {
        let frame = Frame::from_message(flow_mod_with_nw_src(), 1);
        let v = view(&frame, CapabilitySet::tls());
        assert!(matches!(
            v.read(&Property::Type),
            Err(PropertyError::CapabilityDenied { .. })
        ));
        let v = view(&frame, CapabilitySet::no_tls());
        assert_eq!(
            v.read(&Property::Type).unwrap(),
            Value::MsgType(OfType::FlowMod)
        );
    }

    #[test]
    fn type_options_on_flow_mod() {
        let msg = flow_mod_with_nw_src();
        assert_eq!(
            type_option(&msg, "match.nw_src"),
            Some(Value::Ip("10.0.0.2".parse().unwrap()))
        );
        // nw_dst is wildcarded: present but None — the φ2/Ryu case.
        assert_eq!(type_option(&msg, "match.nw_dst"), Some(Value::None));
        assert_eq!(type_option(&msg, "idle_timeout"), Some(Value::Int(10)));
        assert_eq!(type_option(&msg, "command"), Some(Value::Str("ADD".into())));
        assert_eq!(type_option(&msg, "actions.len"), Some(Value::Int(1)));
        assert_eq!(type_option(&msg, "match.bogus"), None);
        assert_eq!(type_option(&msg, "bogus"), None);
    }

    #[test]
    fn type_options_on_packet_in() {
        use attain_openflow::packet;
        use attain_openflow::MacAddr;
        let frame = packet::icmp_echo_request(
            MacAddr::from_low(1),
            MacAddr::from_low(2),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.6".parse().unwrap(),
            1,
            1,
            vec![0; 8],
        );
        let msg = OfMessage::PacketIn(attain_openflow::PacketIn {
            buffer_id: Some(9),
            total_len: frame.wire_len() as u16,
            in_port: PortNo(3),
            reason: attain_openflow::PacketInReason::NoMatch,
            data: frame.encode(),
        });
        assert_eq!(type_option(&msg, "in_port"), Some(Value::Int(3)));
        assert_eq!(type_option(&msg, "buffer_id"), Some(Value::Int(9)));
        assert_eq!(
            type_option(&msg, "packet.nw_dst"),
            Some(Value::Ip("10.0.0.6".parse().unwrap()))
        );
        assert_eq!(type_option(&msg, "packet.nw_proto"), Some(Value::Int(1)));
    }

    #[test]
    fn unparseable_payload_fails_payload_reads_only() {
        let frame = Frame::new(vec![0xffu8; 12]);
        let v = MessageView {
            conn: ConnectionId(0),
            source: NodeRef::Switch(SwitchId(0)),
            destination: NodeRef::Controller(ControllerId(0)),
            timestamp_ns: 0,
            id: 1,
            frame: &frame,
            granted: CapabilitySet::no_tls(),
            entropy: 0.5,
        };
        assert!(matches!(
            v.read(&Property::Type),
            Err(PropertyError::Unparseable)
        ));
        assert_eq!(v.read(&Property::Length).unwrap(), Value::Int(12));
    }

    #[test]
    fn property_display_and_capability_mapping() {
        assert_eq!(Property::Source.to_string(), "msg.source");
        assert_eq!(
            Property::TypeOption("match.nw_src".into()).to_string(),
            "msg[\"match.nw_src\"]"
        );
        assert_eq!(
            Property::Type.required_capability(),
            Capability::ReadMessage
        );
        assert_eq!(
            Property::Length.required_capability(),
            Capability::ReadMessageMetadata
        );
    }
}
