//! Conditional expressions `λ` (paper §V-B): propositional logic over
//! message properties, with the set-membership operator and the small
//! arithmetic needed for deque counters.

use crate::lang::deque::DequeStore;
use crate::lang::property::{MessageView, Property, PropertyError};
use crate::lang::timing::{TimingCtx, TimingStat};
use crate::lang::value::Value;
use crate::model::CapabilitySet;
use attain_openflow::OfType;
use std::fmt;

/// Which end of a deque an expression reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DequeEnd {
    /// The front (`EXAMINEFRONT`).
    Front,
    /// The end (`EXAMINEEND`).
    End,
}

/// A conditional (or arithmetic) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A message property read.
    Prop(Property),
    /// A non-destructive deque read.
    DequeRead {
        /// Deque name.
        deque: String,
        /// Which end.
        end: DequeEnd,
    },
    /// Deque length.
    DequeLen(String),
    /// Logical negation (`¬`).
    Not(Box<Expr>),
    /// Logical conjunction (`∧`).
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction (`∨`).
    Or(Box<Expr>, Box<Expr>),
    /// Equality (`=`).
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality.
    Ne(Box<Expr>, Box<Expr>),
    /// Numeric less-than.
    Lt(Box<Expr>, Box<Expr>),
    /// Numeric less-or-equal.
    Le(Box<Expr>, Box<Expr>),
    /// Numeric greater-than.
    Gt(Box<Expr>, Box<Expr>),
    /// Numeric greater-or-equal.
    Ge(Box<Expr>, Box<Expr>),
    /// Set membership (`∈`): value appears in the list.
    In(Box<Expr>, Vec<Expr>),
    /// Numeric addition (counters).
    Add(Box<Expr>, Box<Expr>),
    /// Numeric subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// A timing observable over the connection's arrival history (the
    /// DSL's `latency` / `inter_arrival` / `timing_*` predicates).
    /// Reads the per-connection sample ring the executor keeps for the
    /// `(req, resp)` pair; never an anchor guard, so compiled dispatch
    /// routes it through the residual mask.
    Timing {
        /// Request message type (the stamp the sample measures from).
        req: OfType,
        /// Response message type (the arrival that closes a sample).
        resp: OfType,
        /// Which statistic to read.
        stat: TimingStat,
        /// Rolling-window length for `Mean`/`StdDev` (1 for the rest).
        window: u32,
    },
    /// Nanoseconds since the executor entered the current attack state
    /// (the DSL's `elapsed_in_state()`).
    ElapsedInState,
}

/// Why an expression failed to evaluate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A property read failed.
    Property(PropertyError),
    /// Operand types were incompatible.
    TypeMismatch {
        /// Operator name.
        op: &'static str,
        /// Offending operand kind.
        found: &'static str,
    },
    /// A timing statistic was read before its pair had any sample (the
    /// executor treats the conditional as unmatched, like any other
    /// eval error — guard with `timing_count(...)` to avoid it).
    NoSample {
        /// Which statistic had no data.
        stat: &'static str,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Property(e) => write!(f, "{e}"),
            EvalError::TypeMismatch { op, found } => {
                write!(f, "operator {op} cannot take a {found} operand")
            }
            EvalError::NoSample { stat } => {
                write!(f, "timing statistic `{stat}` has no samples yet")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<PropertyError> for EvalError {
    fn from(e: PropertyError) -> Self {
        EvalError::Property(e)
    }
}

impl Expr {
    /// Convenience: `a == b` from two expressions.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Eq(Box::new(a), Box::new(b))
    }

    /// Convenience: `a && b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// Convenience: `a || b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// Evaluates to a [`Value`] with no timing state attached
    /// (timing-free expressions behave identically; timing stats read
    /// through [`TimingCtx::detached`]).
    ///
    /// # Errors
    ///
    /// Fails on capability-denied property reads or type mismatches; the
    /// executor treats a failing conditional as *unmatched* and logs it.
    pub fn eval(&self, msg: &MessageView<'_>, deques: &DequeStore) -> Result<Value, EvalError> {
        self.eval_with(msg, deques, TimingCtx::detached())
    }

    /// Evaluates to a [`Value`] against the executor's per-connection
    /// timing state.
    ///
    /// # Errors
    ///
    /// As [`Expr::eval`], plus [`EvalError::NoSample`] for timing
    /// statistics whose pair has no sample yet.
    pub fn eval_with(
        &self,
        msg: &MessageView<'_>,
        deques: &DequeStore,
        timing: TimingCtx<'_>,
    ) -> Result<Value, EvalError> {
        match self {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Prop(p) => Ok(msg.read(p)?),
            Expr::DequeRead { deque, end } => Ok(match end {
                DequeEnd::Front => deques.examine_front(deque),
                DequeEnd::End => deques.examine_end(deque),
            }),
            Expr::DequeLen(d) => Ok(Value::Int(deques.len(d) as i64)),
            Expr::Not(e) => Ok(Value::Bool(!e.eval_with(msg, deques, timing)?.truthy())),
            Expr::And(a, b) => {
                // Short-circuit: the right side is not evaluated (and so
                // cannot fail a capability check) when the left is false.
                if !a.eval_with(msg, deques, timing)?.truthy() {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(b.eval_with(msg, deques, timing)?.truthy()))
            }
            Expr::Or(a, b) => {
                if a.eval_with(msg, deques, timing)?.truthy() {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(b.eval_with(msg, deques, timing)?.truthy()))
            }
            Expr::Eq(a, b) => Ok(Value::Bool(
                a.eval_with(msg, deques, timing)?
                    .lang_eq(&b.eval_with(msg, deques, timing)?),
            )),
            Expr::Ne(a, b) => Ok(Value::Bool(
                !a.eval_with(msg, deques, timing)?
                    .lang_eq(&b.eval_with(msg, deques, timing)?),
            )),
            Expr::Lt(a, b) => Self::numeric_cmp("<", a, b, msg, deques, timing, |x, y| x < y),
            Expr::Le(a, b) => Self::numeric_cmp("<=", a, b, msg, deques, timing, |x, y| x <= y),
            Expr::Gt(a, b) => Self::numeric_cmp(">", a, b, msg, deques, timing, |x, y| x > y),
            Expr::Ge(a, b) => Self::numeric_cmp(">=", a, b, msg, deques, timing, |x, y| x >= y),
            Expr::In(needle, haystack) => {
                let n = needle.eval_with(msg, deques, timing)?;
                for h in haystack {
                    if n.lang_eq(&h.eval_with(msg, deques, timing)?) {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(Value::Bool(false))
            }
            Expr::Add(a, b) => Self::numeric_bin("+", a, b, msg, deques, timing, |x, y| x + y),
            Expr::Sub(a, b) => Self::numeric_bin("-", a, b, msg, deques, timing, |x, y| x - y),
            Expr::Timing {
                req,
                resp,
                stat,
                window,
            } => timing.read(*req, *resp, *stat, *window),
            Expr::ElapsedInState => Ok(Value::Int(timing.elapsed_in_state_ns() as i64)),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn numeric_cmp(
        op: &'static str,
        a: &Expr,
        b: &Expr,
        msg: &MessageView<'_>,
        deques: &DequeStore,
        timing: TimingCtx<'_>,
        f: impl Fn(f64, f64) -> bool,
    ) -> Result<Value, EvalError> {
        let av = a.eval_with(msg, deques, timing)?;
        let bv = b.eval_with(msg, deques, timing)?;
        let (Some(x), Some(y)) = (av.as_float(), bv.as_float()) else {
            return Err(EvalError::TypeMismatch {
                op,
                found: if av.as_float().is_none() {
                    av.kind()
                } else {
                    bv.kind()
                },
            });
        };
        Ok(Value::Bool(f(x, y)))
    }

    #[allow(clippy::too_many_arguments)]
    fn numeric_bin(
        op: &'static str,
        a: &Expr,
        b: &Expr,
        msg: &MessageView<'_>,
        deques: &DequeStore,
        timing: TimingCtx<'_>,
        f: impl Fn(i64, i64) -> i64,
    ) -> Result<Value, EvalError> {
        let av = a.eval_with(msg, deques, timing)?;
        let bv = b.eval_with(msg, deques, timing)?;
        let (Some(x), Some(y)) = (av.as_int(), bv.as_int()) else {
            return Err(EvalError::TypeMismatch {
                op,
                found: if av.as_int().is_none() {
                    av.kind()
                } else {
                    bv.kind()
                },
            });
        };
        Ok(Value::Int(f(x, y)))
    }

    /// The capabilities this expression may need at runtime (used for
    /// compile-time validation against a rule's `γ`).
    pub fn required_capabilities(&self) -> CapabilitySet {
        let mut caps = CapabilitySet::new();
        self.collect_caps(&mut caps);
        caps
    }

    /// Calls `f` on this expression and every sub-expression (used by
    /// [`TimingPlan`](crate::lang::timing::TimingPlan) to discover the
    /// pairs an attack observes).
    pub fn for_each(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Lit(_)
            | Expr::Prop(_)
            | Expr::DequeRead { .. }
            | Expr::DequeLen(_)
            | Expr::Timing { .. }
            | Expr::ElapsedInState => {}
            Expr::Not(e) => e.for_each(f),
            Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Eq(a, b)
            | Expr::Ne(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::Gt(a, b)
            | Expr::Ge(a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b) => {
                a.for_each(f);
                b.for_each(f);
            }
            Expr::In(n, hs) => {
                n.for_each(f);
                for h in hs {
                    h.for_each(f);
                }
            }
        }
    }

    fn collect_caps(&self, caps: &mut CapabilitySet) {
        match self {
            Expr::Lit(_) | Expr::DequeRead { .. } | Expr::DequeLen(_) => {}
            Expr::Prop(p) => caps.insert(p.required_capability()),
            // Timing samples are keyed by decoded message type — a
            // payload-level observation.
            Expr::Timing { .. } => caps.insert(crate::model::Capability::ReadMessage),
            Expr::ElapsedInState => {}
            Expr::Not(e) => e.collect_caps(caps),
            Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Eq(a, b)
            | Expr::Ne(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::Gt(a, b)
            | Expr::Ge(a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b) => {
                a.collect_caps(caps);
                b.collect_caps(caps);
            }
            Expr::In(n, hs) => {
                n.collect_caps(caps);
                for h in hs {
                    h.collect_caps(caps);
                }
            }
        }
    }

    /// Always-true conditional (the Figure 10 `φ1` style "every message"
    /// guard is usually a property test, but `true` is the trivial one).
    pub fn always() -> Expr {
        Expr::Lit(Value::Bool(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Capability;
    use crate::model::{ConnectionId, ControllerId, NodeRef, SwitchId};
    use attain_openflow::{FlowMod, Match, OfMessage, OfType};

    fn make_msg() -> attain_openflow::Frame {
        let msg = OfMessage::FlowMod(FlowMod::add(Match::all(), vec![]));
        attain_openflow::Frame::from_message(msg, 7)
    }

    fn view(frame: &attain_openflow::Frame) -> MessageView<'_> {
        MessageView {
            conn: ConnectionId(0),
            source: NodeRef::Controller(ControllerId(0)),
            destination: NodeRef::Switch(SwitchId(1)),
            timestamp_ns: 0,
            id: 1,
            frame,
            granted: CapabilitySet::no_tls(),
            entropy: 0.5,
        }
    }

    #[test]
    fn type_and_source_conjunction_like_figure_10() {
        let frame = make_msg();
        let v = view(&frame);
        let d = DequeStore::new();
        // λ = (msg.type == FLOW_MOD) ∧ (msg.source == c1)
        let cond = Expr::and(
            Expr::eq(
                Expr::Prop(Property::Type),
                Expr::Lit(Value::MsgType(OfType::FlowMod)),
            ),
            Expr::eq(
                Expr::Prop(Property::Source),
                Expr::Lit(Value::Addr(NodeRef::Controller(ControllerId(0)))),
            ),
        );
        assert_eq!(cond.eval(&v, &d).unwrap(), Value::Bool(true));
        // Different source: false.
        let cond2 = Expr::eq(
            Expr::Prop(Property::Source),
            Expr::Lit(Value::Addr(NodeRef::Switch(SwitchId(9)))),
        );
        assert_eq!(cond2.eval(&v, &d).unwrap(), Value::Bool(false));
    }

    #[test]
    fn membership_like_figure_12_phi2() {
        let frame = make_msg();
        let v = view(&frame);
        let d = DequeStore::new();
        // destination ∈ {s1, s2}
        let cond = Expr::In(
            Box::new(Expr::Prop(Property::Destination)),
            vec![
                Expr::Lit(Value::Addr(NodeRef::Switch(SwitchId(0)))),
                Expr::Lit(Value::Addr(NodeRef::Switch(SwitchId(1)))),
            ],
        );
        assert_eq!(cond.eval(&v, &d).unwrap(), Value::Bool(true));
    }

    #[test]
    fn short_circuit_protects_capability_checks() {
        let frame = make_msg();
        let mut v = view(&frame);
        v.granted = CapabilitySet::tls(); // no payload reads
        let d = DequeStore::new();
        // length > 10_000 ∧ type == FLOW_MOD: left side false, right side
        // never evaluated, so no capability error.
        let cond = Expr::and(
            Expr::Gt(
                Box::new(Expr::Prop(Property::Length)),
                Box::new(Expr::Lit(Value::Int(10_000))),
            ),
            Expr::eq(
                Expr::Prop(Property::Type),
                Expr::Lit(Value::MsgType(OfType::FlowMod)),
            ),
        );
        assert_eq!(cond.eval(&v, &d).unwrap(), Value::Bool(false));
        // Flipped order: the payload read runs and is denied.
        let cond = Expr::and(
            Expr::eq(
                Expr::Prop(Property::Type),
                Expr::Lit(Value::MsgType(OfType::FlowMod)),
            ),
            Expr::Gt(
                Box::new(Expr::Prop(Property::Length)),
                Box::new(Expr::Lit(Value::Int(10_000))),
            ),
        );
        assert!(cond.eval(&v, &d).is_err());
    }

    #[test]
    fn counter_condition_from_section_viii_b() {
        let frame = make_msg();
        let v = view(&frame);
        let mut d = DequeStore::new();
        d.prepend("counter", Value::Int(3));
        // EXAMINEFRONT(counter) == 3
        let cond = Expr::eq(
            Expr::DequeRead {
                deque: "counter".into(),
                end: DequeEnd::Front,
            },
            Expr::Lit(Value::Int(3)),
        );
        assert_eq!(cond.eval(&v, &d).unwrap(), Value::Bool(true));
        // EXAMINEFRONT(counter) + 1 == 4
        let cond = Expr::eq(
            Expr::Add(
                Box::new(Expr::DequeRead {
                    deque: "counter".into(),
                    end: DequeEnd::Front,
                }),
                Box::new(Expr::Lit(Value::Int(1))),
            ),
            Expr::Lit(Value::Int(4)),
        );
        assert_eq!(cond.eval(&v, &d).unwrap(), Value::Bool(true));
    }

    #[test]
    fn required_capabilities_cover_all_property_reads() {
        let cond = Expr::and(
            Expr::eq(
                Expr::Prop(Property::Type),
                Expr::Lit(Value::MsgType(OfType::FlowMod)),
            ),
            Expr::eq(
                Expr::Prop(Property::Source),
                Expr::Lit(Value::Addr(NodeRef::Controller(ControllerId(0)))),
            ),
        );
        let caps = cond.required_capabilities();
        assert!(caps.contains(Capability::ReadMessage));
        assert!(caps.contains(Capability::ReadMessageMetadata));
        assert_eq!(caps.len(), 2);
        assert!(Expr::always().required_capabilities().is_empty());
    }

    #[test]
    fn comparison_type_errors_are_reported() {
        let frame = make_msg();
        let v = view(&frame);
        let d = DequeStore::new();
        let cond = Expr::Lt(
            Box::new(Expr::Lit(Value::Str("a".into()))),
            Box::new(Expr::Lit(Value::Int(1))),
        );
        assert!(matches!(
            cond.eval(&v, &d),
            Err(EvalError::TypeMismatch { op: "<", .. })
        ));
    }

    #[test]
    fn not_and_or() {
        let frame = make_msg();
        let v = view(&frame);
        let d = DequeStore::new();
        let t = Expr::Lit(Value::Bool(true));
        let f = Expr::Lit(Value::Bool(false));
        assert_eq!(
            Expr::Not(Box::new(t.clone())).eval(&v, &d).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::or(f.clone(), t.clone()).eval(&v, &d).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(Expr::and(t, f).eval(&v, &d).unwrap(), Value::Bool(false));
    }
}
