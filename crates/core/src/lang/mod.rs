//! The ATTAIN attack language (paper §V).
//!
//! An attack is written as a set of [`AttackState`]s, each holding
//! [`Rule`]s `φ = (n, γ, λ, α)` whose conditionals ([`Expr`]) test
//! message properties ([`Property`]) and whose actions
//! ([`AttackAction`]) actuate attacker capabilities, manipulate deque
//! storage ([`DequeStore`]), and drive state transitions — visualized as
//! the [`AttackStateGraph`].

mod action;
mod conditional;
mod deque;
mod graph;
mod guard;
mod property;
mod rule;
mod state;
pub mod templates;
mod timing;
mod value;

pub use action::AttackAction;
pub use conditional::{DequeEnd, EvalError, Expr};
pub use deque::DequeStore;
pub use graph::{AttackStateGraph, GraphEdge};
pub use guard::{anchor_guard, property_read_is_fallible, CmpOp, Guard, ValueKey};
pub use property::{type_option, MessageView, Property, PropertyError};
pub use rule::Rule;
pub use state::{Attack, AttackError, AttackState};
pub use timing::{
    ConnTiming, PairSamples, TimingCtx, TimingPlan, TimingStat, TimingStore, MAX_TIMING_WINDOW,
};
pub use value::{StoredMessage, Value};
