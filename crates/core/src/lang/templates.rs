//! Attack state graph templates (the paper's §X future work): generate
//! larger attack descriptions programmatically "without having to
//! manually generate many of the lower-level details".
//!
//! Each template returns a plain [`Attack`] that validates against any
//! attack model granting `Γ_NoTLS` on the named connections, and can be
//! rendered, inspected, or executed like a hand-written one.

use crate::lang::{Attack, AttackAction, AttackState, DequeEnd, Expr, Property, Rule, Value};
use crate::model::{CapabilitySet, ConnectionId};
use attain_openflow::OfType;

fn type_is(t: OfType) -> Expr {
    Expr::eq(Expr::Prop(Property::Type), Expr::Lit(Value::MsgType(t)))
}

/// A single-state attack that drops every message of type `t` on the
/// given connections — the Figure 10 pattern generalized over message
/// types.
pub fn suppress_type(t: OfType, connections: Vec<ConnectionId>) -> Attack {
    Attack {
        name: format!("suppress_{}", t.spec_name().to_lowercase()),
        states: vec![AttackState {
            name: "suppress".into(),
            rules: vec![Rule {
                name: "phi1".into(),
                connections,
                required: CapabilitySet::no_tls(),
                condition: type_is(t),
                actions: vec![AttackAction::Drop],
            }],
        }],
        start: 0,
    }
}

/// A chain of history states (the Figure 6 pattern): pass messages until
/// the types in `sequence` have been observed in order, then apply
/// `payload` actions to every message of the final type.
pub fn after_sequence(
    sequence: &[OfType],
    payload: Vec<AttackAction>,
    connections: Vec<ConnectionId>,
) -> Attack {
    assert!(!sequence.is_empty(), "sequence must name at least one type");
    let mut states = Vec::with_capacity(sequence.len() + 1);
    for (i, t) in sequence.iter().enumerate() {
        states.push(AttackState {
            name: format!("wait_{}_{}", i, t.spec_name().to_lowercase()),
            rules: vec![Rule {
                name: format!("advance{i}"),
                connections: connections.clone(),
                required: CapabilitySet::no_tls(),
                condition: type_is(*t),
                actions: vec![AttackAction::Pass, AttackAction::GoToState(i + 1)],
            }],
        });
    }
    let last = *sequence.last().expect("non-empty sequence");
    states.push(AttackState {
        name: "armed".into(),
        rules: vec![Rule {
            name: "strike".into(),
            connections,
            required: CapabilitySet::no_tls(),
            condition: type_is(last),
            actions: payload,
        }],
    });
    Attack {
        name: "after_sequence".into(),
        states,
        start: 0,
    }
}

/// The §VIII-B counter pattern as a template: let `n` messages of type
/// `t` through, then apply `payload` actions to every further one — one
/// state and O(1) storage regardless of `n`.
pub fn after_count(
    t: OfType,
    n: i64,
    payload: Vec<AttackAction>,
    connections: Vec<ConnectionId>,
) -> Attack {
    assert!(n >= 0, "count must be non-negative");
    let counter = "counter".to_string();
    let front = || Expr::DequeRead {
        deque: counter.clone(),
        end: DequeEnd::Front,
    };
    let watch = AttackState {
        name: "watch".into(),
        rules: vec![
            Rule {
                name: "init".into(),
                connections: connections.clone(),
                required: CapabilitySet::no_tls(),
                condition: Expr::and(
                    Expr::eq(Expr::DequeLen(counter.clone()), Expr::Lit(Value::Int(0))),
                    type_is(t),
                ),
                actions: vec![AttackAction::Prepend {
                    deque: counter.clone(),
                    value: Expr::Lit(Value::Int(0)),
                }],
            },
            Rule {
                name: "count".into(),
                connections: connections.clone(),
                required: CapabilitySet::no_tls(),
                condition: Expr::and(
                    type_is(t),
                    Expr::Lt(Box::new(front()), Box::new(Expr::Lit(Value::Int(n)))),
                ),
                actions: vec![
                    AttackAction::Prepend {
                        deque: counter.clone(),
                        value: Expr::Add(Box::new(front()), Box::new(Expr::Lit(Value::Int(1)))),
                    },
                    AttackAction::Pop(counter.clone()),
                    AttackAction::Pass,
                ],
            },
            Rule {
                name: "trigger".into(),
                connections: connections.clone(),
                required: CapabilitySet::no_tls(),
                condition: Expr::eq(front(), Expr::Lit(Value::Int(n))),
                actions: vec![AttackAction::GoToState(1)],
            },
        ],
    };
    let strike = AttackState {
        name: "strike".into(),
        rules: vec![Rule {
            name: "strike".into(),
            connections,
            required: CapabilitySet::no_tls(),
            condition: type_is(t),
            actions: payload,
        }],
    };
    Attack {
        name: format!("after_{n}_{}", t.spec_name().to_lowercase()),
        states: vec![watch, strike],
        start: 0,
    }
}

/// A stochastic variant of [`suppress_type`] (the §VIII-A future-work
/// extension): drop each matching message independently with probability
/// `p`, using the executor's deterministic per-message entropy so runs
/// stay reproducible.
///
/// # Panics
///
/// Panics unless `0.0 <= p <= 1.0`.
pub fn suppress_type_with_probability(t: OfType, p: f64, connections: Vec<ConnectionId>) -> Attack {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    Attack {
        name: format!(
            "suppress_{}_p{:.0}",
            t.spec_name().to_lowercase(),
            p * 100.0
        ),
        states: vec![AttackState {
            name: "lossy".into(),
            rules: vec![Rule {
                name: "phi1".into(),
                connections,
                required: CapabilitySet::no_tls(),
                condition: Expr::and(
                    type_is(t),
                    Expr::Lt(
                        Box::new(Expr::Prop(Property::Entropy)),
                        Box::new(Expr::Lit(Value::Float(p))),
                    ),
                ),
                actions: vec![AttackAction::Drop],
            }],
        }],
        start: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::AttackStateGraph;

    fn conns() -> Vec<ConnectionId> {
        vec![ConnectionId(0)]
    }

    #[test]
    fn suppress_type_is_the_figure_10_shape() {
        let a = suppress_type(OfType::FlowMod, conns());
        a.validate().expect("template validates");
        assert_eq!(a.states.len(), 1);
        assert_eq!(a.absorbing_states(), vec![0]);
    }

    #[test]
    fn after_sequence_builds_a_chain() {
        let a = after_sequence(
            &[OfType::PacketIn, OfType::FlowMod],
            vec![AttackAction::Drop],
            conns(),
        );
        a.validate().expect("template validates");
        assert_eq!(a.states.len(), 3);
        let g = AttackStateGraph::from_attack(&a);
        assert_eq!(g.edges.len(), 2);
        assert!(g.unreachable_states().is_empty());
        assert_eq!(g.absorbing, vec![2]);
    }

    #[test]
    #[should_panic(expected = "at least one type")]
    fn after_sequence_rejects_empty() {
        after_sequence(&[], vec![], conns());
    }

    #[test]
    fn after_count_uses_constant_storage() {
        // Same structure no matter how large n grows: the §VIII-B claim.
        let small = after_count(OfType::FlowMod, 3, vec![AttackAction::Drop], conns());
        let large = after_count(
            OfType::FlowMod,
            1_000_000,
            vec![AttackAction::Drop],
            conns(),
        );
        small.validate().expect("validates");
        large.validate().expect("validates");
        assert_eq!(small.states.len(), large.states.len());
    }

    #[test]
    fn stochastic_template_reads_entropy() {
        let a = suppress_type_with_probability(OfType::FlowMod, 0.25, conns());
        a.validate().expect("validates");
        let caps = a.states[0].rules[0].exercised_capabilities();
        assert!(caps.contains(crate::model::Capability::ReadMessageMetadata));
        assert!(caps.contains(crate::model::Capability::DropMessage));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn stochastic_template_rejects_bad_p() {
        suppress_type_with_probability(OfType::FlowMod, 1.5, conns());
    }
}
