//! Indexable-guard extraction from rule conditionals.
//!
//! The executor's compiled dispatcher (see `exec::dispatch`) needs to
//! know, for each rule, a *guard*: a single predicate that is (1) cheap
//! to index — an equality, membership, or comparison test between one
//! message property and literal values — and (2) sound to use for
//! exclusion, meaning that whenever the guard is false the reference
//! scan's evaluation of the full conditional is guaranteed to return a
//! falsy value *without logging anything*. Under that contract the
//! dispatcher may skip the rule entirely and stay bit-for-bit identical
//! to the scan.
//!
//! Soundness falls out of the conjunction's left-to-right short-circuit
//! evaluation: the guard is the *leftmost non-trivial conjunct* of the
//! condition. If it evaluates false, [`Expr::eval`] short-circuits there
//! and nothing later in the condition (which might error and log) ever
//! runs. Conjuncts before the anchor are skipped only when they are
//! truthy literals — the one form that can neither fail nor be false.
//!
//! Anything else — disjunctions, negations, deque reads, arithmetic,
//! property-vs-property comparisons — yields no guard and the rule is
//! evaluated on every message it is scoped to (the *residual* set).

use crate::lang::conditional::Expr;
use crate::lang::property::Property;
use crate::lang::value::Value;
use attain_openflow::{MacAddr, OfType};
use std::net::Ipv4Addr;

/// Direction of an indexable ordering comparison, normalized so the
/// property is always on the left (`prop OP threshold`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `prop < threshold`.
    Lt,
    /// `prop <= threshold`.
    Le,
    /// `prop > threshold`.
    Gt,
    /// `prop >= threshold`.
    Ge,
}

/// The indexable guard extracted from a rule condition, if any.
#[derive(Debug, Clone, PartialEq)]
pub enum Guard {
    /// The condition starts with a falsy literal: the rule can never
    /// match (and never log), so the dispatcher drops it entirely.
    Never,
    /// `prop == literal` (either operand order in the source).
    Eq {
        /// The anchored property.
        prop: Property,
        /// The literal compared against.
        value: Value,
    },
    /// `prop in [literals…]`.
    In {
        /// The anchored property.
        prop: Property,
        /// The literal haystack.
        values: Vec<Value>,
    },
    /// `prop OP threshold` over a statically numeric, infallible
    /// property (normalized so the property is on the left).
    Cmp {
        /// The anchored property.
        prop: Property,
        /// The normalized comparison.
        op: CmpOp,
        /// The literal threshold as a float (the language compares
        /// numerics through [`Value::as_float`]).
        threshold: f64,
    },
}

impl Guard {
    /// The property this guard anchors on, if it reads one.
    pub fn property(&self) -> Option<&Property> {
        match self {
            Guard::Never => None,
            Guard::Eq { prop, .. } | Guard::In { prop, .. } | Guard::Cmp { prop, .. } => Some(prop),
        }
    }
}

/// Whether reading `prop` can fail at runtime even when the capability
/// is granted (payload reads on unparseable frames, missing type-option
/// paths). Rules anchored on a fallible property must still run — and
/// log their error — when the read fails, so the dispatcher keeps an
/// error fallback set per property.
pub fn property_read_is_fallible(prop: &Property) -> bool {
    matches!(prop, Property::Type | Property::TypeOption(_))
}

/// Whether `prop` always yields a numeric value and never fails: the
/// precondition for indexing ordering comparisons (a non-numeric operand
/// would make the scan log a `TypeMismatch`, which exclusion would
/// silently swallow).
fn property_is_numeric_infallible(prop: &Property) -> bool {
    matches!(
        prop,
        Property::Length | Property::Id | Property::Timestamp | Property::Entropy
    )
}

/// Whether `value` may serve as an indexed literal: hashable under
/// [`ValueKey`] and total under `lang_eq`. Non-finite floats are
/// rejected (NaN breaks the key ≡ equality correspondence), as are
/// stored messages (never literals in practice, and not hashable).
fn literal_is_indexable(value: &Value) -> bool {
    match value {
        Value::Float(x) => x.is_finite(),
        Value::Message(_) => false,
        _ => true,
    }
}

/// Extracts the indexable guard anchoring `condition`, walking the
/// left spine of the top-level conjunction.
///
/// Returns `None` when the leftmost non-trivial conjunct is not an
/// indexable shape — the rule then belongs to the residual scan set.
pub fn anchor_guard(condition: &Expr) -> Option<Guard> {
    // Conjuncts in evaluation order: And(And(a, b), c) ⇒ a, b, c.
    // Truthy literals are skipped (always Ok(true), no side effects);
    // the first conjunct past them is the anchor candidate.
    let mut stack: Vec<&Expr> = vec![condition];
    while let Some(e) = stack.pop() {
        match e {
            Expr::And(a, b) => {
                stack.push(b);
                stack.push(a);
            }
            Expr::Lit(v) if v.truthy() => continue,
            Expr::Lit(_) => return Some(Guard::Never),
            other => return classify(other),
        }
    }
    // Every conjunct was a truthy literal: always matches, no anchor.
    None
}

/// Classifies a single conjunct as a guard, if it has an indexable shape.
fn classify(e: &Expr) -> Option<Guard> {
    match e {
        Expr::Eq(a, b) => {
            let (prop, value) = prop_and_lit(a, b)?;
            literal_is_indexable(value).then(|| Guard::Eq {
                prop: prop.clone(),
                value: value.clone(),
            })
        }
        Expr::In(needle, haystack) => {
            let Expr::Prop(prop) = needle.as_ref() else {
                return None;
            };
            let mut values = Vec::with_capacity(haystack.len());
            for item in haystack {
                let Expr::Lit(v) = item else { return None };
                if !literal_is_indexable(v) {
                    return None;
                }
                values.push(v.clone());
            }
            Some(Guard::In {
                prop: prop.clone(),
                values,
            })
        }
        Expr::Lt(a, b) => cmp_guard(a, b, CmpOp::Lt, CmpOp::Gt),
        Expr::Le(a, b) => cmp_guard(a, b, CmpOp::Le, CmpOp::Ge),
        Expr::Gt(a, b) => cmp_guard(a, b, CmpOp::Gt, CmpOp::Lt),
        Expr::Ge(a, b) => cmp_guard(a, b, CmpOp::Ge, CmpOp::Le),
        _ => None,
    }
}

/// Matches `(Prop, Lit)` in either operand order.
fn prop_and_lit<'a>(a: &'a Expr, b: &'a Expr) -> Option<(&'a Property, &'a Value)> {
    match (a, b) {
        (Expr::Prop(p), Expr::Lit(v)) | (Expr::Lit(v), Expr::Prop(p)) => Some((p, v)),
        _ => None,
    }
}

/// Builds a comparison guard from `a OP b`, flipping the operator when
/// the literal is on the left (`lit < prop` ⇒ `prop > lit`).
fn cmp_guard(a: &Expr, b: &Expr, direct: CmpOp, flipped: CmpOp) -> Option<Guard> {
    let (prop, value, op) = match (a, b) {
        (Expr::Prop(p), Expr::Lit(v)) => (p, v, direct),
        (Expr::Lit(v), Expr::Prop(p)) => (p, v, flipped),
        _ => return None,
    };
    if !property_is_numeric_infallible(prop) {
        return None;
    }
    let threshold = value.as_float().filter(|x| x.is_finite())?;
    Some(Guard::Cmp {
        prop: prop.clone(),
        op,
        threshold,
    })
}

/// A hashable key whose equality coincides exactly with the language's
/// `lang_eq` on indexable values: numerics collapse to their `f64`
/// image (the language compares `Int`/`Float` cross-kind through
/// [`Value::as_float`]), everything else keys on its own variant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueKey {
    /// A numeric value, keyed by canonical `f64` bits (`-0.0` folds
    /// into `+0.0`, matching `-0.0 == 0.0`).
    Num(u64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// A component address.
    Addr(crate::model::NodeRef),
    /// An OpenFlow message type.
    MsgType(OfType),
    /// An IPv4 address.
    Ip(Ipv4Addr),
    /// A MAC address.
    Mac(MacAddr),
    /// The none value (`none == none` holds in the language).
    None,
}

impl ValueKey {
    /// The key for `value`, or `None` for unkeyable kinds (stored
    /// messages). NaN floats produce a key that equals no finite key,
    /// mirroring `NaN != x` — index builders must still reject them
    /// (see `literal_is_indexable`) because `NaN != NaN` would be
    /// violated by bucket lookup.
    pub fn of(value: &Value) -> Option<ValueKey> {
        Some(match value {
            Value::Int(_) | Value::Float(_) => {
                let x = value.as_float().expect("numeric kinds convert");
                ValueKey::Num(if x == 0.0 {
                    0.0f64.to_bits()
                } else {
                    x.to_bits()
                })
            }
            Value::Bool(b) => ValueKey::Bool(*b),
            Value::Str(s) => ValueKey::Str(s.clone()),
            Value::Addr(a) => ValueKey::Addr(*a),
            Value::MsgType(t) => ValueKey::MsgType(*t),
            Value::Ip(ip) => ValueKey::Ip(*ip),
            Value::Mac(m) => ValueKey::Mac(*m),
            Value::None => ValueKey::None,
            Value::Message(_) => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::conditional::DequeEnd;

    fn type_eq() -> Expr {
        Expr::eq(
            Expr::Prop(Property::Type),
            Expr::Lit(Value::MsgType(OfType::FlowMod)),
        )
    }

    #[test]
    fn leftmost_conjunct_is_the_anchor() {
        // type == FLOW_MOD && front(d) == 1 — anchored on the type test.
        let cond = Expr::and(
            type_eq(),
            Expr::eq(
                Expr::DequeRead {
                    deque: "d".into(),
                    end: DequeEnd::Front,
                },
                Expr::Lit(Value::Int(1)),
            ),
        );
        let g = anchor_guard(&cond).expect("indexable");
        assert_eq!(
            g,
            Guard::Eq {
                prop: Property::Type,
                value: Value::MsgType(OfType::FlowMod),
            }
        );
        // Swapped: the deque read comes first and defies indexing.
        let cond = Expr::and(
            Expr::eq(
                Expr::DequeRead {
                    deque: "d".into(),
                    end: DequeEnd::Front,
                },
                Expr::Lit(Value::Int(1)),
            ),
            type_eq(),
        );
        assert_eq!(anchor_guard(&cond), None);
    }

    #[test]
    fn truthy_literals_are_skipped_falsy_kill_the_rule() {
        let cond = Expr::and(Expr::Lit(Value::Bool(true)), type_eq());
        assert!(matches!(anchor_guard(&cond), Some(Guard::Eq { .. })));
        let cond = Expr::and(Expr::Lit(Value::Bool(false)), type_eq());
        assert_eq!(anchor_guard(&cond), Some(Guard::Never));
        // `when true` alone: no anchor, always a candidate.
        assert_eq!(anchor_guard(&Expr::always()), None);
    }

    #[test]
    fn literal_order_is_normalized() {
        let cond = Expr::eq(Expr::Lit(Value::Int(42)), Expr::Prop(Property::Length));
        assert_eq!(
            anchor_guard(&cond),
            Some(Guard::Eq {
                prop: Property::Length,
                value: Value::Int(42),
            })
        );
        // 10 < length ⇒ length > 10.
        let cond = Expr::Lt(
            Box::new(Expr::Lit(Value::Int(10))),
            Box::new(Expr::Prop(Property::Length)),
        );
        assert_eq!(
            anchor_guard(&cond),
            Some(Guard::Cmp {
                prop: Property::Length,
                op: CmpOp::Gt,
                threshold: 10.0,
            })
        );
    }

    #[test]
    fn membership_needs_all_literals() {
        let all_lits = Expr::In(
            Box::new(Expr::Prop(Property::Type)),
            vec![
                Expr::Lit(Value::MsgType(OfType::Hello)),
                Expr::Lit(Value::MsgType(OfType::FlowMod)),
            ],
        );
        assert!(
            matches!(anchor_guard(&all_lits), Some(Guard::In { values, .. }) if values.len() == 2)
        );
        let with_prop = Expr::In(
            Box::new(Expr::Prop(Property::Type)),
            vec![
                Expr::Lit(Value::MsgType(OfType::Hello)),
                Expr::Prop(Property::Type),
            ],
        );
        assert_eq!(anchor_guard(&with_prop), None);
    }

    #[test]
    fn comparisons_index_only_infallible_numeric_properties() {
        // msg["priority"] can fail (unparseable, missing field): residual.
        let cond = Expr::Gt(
            Box::new(Expr::Prop(Property::TypeOption("priority".into()))),
            Box::new(Expr::Lit(Value::Int(3))),
        );
        assert_eq!(anchor_guard(&cond), None);
        // Entropy is infallible and numeric: indexed.
        let cond = Expr::Le(
            Box::new(Expr::Prop(Property::Entropy)),
            Box::new(Expr::Lit(Value::Float(0.25))),
        );
        assert_eq!(
            anchor_guard(&cond),
            Some(Guard::Cmp {
                prop: Property::Entropy,
                op: CmpOp::Le,
                threshold: 0.25,
            })
        );
    }

    #[test]
    fn residual_shapes_yield_no_guard() {
        for cond in [
            Expr::or(type_eq(), type_eq()),
            Expr::Not(Box::new(type_eq())),
            Expr::Ne(
                Box::new(Expr::Prop(Property::Length)),
                Box::new(Expr::Lit(Value::Int(1))),
            ),
            Expr::eq(
                Expr::Add(
                    Box::new(Expr::Prop(Property::Id)),
                    Box::new(Expr::Lit(Value::Int(1))),
                ),
                Expr::Lit(Value::Int(2)),
            ),
            Expr::eq(
                Expr::Prop(Property::Source),
                Expr::Prop(Property::Destination),
            ),
        ] {
            assert_eq!(anchor_guard(&cond), None, "{cond:?}");
        }
    }

    #[test]
    fn nan_literals_are_not_indexable() {
        let cond = Expr::eq(
            Expr::Prop(Property::Entropy),
            Expr::Lit(Value::Float(f64::NAN)),
        );
        assert_eq!(anchor_guard(&cond), None);
        let cond = Expr::Gt(
            Box::new(Expr::Prop(Property::Entropy)),
            Box::new(Expr::Lit(Value::Float(f64::INFINITY))),
        );
        assert_eq!(anchor_guard(&cond), None);
    }

    #[test]
    fn value_keys_mirror_lang_eq() {
        // Int/Float cross-kind equality collapses to one key.
        assert_eq!(
            ValueKey::of(&Value::Int(3)),
            ValueKey::of(&Value::Float(3.0))
        );
        assert_ne!(
            ValueKey::of(&Value::Int(3)),
            ValueKey::of(&Value::Float(3.5))
        );
        // Signed zero folds.
        assert_eq!(
            ValueKey::of(&Value::Float(-0.0)),
            ValueKey::of(&Value::Int(0))
        );
        // Distinct kinds never collide.
        assert_ne!(
            ValueKey::of(&Value::Str("3".into())),
            ValueKey::of(&Value::Int(3))
        );
        // Messages are unkeyable.
        assert_eq!(
            ValueKey::of(&Value::Message(crate::lang::value::StoredMessage {
                conn: 0,
                to_controller: true,
                frame: attain_openflow::Frame::new(vec![]),
            })),
            None
        );
    }

    #[test]
    fn fallibility_classification() {
        assert!(property_read_is_fallible(&Property::Type));
        assert!(property_read_is_fallible(&Property::TypeOption("x".into())));
        for p in [
            Property::Source,
            Property::Destination,
            Property::Timestamp,
            Property::Length,
            Property::Id,
            Property::Entropy,
        ] {
            assert!(!property_read_is_fallible(&p), "{p}");
        }
    }
}
