//! Per-connection timing observables: the arrival-history state behind
//! the DSL's `latency(...)`, `inter_arrival(...)`, `timing_mean(...)`,
//! `timing_stddev(...)`, `timing_count(...)`, and `elapsed_in_state()`
//! predicates (ROADMAP item 2, grounded in "Fingerprinting OpenFlow
//! controllers").
//!
//! Design invariants:
//!
//! * **Virtual time only.** Every sample is the difference of two
//!   `InjectorInput::now_ns` stamps — the sim clock under netsim, the
//!   proxy's monotonic clock under real TCP. Nothing here reads a wall
//!   clock, so same-seed runs are byte-identical.
//! * **Bounded, O(1) updates.** Each `(req, resp)` message-type pair
//!   keeps one ring buffer whose capacity is the largest window any
//!   predicate in the attack requests (clamped to
//!   [`MAX_TIMING_WINDOW`]). Observation cost is linear in the number
//!   of *distinct pairs the attack names*, not in history length.
//! * **Plan-driven.** [`TimingPlan::from_attack`] walks the ruleset
//!   once at load; attacks with no timing predicates produce an empty
//!   plan and the executor skips observation entirely
//!   ([`TimingStore::is_passive`]), keeping timing-free rulesets
//!   byte-identical to their pre-timing behavior.

use crate::lang::action::AttackAction;
use crate::lang::conditional::{EvalError, Expr};
use crate::lang::state::Attack;
use crate::lang::value::Value;
use crate::model::ConnectionId;
use attain_openflow::OfType;
use std::collections::{BTreeMap, VecDeque};

/// Hard ceiling on the rolling-window length a timing predicate may
/// request (also the per-pair ring capacity ceiling).
pub const MAX_TIMING_WINDOW: u32 = 256;

/// Which statistic a [`Expr::Timing`] predicate reads from a pair's
/// sample ring.
///
/// There is deliberately no separate inter-arrival statistic:
/// `inter_arrival(T)` is `Timing { req: T, resp: T, stat: Last, .. }` —
/// the time between consecutive arrivals of the same type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingStat {
    /// The most recent sample, in nanoseconds.
    Last,
    /// Mean of the most recent `window` samples, in nanoseconds.
    Mean,
    /// Population standard deviation of the most recent `window`
    /// samples, in nanoseconds.
    StdDev,
    /// How many samples have *ever* been observed for the pair (a
    /// monotonic counter, not ring occupancy — exact and infallible, so
    /// it works as a guard before fallible stat reads).
    Count,
}

impl TimingStat {
    /// Stable lowercase name, for error messages.
    pub fn name(self) -> &'static str {
        match self {
            TimingStat::Last => "last",
            TimingStat::Mean => "mean",
            TimingStat::StdDev => "stddev",
            TimingStat::Count => "count",
        }
    }
}

/// The sample ring for one `(req, resp)` type pair on one connection.
#[derive(Debug, Clone)]
pub struct PairSamples {
    /// Most recent samples, oldest at the front. Length ≤ the plan's
    /// ring capacity for the pair.
    ring: VecDeque<u64>,
    /// Monotonic count of samples ever pushed (backs `timing_count`).
    total: u64,
}

impl PairSamples {
    fn new() -> Self {
        PairSamples {
            ring: VecDeque::new(),
            total: 0,
        }
    }

    /// The most recent `window` samples (fewer if the ring holds fewer).
    fn recent(&self, window: u32) -> impl Iterator<Item = u64> + '_ {
        let n = (window as usize).min(self.ring.len());
        self.ring.iter().rev().take(n).copied()
    }

    /// Samples ever observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Current ring occupancy.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no samples.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// Per-connection timing state: last-arrival stamps for every request
/// type the plan names, plus one sample ring per planned pair.
#[derive(Debug, Clone)]
pub struct ConnTiming {
    /// `(request type, last arrival stamp)` — present once the type has
    /// arrived at least once. Not cleared when a response is observed:
    /// `latency(A, B)` is the time since the *most recent* `A`.
    last_arrival: Vec<(OfType, u64)>,
    /// `((req, resp), samples)`, in the plan's (sorted) pair order.
    pairs: Vec<((OfType, OfType), PairSamples)>,
}

impl ConnTiming {
    fn from_plan(plan: &TimingPlan) -> Self {
        ConnTiming {
            last_arrival: Vec::new(),
            pairs: plan
                .pairs
                .iter()
                .map(|&(pair, _)| (pair, PairSamples::new()))
                .collect(),
        }
    }

    /// The sample ring for a pair, if the plan tracks it.
    pub fn pair(&self, req: OfType, resp: OfType) -> Option<&PairSamples> {
        self.pairs
            .iter()
            .find(|(p, _)| *p == (req, resp))
            .map(|(_, s)| s)
    }

    fn last_arrival(&self, t: OfType) -> Option<u64> {
        self.last_arrival
            .iter()
            .find(|(ty, _)| *ty == t)
            .map(|(_, at)| *at)
    }
}

/// The read-only view an expression evaluation gets: the connection's
/// timing state (if any) plus how long the executor has sat in the
/// current attack state.
#[derive(Debug, Clone, Copy)]
pub struct TimingCtx<'a> {
    conn: Option<&'a ConnTiming>,
    elapsed_in_state_ns: u64,
}

impl<'a> TimingCtx<'a> {
    /// A context with no timing state at all — `timing_count` reads 0,
    /// `elapsed_in_state()` reads 0, every other stat is
    /// [`EvalError::NoSample`]. Used by the plain [`Expr::eval`]
    /// wrapper and by callers outside the executor (tests, tools).
    pub fn detached() -> Self {
        TimingCtx {
            conn: None,
            elapsed_in_state_ns: 0,
        }
    }

    /// Nanoseconds since the current attack state was entered.
    pub fn elapsed_in_state_ns(&self) -> u64 {
        self.elapsed_in_state_ns
    }

    /// Evaluates one timing statistic; the [`Expr::Timing`] eval arm.
    ///
    /// # Errors
    ///
    /// [`EvalError::NoSample`] when `stat` is `Last`/`Mean`/`StdDev` and
    /// the pair has no sample yet (`Count` never fails: it reads 0).
    pub fn read(
        &self,
        req: OfType,
        resp: OfType,
        stat: TimingStat,
        window: u32,
    ) -> Result<Value, EvalError> {
        let samples = self.conn.and_then(|c| c.pair(req, resp));
        if stat == TimingStat::Count {
            return Ok(Value::Int(samples.map_or(0, |s| s.total) as i64));
        }
        let samples = samples
            .filter(|s| !s.is_empty())
            .ok_or(EvalError::NoSample { stat: stat.name() })?;
        match stat {
            TimingStat::Last => Ok(Value::Int(
                *samples.ring.back().expect("non-empty ring") as i64
            )),
            TimingStat::Mean => Ok(Value::Float(Self::mean(samples, window))),
            TimingStat::StdDev => {
                let mean = Self::mean(samples, window);
                let n = (window as usize).min(samples.ring.len());
                // Population variance over the same window; exact-sum
                // the squared deviations in f64 (deterministic IEEE).
                let var = samples
                    .recent(window)
                    .map(|x| {
                        let d = x as f64 - mean;
                        d * d
                    })
                    .sum::<f64>()
                    / n as f64;
                Ok(Value::Float(var.sqrt()))
            }
            TimingStat::Count => unreachable!("handled above"),
        }
    }

    fn mean(samples: &PairSamples, window: u32) -> f64 {
        let n = (window as usize).min(samples.ring.len());
        // Sum in u128 so the mean is exact regardless of sample count.
        let sum: u128 = samples.recent(window).map(u128::from).sum();
        sum as f64 / n as f64
    }
}

/// What an attack's timing predicates need tracked: the distinct
/// `(req, resp)` pairs (with per-pair ring capacity = the largest
/// window any predicate requests) and the set of request types whose
/// arrivals must be stamped.
#[derive(Debug, Clone, Default)]
pub struct TimingPlan {
    /// Sorted, deduplicated `((req, resp), ring capacity)`.
    pairs: Vec<((OfType, OfType), usize)>,
    /// Sorted, deduplicated request types.
    req_types: Vec<OfType>,
}

impl TimingPlan {
    /// An empty plan: no observation, timing stats all read as absent.
    pub fn empty() -> Self {
        TimingPlan::default()
    }

    /// Walks every rule condition and every expression-bearing action
    /// in the attack, collecting the timing pairs it names.
    pub fn from_attack(attack: &Attack) -> Self {
        let mut caps: BTreeMap<(OfType, OfType), usize> = BTreeMap::new();
        let mut visit = |e: &Expr| {
            if let Expr::Timing {
                req, resp, window, ..
            } = e
            {
                let cap = (*window).clamp(1, MAX_TIMING_WINDOW) as usize;
                let slot = caps.entry((*req, *resp)).or_insert(1);
                *slot = (*slot).max(cap);
            }
        };
        for state in attack.states() {
            for rule in &state.rules {
                rule.condition.for_each(&mut visit);
                for action in &rule.actions {
                    match action {
                        AttackAction::Delay(e) | AttackAction::Sleep(e) => e.for_each(&mut visit),
                        AttackAction::ModifyMetadata { value, .. }
                        | AttackAction::Modify { value, .. }
                        | AttackAction::Prepend { value, .. }
                        | AttackAction::Append { value, .. } => value.for_each(&mut visit),
                        _ => {}
                    }
                }
            }
        }
        let mut req_types: Vec<OfType> = caps.keys().map(|&(req, _)| req).collect();
        req_types.sort_unstable();
        req_types.dedup();
        TimingPlan {
            pairs: caps.into_iter().collect(),
            req_types,
        }
    }

    /// Whether the plan tracks nothing.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The tracked pairs with their ring capacities.
    pub fn pairs(&self) -> &[((OfType, OfType), usize)] {
        &self.pairs
    }
}

/// The executor's timing state: one [`ConnTiming`] per connection that
/// has seen a planned message type, plus the attack-state entry stamp
/// backing `elapsed_in_state()`.
#[derive(Debug)]
pub struct TimingStore {
    plan: TimingPlan,
    conns: BTreeMap<usize, ConnTiming>,
    state_entered_ns: u64,
}

impl TimingStore {
    /// A store driven by the given plan; `elapsed_in_state()` starts
    /// counting from virtual time 0.
    pub fn new(plan: TimingPlan) -> Self {
        TimingStore {
            plan,
            conns: BTreeMap::new(),
            state_entered_ns: 0,
        }
    }

    /// `true` when the plan tracks no pairs — the executor then skips
    /// [`TimingStore::observe`] entirely (timing-free attacks pay
    /// nothing and change nothing).
    pub fn is_passive(&self) -> bool {
        self.plan.is_empty()
    }

    /// Records one message arrival. Samples are computed *before* the
    /// arrival stamp for `of_type` is updated, so a pair with
    /// `req == resp` yields consecutive-arrival gaps (inter-arrival).
    pub fn observe(&mut self, conn: ConnectionId, of_type: OfType, now_ns: u64) {
        if self.plan.is_empty() {
            return;
        }
        let plan = &self.plan;
        let ct = self
            .conns
            .entry(conn.0)
            .or_insert_with(|| ConnTiming::from_plan(plan));
        for (i, &((req, resp), cap)) in plan.pairs.iter().enumerate() {
            if resp != of_type {
                continue;
            }
            if let Some(req_at) = ct.last_arrival(req) {
                let samples = &mut ct.pairs[i].1;
                samples.ring.push_back(now_ns.saturating_sub(req_at));
                while samples.ring.len() > cap {
                    samples.ring.pop_front();
                }
                samples.total += 1;
            }
        }
        if plan.req_types.binary_search(&of_type).is_ok() {
            match ct.last_arrival.iter_mut().find(|(t, _)| *t == of_type) {
                Some(slot) => slot.1 = now_ns,
                None => ct.last_arrival.push((of_type, now_ns)),
            }
        }
    }

    /// Re-stamps the `elapsed_in_state()` origin (the executor calls
    /// this on every `GOTOSTATE` that changes state).
    pub fn enter_state(&mut self, now_ns: u64) {
        self.state_entered_ns = now_ns;
    }

    /// The evaluation view for one connection at one instant.
    pub fn ctx(&self, conn: ConnectionId, now_ns: u64) -> TimingCtx<'_> {
        TimingCtx {
            conn: self.conns.get(&conn.0),
            elapsed_in_state_ns: now_ns.saturating_sub(self.state_entered_ns),
        }
    }

    /// Drops all timing state for a connection (teardown / generation
    /// epoch bump). Returns whether anything was held.
    pub fn release_connection(&mut self, conn: ConnectionId) -> bool {
        self.conns.remove(&conn.0).is_some()
    }

    /// How many connections currently hold timing state (leak tests).
    pub fn tracked_connections(&self) -> usize {
        self.conns.len()
    }

    /// The per-connection state, for inspection in tests.
    pub fn connection(&self, conn: ConnectionId) -> Option<&ConnTiming> {
        self.conns.get(&conn.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::state::AttackState;
    use crate::lang::Rule;
    use crate::model::CapabilitySet;

    fn plan_for(pairs: &[(OfType, OfType, u32)]) -> TimingPlan {
        let condition = pairs.iter().fold(Expr::always(), |acc, &(req, resp, w)| {
            Expr::and(
                acc,
                Expr::Gt(
                    Box::new(Expr::Timing {
                        req,
                        resp,
                        stat: TimingStat::Mean,
                        window: w,
                    }),
                    Box::new(Expr::Lit(Value::Int(0))),
                ),
            )
        });
        let attack = Attack {
            name: "t".into(),
            states: vec![AttackState {
                name: "s".into(),
                rules: vec![Rule {
                    name: "phi".into(),
                    connections: vec![ConnectionId(0)],
                    required: CapabilitySet::no_tls(),
                    condition,
                    actions: vec![],
                }],
            }],
            start: 0,
        };
        TimingPlan::from_attack(&attack)
    }

    #[test]
    fn latency_samples_are_resp_minus_most_recent_req() {
        let plan = plan_for(&[(OfType::PacketIn, OfType::FlowMod, 8)]);
        let mut store = TimingStore::new(plan);
        let c = ConnectionId(3);
        store.observe(c, OfType::PacketIn, 1_000);
        store.observe(c, OfType::FlowMod, 1_300);
        store.observe(c, OfType::PacketIn, 2_000);
        store.observe(c, OfType::PacketIn, 2_500); // newer req wins
        store.observe(c, OfType::FlowMod, 2_900);
        let ctx = store.ctx(c, 3_000);
        assert_eq!(
            ctx.read(OfType::PacketIn, OfType::FlowMod, TimingStat::Last, 1)
                .unwrap(),
            Value::Int(400)
        );
        assert_eq!(
            ctx.read(OfType::PacketIn, OfType::FlowMod, TimingStat::Count, 1)
                .unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            ctx.read(OfType::PacketIn, OfType::FlowMod, TimingStat::Mean, 8)
                .unwrap(),
            Value::Float(350.0)
        );
    }

    #[test]
    fn inter_arrival_is_same_type_pair() {
        let plan = plan_for(&[(OfType::PacketIn, OfType::PacketIn, 4)]);
        let mut store = TimingStore::new(plan);
        let c = ConnectionId(0);
        store.observe(c, OfType::PacketIn, 100);
        store.observe(c, OfType::PacketIn, 250);
        store.observe(c, OfType::PacketIn, 500);
        let ctx = store.ctx(c, 501);
        assert_eq!(
            ctx.read(OfType::PacketIn, OfType::PacketIn, TimingStat::Last, 1)
                .unwrap(),
            Value::Int(250)
        );
        assert_eq!(
            ctx.read(OfType::PacketIn, OfType::PacketIn, TimingStat::Count, 1)
                .unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn ring_is_bounded_and_window_reads_most_recent() {
        let plan = plan_for(&[(OfType::EchoRequest, OfType::EchoReply, 3)]);
        let mut store = TimingStore::new(plan);
        let c = ConnectionId(1);
        for i in 0..10u64 {
            store.observe(c, OfType::EchoRequest, i * 1_000);
            store.observe(c, OfType::EchoReply, i * 1_000 + 100 + i);
        }
        let conn = store.connection(c).unwrap();
        let samples = conn.pair(OfType::EchoRequest, OfType::EchoReply).unwrap();
        assert_eq!(samples.len(), 3, "ring capped at the plan window");
        assert_eq!(samples.total(), 10, "count is the monotonic total");
        let ctx = store.ctx(c, 99_999);
        // Most recent 2 of the 3 retained samples: 108, 109.
        assert_eq!(
            ctx.read(OfType::EchoRequest, OfType::EchoReply, TimingStat::Mean, 2)
                .unwrap(),
            Value::Float(108.5)
        );
    }

    #[test]
    fn stddev_of_single_sample_is_zero_and_empty_is_no_sample() {
        let plan = plan_for(&[(OfType::PacketIn, OfType::PacketOut, 8)]);
        let mut store = TimingStore::new(plan);
        let c = ConnectionId(0);
        let ctx = store.ctx(c, 0);
        assert!(matches!(
            ctx.read(OfType::PacketIn, OfType::PacketOut, TimingStat::Mean, 8),
            Err(EvalError::NoSample { stat: "mean" })
        ));
        assert_eq!(
            ctx.read(OfType::PacketIn, OfType::PacketOut, TimingStat::Count, 1)
                .unwrap(),
            Value::Int(0)
        );
        store.observe(c, OfType::PacketIn, 10);
        store.observe(c, OfType::PacketOut, 25);
        let ctx = store.ctx(c, 30);
        assert_eq!(
            ctx.read(OfType::PacketIn, OfType::PacketOut, TimingStat::StdDev, 8)
                .unwrap(),
            Value::Float(0.0)
        );
    }

    #[test]
    fn release_connection_drops_state() {
        let plan = plan_for(&[(OfType::PacketIn, OfType::FlowMod, 8)]);
        let mut store = TimingStore::new(plan);
        let c = ConnectionId(7);
        store.observe(c, OfType::PacketIn, 1);
        assert_eq!(store.tracked_connections(), 1);
        assert!(store.release_connection(c));
        assert_eq!(store.tracked_connections(), 0);
        assert!(!store.release_connection(c));
        // A reconnect starts from scratch: no stale last_arrival.
        store.observe(c, OfType::FlowMod, 50);
        let ctx = store.ctx(c, 60);
        assert_eq!(
            ctx.read(OfType::PacketIn, OfType::FlowMod, TimingStat::Count, 1)
                .unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn passive_store_observes_nothing() {
        let mut store = TimingStore::new(TimingPlan::empty());
        assert!(store.is_passive());
        store.observe(ConnectionId(0), OfType::PacketIn, 1);
        assert_eq!(store.tracked_connections(), 0);
    }

    #[test]
    fn elapsed_in_state_restamps_on_enter() {
        let mut store = TimingStore::new(TimingPlan::empty());
        assert_eq!(store.ctx(ConnectionId(0), 500).elapsed_in_state_ns(), 500);
        store.enter_state(400);
        assert_eq!(store.ctx(ConnectionId(0), 500).elapsed_in_state_ns(), 100);
        // Clock anomalies saturate rather than wrap.
        assert_eq!(store.ctx(ConnectionId(0), 300).elapsed_in_state_ns(), 0);
    }

    #[test]
    fn plan_merges_windows_per_pair() {
        let plan = plan_for(&[
            (OfType::PacketIn, OfType::FlowMod, 4),
            (OfType::PacketIn, OfType::FlowMod, 32),
            (OfType::PacketIn, OfType::PacketIn, 1),
        ]);
        assert_eq!(plan.pairs().len(), 2);
        let cap = plan
            .pairs()
            .iter()
            .find(|(p, _)| *p == (OfType::PacketIn, OfType::FlowMod))
            .unwrap()
            .1;
        assert_eq!(cap, 32, "largest requested window wins");
    }
}
