//! `attackc` — the ATTAIN attack description compiler (the paper's
//! Figure 7 compiler component as a command-line tool).
//!
//! ```text
//! attackc FILE.atk                      # self-contained document
//! attackc --scenario enterprise FILE    # attack-only file against the
//!                                       # Figure 8/9 case-study models
//! attackc --dot FILE.atk                # also emit Graphviz DOT graphs
//! ```
//!
//! Exits non-zero with a line-numbered diagnostic on the first syntax,
//! resolution, or capability-validation error.

use attain_core::dsl::{self, CompiledAttack};
use attain_core::scenario;
use std::process::ExitCode;

struct Args {
    file: String,
    scenario: Option<String>,
    dot: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut file = None;
    let mut scenario = None;
    let mut dot = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scenario" => {
                scenario = Some(
                    args.next()
                        .ok_or_else(|| "--scenario needs a name (enterprise)".to_string())?,
                )
            }
            "--dot" => dot = true,
            "-h" | "--help" => {
                return Err("usage: attackc [--scenario enterprise] [--dot] FILE.atk".to_string())
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other} (try --help)"))
            }
            path => file = Some(path.to_string()),
        }
    }
    Ok(Args {
        file: file.ok_or_else(|| "no input file (try --help)".to_string())?,
        scenario,
        dot,
    })
}

fn describe(compiled: &CompiledAttack, dot: bool) {
    let g = &compiled.graph;
    println!(
        "attack {}: {} state(s), {} transition(s); start={}; absorbing={:?}; end={:?}",
        compiled.name(),
        g.vertices.len(),
        g.edges.len(),
        g.vertices[g.start],
        g.absorbing
            .iter()
            .map(|&i| g.vertices[i].as_str())
            .collect::<Vec<_>>(),
        g.end
            .iter()
            .map(|&i| g.vertices[i].as_str())
            .collect::<Vec<_>>(),
    );
    for (si, state) in compiled.states().iter().enumerate() {
        for rule in &state.rules {
            println!(
                "  σ{} {} :: rule {} on {} connection(s), γ = {}",
                si,
                state.name,
                rule.name,
                rule.connections.len(),
                rule.required,
            );
        }
    }
    let unreachable = g.unreachable_states();
    if !unreachable.is_empty() {
        println!(
            "warning: unreachable state(s): {:?}",
            unreachable
                .iter()
                .map(|&i| g.vertices[i].as_str())
                .collect::<Vec<_>>()
        );
    }
    if dot {
        println!("{}", g.to_dot());
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("attackc: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let result: Result<Vec<CompiledAttack>, dsl::DslError> = match args.scenario.as_deref() {
        None => dsl::compile_document(&source).map(|doc| {
            println!(
                "system model: {} controller(s), {} switch(es), {} host(s), |N_C| = {}",
                doc.system.controllers().count(),
                doc.system.switches().count(),
                doc.system.hosts().count(),
                doc.system.connection_count(),
            );
            doc.attacks
        }),
        Some("enterprise") => {
            let sc = scenario::enterprise_network();
            dsl::compile_all(&source, &sc.system, &sc.attack_model)
        }
        Some(other) => {
            eprintln!("attackc: unknown scenario {other} (available: enterprise)");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(attacks) => {
            for a in &attacks {
                describe(a, args.dot);
            }
            println!("{} attack(s) compiled and validated", attacks.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("attackc: {}: {e}", args.file);
            ExitCode::FAILURE
        }
    }
}
