//! The attacker capabilities model `Γ_{N_C} : N_C → P(Γ)` (paper §IV-C):
//! which capabilities the attacker is assumed to hold on each
//! control-plane connection.

use crate::model::capability::CapabilitySet;
use crate::model::system::{ConnectionId, SystemModel};
use std::fmt;

/// The per-connection capability assignment.
///
/// ```
/// use attain_core::model::{AttackModel, Capability, CapabilitySet, SystemModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = SystemModel::new();
/// let c1 = m.add_controller("c1")?;
/// let s1 = m.add_switch("s1")?;
/// let s2 = m.add_switch("s2")?;
/// let n0 = m.add_connection(c1, s1)?;
/// let n1 = m.add_connection(c1, s2)?;
///
/// // (c1,s1) is plain TCP; (c1,s2) runs TLS.
/// let mut am = AttackModel::uniform(&m, CapabilitySet::no_tls());
/// am.set(n1, CapabilitySet::tls());
/// assert!(am.get(n0).contains(Capability::ReadMessage));
/// assert!(!am.get(n1).contains(Capability::ReadMessage));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackModel {
    caps: Vec<CapabilitySet>,
}

impl AttackModel {
    /// Grants the same capability set on every connection of `system`.
    pub fn uniform(system: &SystemModel, caps: CapabilitySet) -> AttackModel {
        AttackModel {
            caps: vec![caps; system.connection_count()],
        }
    }

    /// Grants nothing anywhere (the attacker has compromised no
    /// connection).
    pub fn none(system: &SystemModel) -> AttackModel {
        AttackModel::uniform(system, CapabilitySet::EMPTY)
    }

    /// Sets the capabilities on one connection.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range for the system the model was
    /// built from.
    pub fn set(&mut self, conn: ConnectionId, caps: CapabilitySet) {
        self.caps[conn.0] = caps;
    }

    /// The capabilities granted on `conn` (empty if out of range).
    pub fn get(&self, conn: ConnectionId) -> CapabilitySet {
        self.caps.get(conn.0).copied().unwrap_or_default()
    }

    /// Number of connections covered.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// Whether the model covers no connections.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }
}

impl fmt::Display for AttackModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, caps) in self.caps.iter().enumerate() {
            writeln!(f, "n{i}: {caps}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::capability::Capability;

    fn system() -> SystemModel {
        let mut m = SystemModel::new();
        let c1 = m.add_controller("c1").unwrap();
        let s1 = m.add_switch("s1").unwrap();
        let s2 = m.add_switch("s2").unwrap();
        m.add_connection(c1, s1).unwrap();
        m.add_connection(c1, s2).unwrap();
        m
    }

    #[test]
    fn uniform_covers_every_connection() {
        let m = system();
        let am = AttackModel::uniform(&m, CapabilitySet::no_tls());
        assert_eq!(am.len(), 2);
        assert_eq!(am.get(ConnectionId(0)), CapabilitySet::no_tls());
        assert_eq!(am.get(ConnectionId(1)), CapabilitySet::no_tls());
    }

    #[test]
    fn per_connection_overrides() {
        let m = system();
        let mut am = AttackModel::uniform(&m, CapabilitySet::no_tls());
        am.set(ConnectionId(1), CapabilitySet::tls());
        assert!(am.get(ConnectionId(0)).contains(Capability::ModifyMessage));
        assert!(!am.get(ConnectionId(1)).contains(Capability::ModifyMessage));
    }

    #[test]
    fn out_of_range_is_empty() {
        let m = system();
        let am = AttackModel::none(&m);
        assert_eq!(am.get(ConnectionId(9)), CapabilitySet::EMPTY);
        assert!(!am.is_empty());
    }
}
