//! The system model (paper §IV-A): controllers `C`, switches `S`, end
//! hosts `H`, the data-plane graph `N_D`, and the control-plane relation
//! `N_C ⊆ C × S`.

use attain_openflow::MacAddr;
use std::fmt;
use std::net::Ipv4Addr;

/// Index of a controller in a [`SystemModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ControllerId(pub usize);

/// Index of a switch in a [`SystemModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub usize);

/// Index of a host in a [`SystemModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub usize);

/// Index of a control-plane connection (an element of `N_C`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnectionId(pub usize);

impl fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A reference to any system component that can be a message source or
/// destination, or a data-plane vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeRef {
    /// A controller.
    Controller(ControllerId),
    /// A switch.
    Switch(SwitchId),
    /// An end host.
    Host(HostId),
}

/// A controller `c_i ∈ C`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerSpec {
    /// Name, e.g. `c1`.
    pub name: String,
}

/// A switch `s_i ∈ S`, with its port set `P_i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchSpec {
    /// Name, e.g. `s1`.
    pub name: String,
    /// Port numbers in use (populated by `add_link`).
    pub ports: Vec<u16>,
}

/// An end host `h_i ∈ H`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSpec {
    /// Name, e.g. `h1`.
    pub name: String,
    /// IPv4 address, if modeled.
    pub ip: Option<Ipv4Addr>,
    /// MAC address, if modeled.
    pub mac: Option<MacAddr>,
}

/// An edge of the data-plane graph `N_D`, with the paper's edge
/// attributes `A_{N_D}`: the ingress/egress port on each endpoint
/// (`None` = the paper's NULL, used for host ends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataEdge {
    /// First endpoint.
    pub a: NodeRef,
    /// First endpoint's port (NULL for hosts).
    pub a_port: Option<u16>,
    /// Second endpoint.
    pub b: NodeRef,
    /// Second endpoint's port (NULL for hosts).
    pub b_port: Option<u16>,
}

/// Error constructing or validating a system model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemModelError {
    /// A name was used twice.
    DuplicateName(String),
    /// A lookup failed.
    UnknownName(String),
    /// The model violates the paper's well-formedness assumptions
    /// (`|C| ≥ 1`, `|S| ≥ 1`, `|H| ≥ 2`).
    NotFunctional(&'static str),
    /// A duplicate control-plane connection.
    DuplicateConnection(String),
}

impl fmt::Display for SystemModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemModelError::DuplicateName(n) => write!(f, "duplicate component name {n}"),
            SystemModelError::UnknownName(n) => write!(f, "unknown component name {n}"),
            SystemModelError::NotFunctional(why) => {
                write!(f, "system model is not a functional SDN network: {why}")
            }
            SystemModelError::DuplicateConnection(n) => {
                write!(f, "duplicate control plane connection {n}")
            }
        }
    }
}

impl std::error::Error for SystemModelError {}

/// The complete system model `(C, S, H, N_D, N_C)`.
///
/// ```
/// use attain_core::model::SystemModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The paper's Figure 3 example data plane.
/// let mut m = SystemModel::new();
/// let c1 = m.add_controller("c1")?;
/// let s1 = m.add_switch("s1")?;
/// let s2 = m.add_switch("s2")?;
/// let h1 = m.add_host("h1", None, None)?;
/// let h2 = m.add_host("h2", None, None)?;
/// let h3 = m.add_host("h3", None, None)?;
/// m.add_host_link(h1, s1, 1)?;
/// m.add_host_link(h2, s1, 2)?;
/// m.add_switch_link(s1, 3, s2, 1)?;
/// m.add_host_link(h3, s2, 2)?;
/// m.add_connection(c1, s1)?;
/// m.add_connection(c1, s2)?;
/// m.validate()?;
/// assert_eq!(m.data_plane().len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SystemModel {
    controllers: Vec<ControllerSpec>,
    switches: Vec<SwitchSpec>,
    hosts: Vec<HostSpec>,
    data_plane: Vec<DataEdge>,
    control_plane: Vec<(ControllerId, SwitchId)>,
}

impl SystemModel {
    /// Creates an empty model.
    pub fn new() -> SystemModel {
        SystemModel::default()
    }

    fn name_taken(&self, name: &str) -> bool {
        self.controllers.iter().any(|c| c.name == name)
            || self.switches.iter().any(|s| s.name == name)
            || self.hosts.iter().any(|h| h.name == name)
    }

    /// Adds a controller.
    ///
    /// # Errors
    ///
    /// Fails on a duplicate name.
    pub fn add_controller(&mut self, name: &str) -> Result<ControllerId, SystemModelError> {
        if self.name_taken(name) {
            return Err(SystemModelError::DuplicateName(name.to_string()));
        }
        self.controllers.push(ControllerSpec {
            name: name.to_string(),
        });
        Ok(ControllerId(self.controllers.len() - 1))
    }

    /// Adds a switch.
    ///
    /// # Errors
    ///
    /// Fails on a duplicate name.
    pub fn add_switch(&mut self, name: &str) -> Result<SwitchId, SystemModelError> {
        if self.name_taken(name) {
            return Err(SystemModelError::DuplicateName(name.to_string()));
        }
        self.switches.push(SwitchSpec {
            name: name.to_string(),
            ports: Vec::new(),
        });
        Ok(SwitchId(self.switches.len() - 1))
    }

    /// Adds an end host.
    ///
    /// # Errors
    ///
    /// Fails on a duplicate name.
    pub fn add_host(
        &mut self,
        name: &str,
        ip: Option<Ipv4Addr>,
        mac: Option<MacAddr>,
    ) -> Result<HostId, SystemModelError> {
        if self.name_taken(name) {
            return Err(SystemModelError::DuplicateName(name.to_string()));
        }
        self.hosts.push(HostSpec {
            name: name.to_string(),
            ip,
            mac,
        });
        Ok(HostId(self.hosts.len() - 1))
    }

    /// Adds a host↔switch edge to `N_D` (the host side's port is NULL,
    /// as in Figure 3).
    ///
    /// # Errors
    ///
    /// Currently infallible for in-range ids; returns `Result` for
    /// forward compatibility with richer validation.
    pub fn add_host_link(
        &mut self,
        host: HostId,
        switch: SwitchId,
        switch_port: u16,
    ) -> Result<(), SystemModelError> {
        self.switches[switch.0].ports.push(switch_port);
        self.data_plane.push(DataEdge {
            a: NodeRef::Host(host),
            a_port: None,
            b: NodeRef::Switch(switch),
            b_port: Some(switch_port),
        });
        Ok(())
    }

    /// Adds a switch↔switch edge to `N_D`.
    ///
    /// # Errors
    ///
    /// Currently infallible for in-range ids; returns `Result` for
    /// forward compatibility.
    pub fn add_switch_link(
        &mut self,
        a: SwitchId,
        a_port: u16,
        b: SwitchId,
        b_port: u16,
    ) -> Result<(), SystemModelError> {
        self.switches[a.0].ports.push(a_port);
        self.switches[b.0].ports.push(b_port);
        self.data_plane.push(DataEdge {
            a: NodeRef::Switch(a),
            a_port: Some(a_port),
            b: NodeRef::Switch(b),
            b_port: Some(b_port),
        });
        Ok(())
    }

    /// Adds a control-plane connection to `N_C`.
    ///
    /// # Errors
    ///
    /// Fails if the pair is already present (it is a relation, not a
    /// multiset).
    pub fn add_connection(
        &mut self,
        c: ControllerId,
        s: SwitchId,
    ) -> Result<ConnectionId, SystemModelError> {
        if self.control_plane.contains(&(c, s)) {
            return Err(SystemModelError::DuplicateConnection(format!(
                "({}, {})",
                self.controllers[c.0].name, self.switches[s.0].name
            )));
        }
        self.control_plane.push((c, s));
        Ok(ConnectionId(self.control_plane.len() - 1))
    }

    /// Checks the paper's functional-network assumptions: `|C| ≥ 1`,
    /// `|S| ≥ 1`, `|H| ≥ 2`.
    ///
    /// # Errors
    ///
    /// Returns [`SystemModelError::NotFunctional`] naming the violated
    /// assumption.
    pub fn validate(&self) -> Result<(), SystemModelError> {
        if self.controllers.is_empty() {
            return Err(SystemModelError::NotFunctional("|C| must be >= 1"));
        }
        if self.switches.is_empty() {
            return Err(SystemModelError::NotFunctional("|S| must be >= 1"));
        }
        if self.hosts.len() < 2 {
            return Err(SystemModelError::NotFunctional("|H| must be >= 2"));
        }
        Ok(())
    }

    // ---- lookups ------------------------------------------------------

    /// Controllers, in id order.
    pub fn controllers(&self) -> impl Iterator<Item = (ControllerId, &ControllerSpec)> {
        self.controllers
            .iter()
            .enumerate()
            .map(|(i, c)| (ControllerId(i), c))
    }

    /// Switches, in id order.
    pub fn switches(&self) -> impl Iterator<Item = (SwitchId, &SwitchSpec)> {
        self.switches
            .iter()
            .enumerate()
            .map(|(i, s)| (SwitchId(i), s))
    }

    /// Hosts, in id order.
    pub fn hosts(&self) -> impl Iterator<Item = (HostId, &HostSpec)> {
        self.hosts.iter().enumerate().map(|(i, h)| (HostId(i), h))
    }

    /// The data-plane edge list (`N_D`).
    pub fn data_plane(&self) -> &[DataEdge] {
        &self.data_plane
    }

    /// The control-plane relation (`N_C`), indexed by [`ConnectionId`].
    pub fn connections(&self) -> impl Iterator<Item = (ConnectionId, ControllerId, SwitchId)> + '_ {
        self.control_plane
            .iter()
            .enumerate()
            .map(|(i, &(c, s))| (ConnectionId(i), c, s))
    }

    /// Number of control-plane connections.
    pub fn connection_count(&self) -> usize {
        self.control_plane.len()
    }

    /// The endpoints of a connection.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn connection(&self, id: ConnectionId) -> (ControllerId, SwitchId) {
        self.control_plane[id.0]
    }

    /// Resolves a component name to a [`NodeRef`].
    pub fn resolve(&self, name: &str) -> Option<NodeRef> {
        if let Some(i) = self.controllers.iter().position(|c| c.name == name) {
            return Some(NodeRef::Controller(ControllerId(i)));
        }
        if let Some(i) = self.switches.iter().position(|s| s.name == name) {
            return Some(NodeRef::Switch(SwitchId(i)));
        }
        if let Some(i) = self.hosts.iter().position(|h| h.name == name) {
            return Some(NodeRef::Host(HostId(i)));
        }
        None
    }

    /// The name of a component.
    pub fn name_of(&self, node: NodeRef) -> &str {
        match node {
            NodeRef::Controller(c) => &self.controllers[c.0].name,
            NodeRef::Switch(s) => &self.switches[s.0].name,
            NodeRef::Host(h) => &self.hosts[h.0].name,
        }
    }

    /// Finds the connection id for a `(controller, switch)` name pair.
    pub fn connection_by_names(&self, controller: &str, switch: &str) -> Option<ConnectionId> {
        let c = match self.resolve(controller)? {
            NodeRef::Controller(c) => c,
            _ => return None,
        };
        let s = match self.resolve(switch)? {
            NodeRef::Switch(s) => s,
            _ => return None,
        };
        self.control_plane
            .iter()
            .position(|&(pc, ps)| pc == c && ps == s)
            .map(ConnectionId)
    }

    /// The host with the given IPv4 address.
    pub fn host_by_ip(&self, ip: Ipv4Addr) -> Option<HostId> {
        self.hosts.iter().position(|h| h.ip == Some(ip)).map(HostId)
    }

    /// Worst-case memory footprint terms from the paper's §VI-D1:
    /// `O((|S|+|H|)²)` for `N_D` and `O(|C|·|S|)` for `N_C`.
    pub fn memory_complexity_bounds(&self) -> (usize, usize) {
        let v = self.switches.len() + self.hosts.len();
        (v * v, self.controllers.len() * self.switches.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Figure 3 example `N_D`.
    fn figure3() -> SystemModel {
        let mut m = SystemModel::new();
        m.add_controller("c1").unwrap();
        let s1 = m.add_switch("s1").unwrap();
        let s2 = m.add_switch("s2").unwrap();
        let h1 = m.add_host("h1", None, None).unwrap();
        let h2 = m.add_host("h2", None, None).unwrap();
        let h3 = m.add_host("h3", None, None).unwrap();
        m.add_host_link(h1, s1, 1).unwrap();
        m.add_host_link(h2, s1, 2).unwrap();
        m.add_switch_link(s1, 3, s2, 1).unwrap();
        m.add_host_link(h3, s2, 2).unwrap();
        m
    }

    #[test]
    fn figure3_data_plane_shape() {
        let m = figure3();
        assert_eq!(m.data_plane().len(), 4);
        // Host ends carry NULL ports, switch ends concrete ones.
        let edge = m.data_plane()[0];
        assert_eq!(edge.a_port, None);
        assert_eq!(edge.b_port, Some(1));
        // s1 has ports {1,2,3}.
        let (_, s1) = m.switches().next().unwrap();
        assert_eq!(s1.ports, vec![1, 2, 3]);
    }

    /// Builds the paper's Figure 4 example `N_C`.
    #[test]
    fn figure4_control_plane_shape() {
        let mut m = SystemModel::new();
        let c1 = m.add_controller("c1").unwrap();
        let c2 = m.add_controller("c2").unwrap();
        let switches: Vec<_> = (1..=4)
            .map(|i| m.add_switch(&format!("s{i}")).unwrap())
            .collect();
        for &s in &switches {
            m.add_connection(c1, s).unwrap();
        }
        m.add_connection(c2, switches[2]).unwrap();
        m.add_connection(c2, switches[3]).unwrap();
        assert_eq!(m.connection_count(), 6);
        assert_eq!(m.connection_by_names("c2", "s3"), Some(ConnectionId(4)));
        assert_eq!(m.connection_by_names("c2", "s1"), None);
        // N_C is a relation: duplicates rejected.
        assert!(m.add_connection(c1, switches[0]).is_err());
    }

    #[test]
    fn validation_enforces_functional_network_assumptions() {
        let mut m = SystemModel::new();
        assert!(m.validate().is_err());
        m.add_controller("c1").unwrap();
        assert!(m.validate().is_err());
        m.add_switch("s1").unwrap();
        assert!(m.validate().is_err());
        m.add_host("h1", None, None).unwrap();
        assert!(m.validate().is_err()); // |H| >= 2
        m.add_host("h2", None, None).unwrap();
        assert!(m.validate().is_ok());
    }

    #[test]
    fn names_are_unique_across_component_kinds() {
        let mut m = SystemModel::new();
        m.add_controller("x").unwrap();
        assert!(m.add_switch("x").is_err());
        assert!(m.add_host("x", None, None).is_err());
    }

    #[test]
    fn resolve_and_name_of_are_inverse() {
        let m = figure3();
        for name in ["c1", "s1", "s2", "h1", "h2", "h3"] {
            let node = m.resolve(name).unwrap();
            assert_eq!(m.name_of(node), name);
        }
        assert_eq!(m.resolve("nope"), None);
    }

    #[test]
    fn host_by_ip() {
        let mut m = SystemModel::new();
        m.add_host("h1", Some("10.0.0.1".parse().unwrap()), None)
            .unwrap();
        m.add_host("h2", None, None).unwrap();
        assert_eq!(m.host_by_ip("10.0.0.1".parse().unwrap()), Some(HostId(0)));
        assert_eq!(m.host_by_ip("10.0.0.9".parse().unwrap()), None);
    }

    #[test]
    fn memory_bounds_match_paper_formulae() {
        let m = figure3();
        let (nd, nc) = m.memory_complexity_bounds();
        assert_eq!(nd, (2 + 3) * (2 + 3));
        assert_eq!(nc, 2);
    }
}
