//! The ATTAIN attack model (paper §IV): system model, threat model, and
//! attacker capabilities model.
//!
//! * [`SystemModel`] — the components `(C, S, H)`, the data-plane graph
//!   `N_D`, and the control-plane relation `N_C ⊆ C × S`;
//! * [`Capability`] / [`CapabilitySet`] — Table I's attacker
//!   capabilities and the TLS / no-TLS classes;
//! * [`AttackModel`] — the mapping `Γ_{N_C} : N_C → P(Γ)` from each
//!   connection to the attacker's presumed capabilities there.
//!
//! The threat model itself (§IV-B) is implicit: the attacker manipulates
//! control-plane messages only, and *how* components were compromised is
//! out of scope — exactly what these types encode by construction (an
//! attack can act only on `N_C` messages, only with granted
//! capabilities).

mod attack_model;
mod capability;
mod system;

pub use attack_model::AttackModel;
pub use capability::{Capability, CapabilitySet};
pub use system::{
    ConnectionId, ControllerId, ControllerSpec, DataEdge, HostId, HostSpec, NodeRef, SwitchId,
    SwitchSpec, SystemModel, SystemModelError,
};
