//! Attacker capabilities (paper Table I) and the TLS / no-TLS capability
//! classes (§IV-C).

use std::fmt;

/// One attacker capability against a control-plane connection message
/// (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum Capability {
    /// Drop the message to prevent it from being sent or received.
    DropMessage = 0,
    /// Pass the message by allowing it to be sent or received.
    PassMessage = 1,
    /// Delay sending or receiving of the message by a certain amount of
    /// time.
    DelayMessage = 2,
    /// Duplicate the message by sending a replica.
    DuplicateMessage = 3,
    /// Read and/or record message metadata (L2–L4 headers, timestamps) —
    /// excludes the payload.
    ReadMessageMetadata = 4,
    /// Modify the message's metadata, excluding the payload.
    ModifyMessageMetadata = 5,
    /// Modify metadata or payload bits in a random, possibly semantically
    /// invalid way.
    FuzzMessage = 6,
    /// Read and/or record the payload in a semantically meaningful way
    /// conforming to the OpenFlow protocol.
    ReadMessage = 7,
    /// Modify the payload in a semantically valid way.
    ModifyMessage = 8,
    /// Inject a new, semantically valid message into the connection.
    InjectNewMessage = 9,
}

impl Capability {
    /// All capabilities, i.e. the paper's `Γ`, in Table I order.
    pub const ALL: [Capability; 10] = [
        Capability::DropMessage,
        Capability::PassMessage,
        Capability::DelayMessage,
        Capability::DuplicateMessage,
        Capability::ReadMessageMetadata,
        Capability::ModifyMessageMetadata,
        Capability::FuzzMessage,
        Capability::ReadMessage,
        Capability::ModifyMessage,
        Capability::InjectNewMessage,
    ];

    /// The paper's name, e.g. `DROPMESSAGE`.
    pub fn spec_name(&self) -> &'static str {
        match self {
            Capability::DropMessage => "DROPMESSAGE",
            Capability::PassMessage => "PASSMESSAGE",
            Capability::DelayMessage => "DELAYMESSAGE",
            Capability::DuplicateMessage => "DUPLICATEMESSAGE",
            Capability::ReadMessageMetadata => "READMESSAGEMETADATA",
            Capability::ModifyMessageMetadata => "MODIFYMESSAGEMETADATA",
            Capability::FuzzMessage => "FUZZMESSAGE",
            Capability::ReadMessage => "READMESSAGE",
            Capability::ModifyMessage => "MODIFYMESSAGE",
            Capability::InjectNewMessage => "INJECTNEWMESSAGE",
        }
    }

    /// The DSL's snake_case name, e.g. `drop_message`.
    pub fn dsl_name(&self) -> &'static str {
        match self {
            Capability::DropMessage => "drop_message",
            Capability::PassMessage => "pass_message",
            Capability::DelayMessage => "delay_message",
            Capability::DuplicateMessage => "duplicate_message",
            Capability::ReadMessageMetadata => "read_message_metadata",
            Capability::ModifyMessageMetadata => "modify_message_metadata",
            Capability::FuzzMessage => "fuzz_message",
            Capability::ReadMessage => "read_message",
            Capability::ModifyMessage => "modify_message",
            Capability::InjectNewMessage => "inject_new_message",
        }
    }

    /// Parses either the paper name or the DSL name.
    pub fn parse(name: &str) -> Option<Capability> {
        Capability::ALL
            .into_iter()
            .find(|c| c.spec_name() == name || c.dsl_name() == name)
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec_name())
    }
}

/// A set of capabilities — one `γ ∈ P(Γ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CapabilitySet(u16);

impl CapabilitySet {
    /// The empty set.
    pub const EMPTY: CapabilitySet = CapabilitySet(0);

    /// Creates an empty set.
    pub fn new() -> CapabilitySet {
        CapabilitySet::EMPTY
    }

    /// The full set `Γ` — the paper's `Γ_NoTLS` (§IV-C1): on plain-TCP
    /// connections the attacker can use every capability.
    pub fn no_tls() -> CapabilitySet {
        let mut s = CapabilitySet::new();
        for c in Capability::ALL {
            s.insert(c);
        }
        s
    }

    /// The paper's `Γ_TLS` (§IV-C2): with TLS (and an uncompromised PKI)
    /// the attacker keeps only actions that treat messages as opaque —
    /// `Γ \ {READMESSAGE, MODIFYMESSAGE, FUZZMESSAGE, INJECTNEWMESSAGE,
    /// MODIFYMESSAGEMETADATA}`.
    pub fn tls() -> CapabilitySet {
        let mut s = CapabilitySet::no_tls();
        s.remove(Capability::ReadMessage);
        s.remove(Capability::ModifyMessage);
        s.remove(Capability::FuzzMessage);
        s.remove(Capability::InjectNewMessage);
        s.remove(Capability::ModifyMessageMetadata);
        s
    }

    /// Adds a capability.
    pub fn insert(&mut self, c: Capability) {
        self.0 |= 1 << (c as u16);
    }

    /// Removes a capability.
    pub fn remove(&mut self, c: Capability) {
        self.0 &= !(1 << (c as u16));
    }

    /// Whether `c` is in the set.
    pub fn contains(&self, c: Capability) -> bool {
        self.0 & (1 << (c as u16)) != 0
    }

    /// Whether every capability in `other` is in `self`.
    pub fn is_superset_of(&self, other: &CapabilitySet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Set union.
    pub fn union(&self, other: &CapabilitySet) -> CapabilitySet {
        CapabilitySet(self.0 | other.0)
    }

    /// Capabilities in `other` but not in `self` (for error messages).
    pub fn missing_from(&self, other: &CapabilitySet) -> Vec<Capability> {
        Capability::ALL
            .into_iter()
            .filter(|c| other.contains(*c) && !self.contains(*c))
            .collect()
    }

    /// Number of capabilities in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates the members in Table I order.
    pub fn iter(&self) -> impl Iterator<Item = Capability> + '_ {
        Capability::ALL.into_iter().filter(|c| self.contains(*c))
    }
}

impl FromIterator<Capability> for CapabilitySet {
    fn from_iter<T: IntoIterator<Item = Capability>>(iter: T) -> Self {
        let mut s = CapabilitySet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl Extend<Capability> for CapabilitySet {
    fn extend<T: IntoIterator<Item = Capability>>(&mut self, iter: T) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl fmt::Display for CapabilitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_tls_is_all_ten() {
        let g = CapabilitySet::no_tls();
        assert_eq!(g.len(), 10);
        for c in Capability::ALL {
            assert!(g.contains(c));
        }
    }

    #[test]
    fn tls_removes_exactly_the_paper_five() {
        let g = CapabilitySet::tls();
        assert_eq!(g.len(), 5);
        assert!(g.contains(Capability::DropMessage));
        assert!(g.contains(Capability::PassMessage));
        assert!(g.contains(Capability::DelayMessage));
        assert!(g.contains(Capability::DuplicateMessage));
        assert!(g.contains(Capability::ReadMessageMetadata));
        assert!(!g.contains(Capability::ReadMessage));
        assert!(!g.contains(Capability::ModifyMessage));
        assert!(!g.contains(Capability::FuzzMessage));
        assert!(!g.contains(Capability::InjectNewMessage));
        assert!(!g.contains(Capability::ModifyMessageMetadata));
    }

    #[test]
    fn subset_and_missing() {
        let tls = CapabilitySet::tls();
        let all = CapabilitySet::no_tls();
        assert!(all.is_superset_of(&tls));
        assert!(!tls.is_superset_of(&all));
        let missing = tls.missing_from(&all);
        assert_eq!(missing.len(), 5);
        assert!(missing.contains(&Capability::ReadMessage));
    }

    #[test]
    fn parse_both_name_styles() {
        assert_eq!(
            Capability::parse("DROPMESSAGE"),
            Some(Capability::DropMessage)
        );
        assert_eq!(
            Capability::parse("drop_message"),
            Some(Capability::DropMessage)
        );
        assert_eq!(Capability::parse("launch_missiles"), None);
    }

    #[test]
    fn collect_and_display() {
        let s: CapabilitySet = [Capability::DropMessage, Capability::PassMessage]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_string(), "{DROPMESSAGE, PASSMESSAGE}");
        assert!(!s.is_empty());
        assert!(CapabilitySet::EMPTY.is_empty());
    }

    #[test]
    fn union_combines() {
        let a: CapabilitySet = [Capability::DropMessage].into_iter().collect();
        let b: CapabilitySet = [Capability::PassMessage].into_iter().collect();
        let u = a.union(&b);
        assert!(u.contains(Capability::DropMessage));
        assert!(u.contains(Capability::PassMessage));
        assert_eq!(u.len(), 2);
    }
}
