//! ATTAIN's core: the attack model, attack language, DSL compiler, and
//! attack executor — the paper's primary contribution.
//!
//! The framework's three components (paper §III) map onto this crate's
//! modules:
//!
//! 1. **Attack model** ([`model`]) — the system model `(C, S, H, N_D,
//!    N_C)`, the Table I attacker capabilities `Γ`, the TLS / no-TLS
//!    capability classes, and the per-connection assignment
//!    `Γ_{N_C} : N_C → P(Γ)`.
//! 2. **Attack language** ([`lang`], [`dsl`]) — conditionals over
//!    message properties, deque storage, capability-derived actions,
//!    rules `φ = (n, γ, λ, α)`, attack states, and the attack state
//!    graph; plus a textual description language with a compiler that
//!    validates every rule against the attack model.
//! 3. **Attack executor** ([`exec`]) — Algorithm 1: a deterministic
//!    runtime that interposes on control-plane messages and actuates the
//!    attack, producing an injection log.
//!
//! The [`scenario`] module packages the paper's topologies (Figures 3,
//! 4, 8, 9) and attack descriptions (Figures 5, 6, 10, 12 and the §VIII
//! examples) for reuse by examples, tests, and the experiment suite.
//!
//! # Example: compile and run an attack against a message stream
//!
//! ```
//! use attain_core::{dsl, exec::{AttackExecutor, InjectorInput}, scenario};
//! use attain_core::model::ConnectionId;
//! use attain_openflow::{FlowMod, Frame, Match, OfMessage};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sc = scenario::enterprise_network();
//! let attack = dsl::compile(scenario::attacks::FLOW_MOD_SUPPRESSION,
//!                           &sc.system, &sc.attack_model)?;
//! let mut exec = AttackExecutor::new(sc.system, sc.attack_model, attack.attack)?;
//!
//! // A FLOW_MOD from the controller is suppressed…
//! let flow_mod = Frame::from_message(
//!     OfMessage::FlowMod(FlowMod::add(Match::all(), vec![])), 1);
//! let out = exec.on_message(InjectorInput {
//!     conn: ConnectionId(0),
//!     to_controller: false,
//!     frame: flow_mod,
//!     now_ns: 0,
//! });
//! assert!(out.deliveries.is_empty());
//!
//! // …while anything else passes.
//! let hello = Frame::from_message(OfMessage::Hello, 2);
//! let out = exec.on_message(InjectorInput {
//!     conn: ConnectionId(0),
//!     to_controller: true,
//!     frame: hello,
//!     now_ns: 1,
//! });
//! assert_eq!(out.deliveries.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsl;
pub mod exec;
pub mod lang;
pub mod model;
pub mod scenario;
