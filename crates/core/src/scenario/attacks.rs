//! The paper's attack descriptions as DSL sources, ready to compile
//! against the [`enterprise_network`](super::enterprise_network)
//! scenario.

/// Figure 5: the trivial "attack" that models normal control-plane
/// operation — one end state, no rules, everything passes.
pub const TRIVIAL_PASS: &str = r#"
# Figure 5: single-state trivial "attack" (normal operation).
attack trivial_pass {
    start state sigma1 { }
}
"#;

/// Figure 10: the flow-modification suppression attack of §VII-B. One
/// absorbing state whose rule drops every `FLOW_MOD` the controller
/// sends to any of the four switches.
pub const FLOW_MOD_SUPPRESSION: &str = r#"
# Figure 10: flow modification suppression.
attack flow_mod_suppression {
    start state sigma1 {
        rule phi1 on (c1, s1), (c1, s2), (c1, s3), (c1, s4) requires no_tls {
            when msg.type == FLOW_MOD && msg.source == c1
            do { drop(msg); }
        }
    }
}
"#;

/// Figure 12: the connection interruption attack of §VII-C.
///
/// * `sigma1` waits for `s2`'s connection setup (its `HELLO`);
/// * `sigma2` waits for a flow-modification request about traffic from
///   the gateway `h2` (10.0.0.2) to an internal host — the DMZ deny
///   rule. Ryu's L2-only matches never satisfy `φ2`'s `nw_src` read, so
///   against Ryu the attack never leaves this state (§VII-C4);
/// * `sigma3` drops everything on `(c1, s2)`, severing the connection.
pub const CONNECTION_INTERRUPTION: &str = r#"
# Figure 12: connection interruption against the DMZ firewall switch s2.
attack connection_interruption {
    start state sigma1 {
        rule phi1 on (c1, s2) requires no_tls {
            when msg.type == HELLO && msg.source == s2
            do { pass(msg); goto sigma2; }
        }
    }
    state sigma2 {
        rule phi2 on (c1, s2) requires no_tls {
            when msg.type == FLOW_MOD
                 && msg["match.nw_src"] == 10.0.0.2
                 && msg["match.nw_dst"] in [10.0.0.3, 10.0.0.4, 10.0.0.5, 10.0.0.6]
            do { drop(msg); goto sigma3; }
        }
    }
    state sigma3 {
        rule phi3 on (c1, s2) requires no_tls {
            when true
            do { drop(msg); }
        }
    }
}
"#;

/// Figure 6's shape: attack states as prior-message history — act only
/// after a `PACKET_IN` and then a `FLOW_MOD` have been seen.
pub const MESSAGE_HISTORY: &str = r#"
# Figure 6: states modelling prior message history.
attack message_history {
    start state sigma1 {
        rule saw_packet_in on all requires no_tls {
            when msg.type == PACKET_IN
            do { pass(msg); goto sigma2; }
        }
    }
    state sigma2 {
        rule saw_flow_mod on all requires no_tls {
            when msg.type == FLOW_MOD
            do { pass(msg); goto sigma3; }
        }
    }
    state sigma3 {
        rule act on all requires no_tls {
            when msg.type == FLOW_MOD
            do { drop(msg); }
        }
    }
}
"#;

/// §VIII-B's modeling-efficiency example: an O(1)-space counter deque
/// replaces `n` memoryless states — here, let ten `FLOW_MOD`s through,
/// then suppress the rest.
pub const COUNTED_SUPPRESSION: &str = r#"
# Section VIII-B: deque counter condenses n states into one.
attack counted_suppression {
    start state watch {
        rule init on all requires no_tls {
            when len(counter) == 0 && msg.type == FLOW_MOD
            do { prepend(counter, 0); }
        }
        rule count on all requires no_tls {
            when msg.type == FLOW_MOD && front(counter) < 10
            do { prepend(counter, front(counter) + 1); pop(counter); pass(msg); }
        }
        rule trigger on all requires no_tls {
            when front(counter) == 10
            do { goto suppress; }
        }
    }
    state suppress {
        rule drop_mods on all requires no_tls {
            when msg.type == FLOW_MOD
            do { drop(msg); }
        }
    }
}
"#;

/// §VIII-A's message-reordering example: hold two `PACKET_IN`s on a
/// deque used as a stack, then release them behind a third in reverse
/// arrival order.
pub const REORDER_PACKET_INS: &str = r#"
# Section VIII-A: reordering via a deque used as a stack.
attack reorder_packet_ins {
    start state collect {
        # Algorithm 1 evaluates every rule of the pre-message state, so
        # `release` guards on a monotonic `seen` counter (not on the
        # stack length `stash` just changed) to avoid firing on the same
        # message that filled the stack.
        rule release on all requires no_tls {
            when msg.type == PACKET_IN && len(seen) == 2
            do { pass(msg); emit_front(stack); emit_front(stack); append(seen, 1); }
        }
        rule stash on all requires no_tls {
            when msg.type == PACKET_IN && len(seen) < 2
            do { append(seen, 1); prepend(stack, msg); drop(msg); }
        }
    }
}
"#;

/// §VIII-A's replay example: duplicate `FLOW_MOD`s into a queue, then
/// replay them in FIFO order once five are stored.
pub const REPLAY_FLOW_MODS: &str = r#"
# Section VIII-A: replay via a deque used as a queue.
attack replay_flow_mods {
    start state record {
        # `flood` is guarded on the monotonic `copies` counter so it does
        # not fire in the same pass that stores the fifth copy.
        rule flood on all requires no_tls {
            when len(copies) == 5 && len(replay_q) == 5
            do {
                emit_front(replay_q);
                emit_front(replay_q);
                emit_front(replay_q);
                emit_front(replay_q);
                emit_front(replay_q);
                goto done;
            }
        }
        rule copy on all requires no_tls {
            when msg.type == FLOW_MOD && len(copies) < 5
            do { append(copies, 1); duplicate(msg); append(replay_q, msg); pass(msg); }
        }
    }
    state done { }
}
"#;

/// A fuzzing attack in the spirit of DELTA (§IX-A): randomly corrupt
/// every tenth controller-to-switch message.
pub const FUZZ_CONTROL_PLANE: &str = r#"
# Related-work flavour: DELTA-style control plane fuzzing.
attack fuzz_control_plane {
    start state fuzzing {
        rule init on all requires no_tls {
            when len(counter) == 0
            do { prepend(counter, 0); }
        }
        rule tick on all requires no_tls {
            when msg.source == c1 && front(counter) < 9
            do { prepend(counter, front(counter) + 1); pop(counter); }
        }
        rule corrupt on all requires no_tls {
            when msg.source == c1 && front(counter) == 9
            do { fuzz(msg, 16); prepend(counter, 0); pop(counter); }
        }
    }
}
"#;

/// The overflow-family attack: once the controller has installed two
/// flows on the branch switch `s4`, corrupt the `in_port` of every
/// further `PACKET_IN` from `s4`. The controller learns each source at
/// a phantom port and installs entries real traffic can never match,
/// overflowing the bounded table until the victim flows are evicted
/// (the campaign bounds `s4` at eight entries with LRU eviction for
/// this attack).
pub const TABLE_OVERFLOW: &str = r#"
# Overflow family: phantom-port PACKET_IN corruption against s4.
attack table_overflow {
    start state watch {
        rule init on (c1, s4) requires no_tls {
            when len(installs) == 0 && msg.type == FLOW_MOD
            do { prepend(installs, 0); }
        }
        rule count on (c1, s4) requires no_tls {
            when msg.type == FLOW_MOD && front(installs) < 2
            do { prepend(installs, front(installs) + 1); pop(installs); pass(msg); }
        }
        rule armed on (c1, s4) requires no_tls {
            when front(installs) == 2
            do { goto flood; }
        }
    }
    state flood {
        rule seed on (c1, s4) requires no_tls {
            when len(phantom) == 0
            do { prepend(phantom, 61000); }
        }
        rule corrupt on (c1, s4) requires no_tls {
            when msg.type == PACKET_IN && msg.source == s4
            do {
                modify(msg, "in_port", front(phantom));
                prepend(phantom, front(phantom) + 1);
                pop(phantom);
                pass(msg);
            }
        }
    }
}
"#;

/// The timing-observable fingerprinting attack ("Fingerprinting
/// OpenFlow controllers" flavour): watch the `(c1, s1)` control channel
/// until the `PACKET_IN → FLOW_MOD` service-time signature identifies
/// the controller application, then jump to that application's
/// worst-payload state.
///
/// The decision thresholds come from the enterprise simulator's
/// virtual-time latencies observed at the proxy (per-application
/// processing delay plus the 1 ms round trip on the controller link;
/// exact and seed-invariant because the serial controller model adds no
/// noise on the lightly loaded `s1` channel):
///
/// * Beacon      250 µs → 1.25 ms
/// * Floodlight  300 µs → 1.30 ms
/// * Ryu         800 µs → 1.80 ms
/// * POX        1200 µs → 2.20 ms
/// * Hub — behavioural, not temporal: it never installs a flow on `s1`
///   (`timing_count(PACKET_IN, FLOW_MOD)` stays 0) while its per-packet
///   flooding piles up `PACKET_OUT`s no learning switch emits that many
///   of before its first install.
///
/// Every `classify_*` guard leads with an infallible `timing_count`
/// read so the short-circuiting `&&` never evaluates a statistic over
/// an empty sample ring.
pub const FINGERPRINT_THEN_ATTACK: &str = r#"
# Timing-observable controller fingerprinting, then a per-application
# worst payload. Thresholds are virtual-time nanoseconds observed on
# (c1, s1); see scenario::attacks::FINGERPRINT_THEN_ATTACK docs.
attack fingerprint_then_attack {
    start state watch {
        rule classify_hub on (c1, s1) requires no_tls {
            when timing_count(PACKET_IN, FLOW_MOD) == 0
                 && timing_count(PACKET_IN, PACKET_OUT) >= 12
            do { goto attack_hub; }
        }
        rule classify_beacon on (c1, s1) requires no_tls {
            when timing_count(PACKET_IN, FLOW_MOD) >= 3
                 && timing_mean(PACKET_IN, FLOW_MOD, 8) < 1275000
            do { goto attack_beacon; }
        }
        rule classify_floodlight on (c1, s1) requires no_tls {
            when timing_count(PACKET_IN, FLOW_MOD) >= 3
                 && timing_mean(PACKET_IN, FLOW_MOD, 8) >= 1275000
                 && timing_mean(PACKET_IN, FLOW_MOD, 8) < 1500000
            do { goto attack_floodlight; }
        }
        rule classify_ryu on (c1, s1) requires no_tls {
            when timing_count(PACKET_IN, FLOW_MOD) >= 3
                 && timing_mean(PACKET_IN, FLOW_MOD, 8) >= 1500000
                 && timing_mean(PACKET_IN, FLOW_MOD, 8) < 2000000
            do { goto attack_ryu; }
        }
        rule classify_pox on (c1, s1) requires no_tls {
            when timing_count(PACKET_IN, FLOW_MOD) >= 3
                 && timing_mean(PACKET_IN, FLOW_MOD, 8) >= 2000000
            do { goto attack_pox; }
        }
    }
    # Floodlight's 5 s idle timeouts force re-installs; starving them
    # pins forwarding to the slow PACKET_OUT path.
    state attack_floodlight {
        rule starve_installs on all requires no_tls {
            when msg.type == FLOW_MOD
            do { drop(msg); }
        }
    }
    # POX releases buffered packets only via the FLOW_MOD (Figure 11's
    # asterisk): suppression deadlocks the data plane.
    state attack_pox {
        rule deadlock_buffers on all requires no_tls {
            when msg.type == FLOW_MOD
            do { drop(msg); }
        }
    }
    # Beacon shares POX's buffer-release-via-FLOW_MOD trait.
    state attack_beacon {
        rule deadlock_buffers on all requires no_tls {
            when msg.type == FLOW_MOD
            do { drop(msg); }
        }
    }
    # Ryu's permanent flows make suppression toothless; sever its s1
    # control channel instead (fail-secure s1 locks down).
    state attack_ryu {
        rule sever_s1 on (c1, s1) requires no_tls {
            when true
            do { drop(msg); }
        }
    }
    # The hub forwards solely via PACKET_OUT: black-holing them stops
    # every flow that misses into the controller.
    state attack_hub {
        rule blackhole_floods on all requires no_tls {
            when msg.type == PACKET_OUT
            do { drop(msg); }
        }
    }
}
"#;

/// All bundled attacks with their names, for iteration in tests and
/// examples.
pub const ALL: [(&str, &str); 10] = [
    ("trivial_pass", TRIVIAL_PASS),
    ("flow_mod_suppression", FLOW_MOD_SUPPRESSION),
    ("connection_interruption", CONNECTION_INTERRUPTION),
    ("message_history", MESSAGE_HISTORY),
    ("counted_suppression", COUNTED_SUPPRESSION),
    ("reorder_packet_ins", REORDER_PACKET_INS),
    ("replay_flow_mods", REPLAY_FLOW_MODS),
    ("fuzz_control_plane", FUZZ_CONTROL_PLANE),
    ("table_overflow", TABLE_OVERFLOW),
    ("fingerprint_then_attack", FINGERPRINT_THEN_ATTACK),
];
