//! Ready-made scenarios from the paper: the example topologies of
//! Figures 3 and 4, the enterprise case study of Figures 8 and 9, and
//! the attack descriptions of Figures 5, 6, 10, and 12 (plus the §VIII
//! expressiveness examples) as DSL sources.

pub mod attacks;

use crate::model::{AttackModel, CapabilitySet, SystemModel};
use attain_openflow::MacAddr;
use std::net::Ipv4Addr;

/// A packaged scenario: a system model plus an attacker capabilities
/// model.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The system model `(C, S, H, N_D, N_C)`.
    pub system: SystemModel,
    /// The attacker capabilities `Γ_{N_C}`.
    pub attack_model: AttackModel,
}

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

/// The paper's Figure 3 example data plane: three hosts, two switches
/// (`h1`,`h2` on `s1`; `s1`–`s2`; `h3` on `s2`), plus one controller so
/// the model validates.
pub fn figure3_network() -> Scenario {
    let mut m = SystemModel::new();
    let c1 = m.add_controller("c1").expect("fresh model");
    let s1 = m.add_switch("s1").expect("fresh model");
    let s2 = m.add_switch("s2").expect("fresh model");
    let h1 = m
        .add_host("h1", Some(ip(1)), Some(MacAddr::from_low(1)))
        .expect("fresh model");
    let h2 = m
        .add_host("h2", Some(ip(2)), Some(MacAddr::from_low(2)))
        .expect("fresh model");
    let h3 = m
        .add_host("h3", Some(ip(3)), Some(MacAddr::from_low(3)))
        .expect("fresh model");
    m.add_host_link(h1, s1, 1).expect("valid link");
    m.add_host_link(h2, s1, 2).expect("valid link");
    m.add_switch_link(s1, 3, s2, 1).expect("valid link");
    m.add_host_link(h3, s2, 2).expect("valid link");
    m.add_connection(c1, s1).expect("fresh connection");
    m.add_connection(c1, s2).expect("fresh connection");
    m.validate().expect("figure 3 is functional");
    let attack_model = AttackModel::uniform(&m, CapabilitySet::no_tls());
    Scenario {
        system: m,
        attack_model,
    }
}

/// The paper's Figure 4 example control plane: two controllers, four
/// switches, `N_C = {(c1,s1..s4), (c2,s3), (c2,s4)}` (hosts added so the
/// model validates).
pub fn figure4_network() -> Scenario {
    let mut m = SystemModel::new();
    let c1 = m.add_controller("c1").expect("fresh model");
    let c2 = m.add_controller("c2").expect("fresh model");
    let switches: Vec<_> = (1..=4)
        .map(|i| m.add_switch(&format!("s{i}")).expect("fresh model"))
        .collect();
    let h1 = m.add_host("h1", Some(ip(1)), None).expect("fresh model");
    let h2 = m.add_host("h2", Some(ip(2)), None).expect("fresh model");
    m.add_host_link(h1, switches[0], 1).expect("valid link");
    m.add_host_link(h2, switches[3], 1).expect("valid link");
    for &s in &switches {
        m.add_connection(c1, s).expect("fresh connection");
    }
    m.add_connection(c2, switches[2]).expect("fresh connection");
    m.add_connection(c2, switches[3]).expect("fresh connection");
    m.validate().expect("figure 4 is functional");
    let attack_model = AttackModel::uniform(&m, CapabilitySet::no_tls());
    Scenario {
        system: m,
        attack_model,
    }
}

/// The enterprise case-study network of Figures 8 and 9 (§VII-A):
///
/// * `h1` public web server, `h2` Internet gateway — the *external*
///   segment on `s1`;
/// * `s2` the DMZ firewall switch (`s1`↔`s2` on `s2`'s port 1);
/// * `h3`,`h4` internal servers on `s3`; `h5`,`h6` workstations on `s4`;
/// * one controller `c1` with a connection to every switch
///   (`N_C = {(c1,s1),(c1,s2),(c1,s3),(c1,s4)}`).
///
/// Hosts are `10.0.0.1`–`10.0.0.6` with MACs `…:01`–`…:06`, matching the
/// simulator's assignment so attack descriptions can name either.
/// All control connections are plain TCP (`Γ_NoTLS`), as in the
/// experiments.
pub fn enterprise_network() -> Scenario {
    let mut m = SystemModel::new();
    let c1 = m.add_controller("c1").expect("fresh model");
    // Hosts first: the simulator derives MACs from node order.
    let hosts: Vec<_> = (1..=6)
        .map(|i| {
            m.add_host(
                &format!("h{i}"),
                Some(ip(i)),
                Some(MacAddr::from_low(i as u64)),
            )
            .expect("fresh model")
        })
        .collect();
    let s1 = m.add_switch("s1").expect("fresh model");
    let s2 = m.add_switch("s2").expect("fresh model");
    let s3 = m.add_switch("s3").expect("fresh model");
    let s4 = m.add_switch("s4").expect("fresh model");
    // s1: p1 h1, p2 h2, p3 s2.
    m.add_host_link(hosts[0], s1, 1).expect("valid link");
    m.add_host_link(hosts[1], s1, 2).expect("valid link");
    m.add_switch_link(s1, 3, s2, 1).expect("valid link");
    // s2: p1 s1 (external side), p2 s3.
    m.add_switch_link(s2, 2, s3, 1).expect("valid link");
    // s3: p1 s2, p2 h3, p3 h4, p4 s4.
    m.add_host_link(hosts[2], s3, 2).expect("valid link");
    m.add_host_link(hosts[3], s3, 3).expect("valid link");
    m.add_switch_link(s3, 4, s4, 1).expect("valid link");
    // s4: p1 s3, p2 h5, p3 h6.
    m.add_host_link(hosts[4], s4, 2).expect("valid link");
    m.add_host_link(hosts[5], s4, 3).expect("valid link");
    for s in [s1, s2, s3, s4] {
        m.add_connection(c1, s).expect("fresh connection");
    }
    m.validate().expect("figure 8/9 is functional");
    let attack_model = AttackModel::uniform(&m, CapabilitySet::no_tls());
    Scenario {
        system: m,
        attack_model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl;

    #[test]
    fn figure3_matches_paper_shape() {
        let s = figure3_network();
        assert_eq!(s.system.switches().count(), 2);
        assert_eq!(s.system.hosts().count(), 3);
        assert_eq!(s.system.data_plane().len(), 4);
    }

    #[test]
    fn figure4_has_six_connections() {
        let s = figure4_network();
        assert_eq!(s.system.connection_count(), 6);
        assert!(s.system.connection_by_names("c2", "s4").is_some());
        assert!(s.system.connection_by_names("c2", "s1").is_none());
    }

    #[test]
    fn enterprise_matches_figures_8_and_9() {
        let s = enterprise_network();
        assert_eq!(s.system.controllers().count(), 1);
        assert_eq!(s.system.switches().count(), 4);
        assert_eq!(s.system.hosts().count(), 6);
        assert_eq!(s.system.connection_count(), 4);
        // N_C in figure order.
        for (i, sw) in ["s1", "s2", "s3", "s4"].iter().enumerate() {
            assert_eq!(s.system.connection_by_names("c1", sw).map(|c| c.0), Some(i));
        }
        // The DMZ firewall switch's external port is 1.
        let (_, s2) = s.system.switches().nth(1).unwrap();
        assert_eq!(s2.ports[0], 1);
    }

    #[test]
    fn all_bundled_attacks_compile_against_the_enterprise_scenario() {
        let s = enterprise_network();
        for (name, source) in attacks::ALL {
            let compiled = dsl::compile(source, &s.system, &s.attack_model);
            assert!(
                compiled.is_ok(),
                "attack {name} failed to compile: {}",
                compiled.unwrap_err()
            );
        }
    }

    #[test]
    fn figure10_attack_has_one_absorbing_start_state() {
        let s = enterprise_network();
        let atk = dsl::compile(attacks::FLOW_MOD_SUPPRESSION, &s.system, &s.attack_model).unwrap();
        assert_eq!(atk.states().len(), 1);
        assert_eq!(atk.graph.absorbing, vec![0]);
        assert!(atk.graph.end.is_empty()); // it has a rule: absorbing, not end
                                           // The single rule watches all four connections.
        assert_eq!(atk.attack.states[0].rules[0].connections.len(), 4);
    }

    #[test]
    fn figure12_attack_is_a_three_state_chain() {
        let s = enterprise_network();
        let atk =
            dsl::compile(attacks::CONNECTION_INTERRUPTION, &s.system, &s.attack_model).unwrap();
        assert_eq!(atk.states().len(), 3);
        assert_eq!(atk.graph.edges.len(), 2);
        assert_eq!(atk.graph.absorbing, vec![2]);
        assert!(atk.graph.unreachable_states().is_empty());
    }

    #[test]
    fn figure5_trivial_attack_is_an_end_state() {
        let s = enterprise_network();
        let atk = dsl::compile(attacks::TRIVIAL_PASS, &s.system, &s.attack_model).unwrap();
        assert_eq!(atk.graph.end, vec![0]);
    }
}
