//! Tokenizer for the ATTAIN attack description language.

use std::fmt;
use std::net::Ipv4Addr;

/// A token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// IPv4 literal, e.g. `10.0.0.6`.
    Ip(Ipv4Addr),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::Float(x) => write!(f, "`{x}`"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ip(ip) => write!(f, "`{ip}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A lexing/parsing/compilation error with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct DslError {
    /// 1-based source line (0 when unknown).
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

impl DslError {
    /// Creates an error at `line`.
    pub fn new(line: u32, message: impl Into<String>) -> DslError {
        DslError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for DslError {}

/// Tokenizes `source`.
///
/// `#` starts a line comment. IPv4 literals (`a.b.c.d`) and floats
/// (`a.b`) are distinguished by their dot count.
///
/// # Errors
///
/// Returns [`DslError`] on unterminated strings, malformed numbers, or
/// unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Token>, DslError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let bytes = source.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                out.push(Token {
                    tok: Tok::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                out.push(Token {
                    tok: Tok::RBrace,
                    line,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    tok: Tok::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    tok: Tok::RParen,
                    line,
                });
                i += 1;
            }
            '[' => {
                out.push(Token {
                    tok: Tok::LBracket,
                    line,
                });
                i += 1;
            }
            ']' => {
                out.push(Token {
                    tok: Tok::RBracket,
                    line,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    tok: Tok::Comma,
                    line,
                });
                i += 1;
            }
            ';' => {
                out.push(Token {
                    tok: Tok::Semi,
                    line,
                });
                i += 1;
            }
            ':' => {
                out.push(Token {
                    tok: Tok::Colon,
                    line,
                });
                i += 1;
            }
            '.' => {
                out.push(Token {
                    tok: Tok::Dot,
                    line,
                });
                i += 1;
            }
            '+' => {
                out.push(Token {
                    tok: Tok::Plus,
                    line,
                });
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token {
                        tok: Tok::Arrow,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Minus,
                        line,
                    });
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token {
                        tok: Tok::EqEq,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(DslError::new(line, "single `=` (use `==` for equality)"));
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token {
                        tok: Tok::NotEq,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Bang,
                        line,
                    });
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token { tok: Tok::Le, line });
                    i += 2;
                } else {
                    out.push(Token { tok: Tok::Lt, line });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token { tok: Tok::Ge, line });
                    i += 2;
                } else {
                    out.push(Token { tok: Tok::Gt, line });
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    out.push(Token {
                        tok: Tok::AndAnd,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(DslError::new(line, "single `&` (use `&&`)"));
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    out.push(Token {
                        tok: Tok::OrOr,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(DslError::new(line, "single `|` (use `||`)"));
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(DslError::new(line, "unterminated string literal"));
                    }
                    match bytes[i] as char {
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\\' => {
                            i += 1;
                            if i >= bytes.len() {
                                return Err(DslError::new(line, "unterminated escape"));
                            }
                            s.push(match bytes[i] as char {
                                'n' => '\n',
                                't' => '\t',
                                '"' => '"',
                                '\\' => '\\',
                                other => {
                                    return Err(DslError::new(
                                        line,
                                        format!("unknown escape \\{other}"),
                                    ))
                                }
                            });
                            i += 1;
                        }
                        '\n' => return Err(DslError::new(line, "newline in string literal")),
                        c => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                // Groups of digits separated by dots: 1 = int, 2 = float,
                // 4 = IPv4; anything else is malformed.
                let mut groups: Vec<&str> = Vec::new();
                loop {
                    let start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    groups.push(&source[start..i]);
                    if i + 1 < bytes.len()
                        && bytes[i] == b'.'
                        && bytes[i + 1].is_ascii_digit()
                        && groups.len() < 4
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let tok = match groups.len() {
                    1 => Tok::Int(
                        groups[0]
                            .parse()
                            .map_err(|_| DslError::new(line, "integer literal out of range"))?,
                    ),
                    2 => Tok::Float(
                        format!("{}.{}", groups[0], groups[1])
                            .parse()
                            .map_err(|_| DslError::new(line, "bad float literal"))?,
                    ),
                    4 => {
                        let octets: Result<Vec<u8>, _> =
                            groups.iter().map(|g| g.parse::<u8>()).collect();
                        let octets =
                            octets.map_err(|_| DslError::new(line, "IPv4 octet out of range"))?;
                        Tok::Ip(Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]))
                    }
                    n => {
                        return Err(DslError::new(
                            line,
                            format!("malformed number with {n} dot-separated groups"),
                        ))
                    }
                };
                out.push(Token { tok, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(source[start..i].to_string()),
                    line,
                });
            }
            other => {
                return Err(DslError::new(
                    line,
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn numbers_floats_and_ips() {
        assert_eq!(
            toks("42 1.5 10.0.0.6"),
            vec![
                Tok::Int(42),
                Tok::Float(1.5),
                Tok::Ip("10.0.0.6".parse().unwrap()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn three_group_numbers_are_rejected() {
        assert!(lex("1.2.3").is_err());
        assert!(lex("10.0.0.999").is_err());
    }

    #[test]
    fn operators_and_punctuation() {
        assert_eq!(
            toks("== != <= >= < > && || ! -> ( ) { } [ ] , ; : . + -"),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::Arrow,
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::RBrace,
                Tok::LBracket,
                Tok::RBracket,
                Tok::Comma,
                Tok::Semi,
                Tok::Colon,
                Tok::Dot,
                Tok::Plus,
                Tok::Minus,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""ping -c 60" "a\"b" "x\\y""#),
            vec![
                Tok::Str("ping -c 60".into()),
                Tok::Str("a\"b".into()),
                Tok::Str("x\\y".into()),
                Tok::Eof
            ]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn comments_and_lines() {
        let tokens = lex("a # comment\nb").unwrap();
        assert_eq!(tokens[0].tok, Tok::Ident("a".into()));
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].tok, Tok::Ident("b".into()));
        assert_eq!(tokens[1].line, 2);
    }

    #[test]
    fn single_equals_is_an_error_with_hint() {
        let err = lex("a = b").unwrap_err();
        assert!(err.message.contains("=="));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn identifiers_include_underscores_and_caps() {
        assert_eq!(
            toks("FLOW_MOD sigma_1 _x"),
            vec![
                Tok::Ident("FLOW_MOD".into()),
                Tok::Ident("sigma_1".into()),
                Tok::Ident("_x".into()),
                Tok::Eof
            ]
        );
    }
}
