//! The compiler (paper §VI-B1): resolves parsed attack descriptions
//! against the system and attack models, validates capabilities, and
//! produces executable [`Attack`]s.

use crate::dsl::ast::*;
use crate::dsl::lexer::DslError;
use crate::dsl::parser;
use crate::exec::validate_attack;
use crate::lang::{
    Attack, AttackAction, AttackState, AttackStateGraph, DequeEnd, Expr, Property, Rule, Value,
};
use crate::model::{AttackModel, Capability, CapabilitySet, ConnectionId, SystemModel};
use attain_openflow::{MacAddr, OfType};

/// A fully compiled and validated attack.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledAttack {
    /// The executable attack.
    pub attack: Attack,
    /// Its state graph `Σ_G`.
    pub graph: AttackStateGraph,
    /// The per-state compiled dispatch indexes (equality buckets,
    /// threshold intervals, residual sets — see
    /// [`CompiledRuleset`](crate::exec::CompiledRuleset)).
    pub ruleset: crate::exec::CompiledRuleset,
}

impl CompiledAttack {
    /// The attack's name.
    pub fn name(&self) -> &str {
        &self.attack.name
    }

    /// The attack's states.
    pub fn states(&self) -> &[crate::lang::AttackState] {
        self.attack.states()
    }

    /// How the compiled dispatcher classified the attack's rules.
    pub fn dispatch_summary(&self) -> crate::exec::DispatchSummary {
        self.ruleset.summary()
    }
}

/// A compiled self-contained document: system model, attack model, and
/// attacks — the paper's three compiler inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledDocument {
    /// The system model from the `system` block.
    pub system: SystemModel,
    /// The attack model from the `capabilities` block (uniform
    /// `Γ_NoTLS` when absent).
    pub attack_model: AttackModel,
    /// The compiled attacks.
    pub attacks: Vec<CompiledAttack>,
}

/// Compiles an attack-only source (the system and attack models supplied
/// programmatically), returning the first attack.
///
/// # Errors
///
/// Fails on syntax errors, unresolved names, capability violations, or
/// if the source contains `system`/`capabilities` blocks or no attack.
pub fn compile(
    source: &str,
    system: &SystemModel,
    model: &AttackModel,
) -> Result<CompiledAttack, DslError> {
    let mut attacks = compile_all(source, system, model)?;
    if attacks.is_empty() {
        return Err(DslError::new(0, "source contains no attack block"));
    }
    Ok(attacks.remove(0))
}

/// Compiles every attack in an attack-only source.
///
/// # Errors
///
/// As [`compile`].
pub fn compile_all(
    source: &str,
    system: &SystemModel,
    model: &AttackModel,
) -> Result<Vec<CompiledAttack>, DslError> {
    let doc = parser::parse(source)?;
    if doc.system.is_some() || doc.capabilities.is_some() {
        return Err(DslError::new(
            0,
            "attack-only source expected; use compile_document for self-contained files",
        ));
    }
    doc.attacks
        .into_iter()
        .map(|a| compile_attack(a, system, model))
        .collect()
}

/// Compiles a self-contained document with `system`, optional
/// `capabilities`, and attack blocks.
///
/// # Errors
///
/// As [`compile`], plus system-model construction errors.
pub fn compile_document(source: &str) -> Result<CompiledDocument, DslError> {
    let doc = parser::parse(source)?;
    let Some(system_block) = &doc.system else {
        return Err(DslError::new(0, "document has no system block"));
    };
    let system = compile_system(system_block)?;
    let attack_model = match &doc.capabilities {
        Some(caps) => compile_capabilities(caps, &system)?,
        None => AttackModel::uniform(&system, CapabilitySet::no_tls()),
    };
    let attacks = doc
        .attacks
        .into_iter()
        .map(|a| compile_attack(a, &system, &attack_model))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CompiledDocument {
        system,
        attack_model,
        attacks,
    })
}

// ---------------------------------------------------------------------------
// System + capabilities
// ---------------------------------------------------------------------------

fn compile_system(block: &SystemBlock) -> Result<SystemModel, DslError> {
    let mut system = SystemModel::new();
    // Components first, then topology, so links may reference nodes
    // declared later.
    for stmt in &block.stmts {
        let result = match stmt {
            SystemStmt::Controller { name, .. } => system.add_controller(name).map(|_| ()),
            SystemStmt::Switch { name, .. } => system.add_switch(name).map(|_| ()),
            SystemStmt::Host { name, ip, mac, .. } => {
                let mac = match mac {
                    Some(text) => Some(text.parse::<MacAddr>().map_err(|_| {
                        DslError::new(stmt_line(stmt), format!("invalid MAC address {text:?}"))
                    })?),
                    None => None,
                };
                system.add_host(name, *ip, mac).map(|_| ())
            }
            _ => Ok(()),
        };
        result.map_err(|e| DslError::new(stmt_line(stmt), e.to_string()))?;
    }
    let mut next_port: std::collections::HashMap<String, u16> = std::collections::HashMap::new();
    for stmt in &block.stmts {
        match stmt {
            SystemStmt::Link { a, b } => {
                let ra = system
                    .resolve(&a.node)
                    .ok_or_else(|| DslError::new(a.line, format!("unknown node {}", a.node)))?;
                let rb = system
                    .resolve(&b.node)
                    .ok_or_else(|| DslError::new(b.line, format!("unknown node {}", b.node)))?;
                let mut port_for = |name: &str, explicit: Option<u16>| match explicit {
                    Some(p) => {
                        let slot = next_port.entry(name.to_string()).or_insert(0);
                        *slot = (*slot).max(p);
                        p
                    }
                    None => {
                        let slot = next_port.entry(name.to_string()).or_insert(0);
                        *slot += 1;
                        *slot
                    }
                };
                use crate::model::NodeRef;
                match (ra, rb) {
                    (NodeRef::Host(h), NodeRef::Switch(s)) => {
                        let port = port_for(&b.node, b.port);
                        system
                            .add_host_link(h, s, port)
                            .map_err(|e| DslError::new(a.line, e.to_string()))?;
                    }
                    (NodeRef::Switch(s), NodeRef::Host(h)) => {
                        let port = port_for(&a.node, a.port);
                        system
                            .add_host_link(h, s, port)
                            .map_err(|e| DslError::new(a.line, e.to_string()))?;
                    }
                    (NodeRef::Switch(sa), NodeRef::Switch(sb)) => {
                        let pa = port_for(&a.node, a.port);
                        let pb = port_for(&b.node, b.port);
                        system
                            .add_switch_link(sa, pa, sb, pb)
                            .map_err(|e| DslError::new(a.line, e.to_string()))?;
                    }
                    _ => {
                        return Err(DslError::new(
                            a.line,
                            "links connect hosts to switches or switches to switches",
                        ))
                    }
                }
            }
            SystemStmt::Connection {
                controller,
                switch,
                line,
            } => {
                use crate::model::NodeRef;
                let c = match system.resolve(controller) {
                    Some(NodeRef::Controller(c)) => c,
                    _ => {
                        return Err(DslError::new(
                            *line,
                            format!("{controller} is not a controller"),
                        ))
                    }
                };
                let s = match system.resolve(switch) {
                    Some(NodeRef::Switch(s)) => s,
                    _ => return Err(DslError::new(*line, format!("{switch} is not a switch"))),
                };
                system
                    .add_connection(c, s)
                    .map_err(|e| DslError::new(*line, e.to_string()))?;
            }
            _ => {}
        }
    }
    system
        .validate()
        .map_err(|e| DslError::new(0, e.to_string()))?;
    Ok(system)
}

fn stmt_line(stmt: &SystemStmt) -> u32 {
    match stmt {
        SystemStmt::Controller { line, .. }
        | SystemStmt::Switch { line, .. }
        | SystemStmt::Host { line, .. }
        | SystemStmt::Connection { line, .. } => *line,
        SystemStmt::Link { a, .. } => a.line,
    }
}

fn cap_class_to_set(class: &CapClass, line: u32) -> Result<CapabilitySet, DslError> {
    Ok(match class {
        CapClass::NoTls => CapabilitySet::no_tls(),
        CapClass::Tls => CapabilitySet::tls(),
        CapClass::None => CapabilitySet::EMPTY,
        CapClass::Explicit(names) => {
            let mut set = CapabilitySet::new();
            for name in names {
                let cap = Capability::parse(name)
                    .ok_or_else(|| DslError::new(line, format!("unknown capability `{name}`")))?;
                set.insert(cap);
            }
            set
        }
    })
}

fn compile_capabilities(
    block: &CapabilitiesBlock,
    system: &SystemModel,
) -> Result<AttackModel, DslError> {
    let default = match &block.default {
        Some((class, line)) => cap_class_to_set(class, *line)?,
        None => CapabilitySet::no_tls(),
    };
    let mut model = AttackModel::uniform(system, default);
    for (c, s, class, line) in &block.overrides {
        let conn = system.connection_by_names(c, s).ok_or_else(|| {
            DslError::new(
                *line,
                format!("({c}, {s}) is not a control plane connection"),
            )
        })?;
        model.set(conn, cap_class_to_set(class, *line)?);
    }
    Ok(model)
}

// ---------------------------------------------------------------------------
// Attacks
// ---------------------------------------------------------------------------

fn compile_attack(
    block: AttackBlock,
    system: &SystemModel,
    model: &AttackModel,
) -> Result<CompiledAttack, DslError> {
    if block.states.is_empty() {
        return Err(DslError::new(
            block.line,
            format!("attack {} has no states", block.name),
        ));
    }
    let starts: Vec<usize> = block
        .states
        .iter()
        .enumerate()
        .filter(|(_, s)| s.start)
        .map(|(i, _)| i)
        .collect();
    let start = match starts.as_slice() {
        [] if block.states.len() == 1 => 0,
        [one] => *one,
        [] => {
            return Err(DslError::new(
                block.line,
                "multi-state attacks must mark one `start state`",
            ))
        }
        _ => {
            return Err(DslError::new(
                block.line,
                "more than one state is marked `start`",
            ))
        }
    };
    // `goto` resolution outlives the move of each state below, so the
    // name table is captured up front (the only per-state copy left —
    // everything else in the AST is moved into the compiled attack).
    let state_names: Vec<String> = block.states.iter().map(|s| s.name.clone()).collect();
    let state_index = move |name: &str, line: u32| {
        state_names
            .iter()
            .position(|s| s == name)
            .ok_or_else(|| DslError::new(line, format!("unknown state `{name}`")))
    };

    let mut states = Vec::with_capacity(block.states.len());
    for decl in block.states {
        let mut rules = Vec::with_capacity(decl.rules.len());
        for rd in decl.rules {
            let connections: Vec<ConnectionId> = match &rd.connections {
                ConnSpec::All => system.connections().map(|(id, _, _)| id).collect(),
                ConnSpec::List(list) => list
                    .iter()
                    .map(|(c, s)| {
                        system.connection_by_names(c, s).ok_or_else(|| {
                            DslError::new(
                                rd.line,
                                format!("({c}, {s}) is not a control plane connection"),
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?,
            };
            if connections.is_empty() {
                return Err(DslError::new(
                    rd.line,
                    format!("rule {} watches no connections", rd.name),
                ));
            }
            let condition = compile_expr(rd.condition, system, rd.line)?;
            let actions = rd
                .actions
                .into_iter()
                .map(|a| compile_action(a, system, &state_index, rd.line))
                .collect::<Result<Vec<_>, _>>()?;
            let mut rule = Rule {
                name: rd.name,
                connections,
                required: CapabilitySet::EMPTY,
                condition,
                actions,
            };
            rule.required = match &rd.requires {
                Some(class) => cap_class_to_set(class, rd.line)?,
                None => rule.exercised_capabilities(),
            };
            rules.push(rule);
        }
        states.push(AttackState {
            name: decl.name,
            rules,
        });
    }
    let attack = Attack {
        name: block.name,
        states,
        start,
    };
    validate_attack(system, model, &attack)
        .map_err(|e| DslError::new(block.line, e.to_string()))?;
    let graph = AttackStateGraph::from_attack(&attack);
    let ruleset = crate::exec::CompiledRuleset::compile(&attack, system.connection_count());
    Ok(CompiledAttack {
        attack,
        graph,
        ruleset,
    })
}

fn compile_expr(ast: ExprAst, system: &SystemModel, line: u32) -> Result<Expr, DslError> {
    Ok(match ast {
        ExprAst::Int(i) => Expr::Lit(Value::Int(i)),
        ExprAst::Float(x) => Expr::Lit(Value::Float(x)),
        ExprAst::Str(s) => Expr::Lit(Value::Str(s)),
        ExprAst::Ip(ip) => Expr::Lit(Value::Ip(ip)),
        ExprAst::Bool(b) => Expr::Lit(Value::Bool(b)),
        ExprAst::NoneLit => Expr::Lit(Value::None),
        ExprAst::MacLit(text, line) => {
            Expr::Lit(Value::Mac(text.parse().map_err(|_| {
                DslError::new(line, format!("invalid MAC address {text:?}"))
            })?))
        }
        ExprAst::Name(name, line) => {
            if let Some(t) = OfType::from_spec_name(&name) {
                Expr::Lit(Value::MsgType(t))
            } else if let Some(node) = system.resolve(&name) {
                Expr::Lit(Value::Addr(node))
            } else {
                return Err(DslError::new(
                    line,
                    format!("`{name}` is neither a component nor an OpenFlow message type"),
                ));
            }
        }
        ExprAst::MsgProp(prop, line) => Expr::Prop(match prop.as_str() {
            "source" => Property::Source,
            "destination" => Property::Destination,
            "timestamp" => Property::Timestamp,
            "length" => Property::Length,
            "type" => Property::Type,
            "id" => Property::Id,
            "entropy" => Property::Entropy,
            other => {
                return Err(DslError::new(
                    line,
                    format!(
                        "unknown message property `{other}` (use msg[\"path\"] for type options)"
                    ),
                ))
            }
        }),
        ExprAst::MsgOption(path) => Expr::Prop(Property::TypeOption(path)),
        ExprAst::DequeFn { func, deque } => match func.as_str() {
            "front" => Expr::DequeRead {
                deque,
                end: DequeEnd::Front,
            },
            "back" => Expr::DequeRead {
                deque,
                end: DequeEnd::End,
            },
            "len" => Expr::DequeLen(deque),
            _ => unreachable!("parser only yields front/back/len"),
        },
        ExprAst::Not(e) => Expr::Not(Box::new(compile_expr(*e, system, line)?)),
        ExprAst::Bin { op, lhs, rhs } => {
            let l = Box::new(compile_expr(*lhs, system, line)?);
            let r = Box::new(compile_expr(*rhs, system, line)?);
            match op {
                "&&" => Expr::And(l, r),
                "||" => Expr::Or(l, r),
                "==" => Expr::Eq(l, r),
                "!=" => Expr::Ne(l, r),
                "<" => Expr::Lt(l, r),
                "<=" => Expr::Le(l, r),
                ">" => Expr::Gt(l, r),
                ">=" => Expr::Ge(l, r),
                "+" => Expr::Add(l, r),
                "-" => Expr::Sub(l, r),
                other => return Err(DslError::new(line, format!("unknown operator {other}"))),
            }
        }
        ExprAst::In(needle, items) => Expr::In(
            Box::new(compile_expr(*needle, system, line)?),
            items
                .into_iter()
                .map(|i| compile_expr(i, system, line))
                .collect::<Result<_, _>>()?,
        ),
        ExprAst::TimingFn { func, args, line } => compile_timing_fn(&func, &args, line)?,
    })
}

/// Resolves a timing-predicate argument that must name an OpenFlow
/// message type.
fn timing_type_arg(arg: &ExprAst, func: &str, line: u32) -> Result<OfType, DslError> {
    match arg {
        ExprAst::Name(name, line) => OfType::from_spec_name(name).ok_or_else(|| {
            DslError::new(
                *line,
                format!("`{name}` is not an OpenFlow message type (in `{func}(...)`)"),
            )
        }),
        _ => Err(DslError::new(
            line,
            format!("`{func}` takes OpenFlow message-type names (e.g. PACKET_IN) as arguments"),
        )),
    }
}

/// Resolves a timing-predicate window argument: an integer literal in
/// `1..=MAX_TIMING_WINDOW`.
fn timing_window_arg(arg: &ExprAst, func: &str, line: u32) -> Result<u32, DslError> {
    match arg {
        ExprAst::Int(n) if (1..=i64::from(crate::lang::MAX_TIMING_WINDOW)).contains(n) => {
            Ok(*n as u32)
        }
        ExprAst::Int(n) => Err(DslError::new(
            line,
            format!(
                "`{func}` window must be in 1..={}, got {n}",
                crate::lang::MAX_TIMING_WINDOW
            ),
        )),
        _ => Err(DslError::new(
            line,
            format!("`{func}` window must be an integer literal"),
        )),
    }
}

fn compile_timing_fn(func: &str, args: &[ExprAst], line: u32) -> Result<Expr, DslError> {
    use crate::lang::TimingStat;
    let arity = |want: usize, shape: &str| -> Result<(), DslError> {
        if args.len() == want {
            Ok(())
        } else {
            Err(DslError::new(
                line,
                format!(
                    "`{func}` expects {want} argument{} {shape}, found {}",
                    if want == 1 { "" } else { "s" },
                    args.len()
                ),
            ))
        }
    };
    Ok(match func {
        "elapsed_in_state" => {
            arity(0, "()")?;
            Expr::ElapsedInState
        }
        "latency" => {
            arity(2, "(request type, response type)")?;
            let req = timing_type_arg(&args[0], func, line)?;
            let resp = timing_type_arg(&args[1], func, line)?;
            if req == resp {
                return Err(DslError::new(
                    line,
                    format!(
                        "`latency` request and response types must differ \
                         (use `inter_arrival({})` for same-type gaps)",
                        req.spec_name()
                    ),
                ));
            }
            Expr::Timing {
                req,
                resp,
                stat: TimingStat::Last,
                window: 1,
            }
        }
        "inter_arrival" => {
            arity(1, "(message type)")?;
            let t = timing_type_arg(&args[0], func, line)?;
            Expr::Timing {
                req: t,
                resp: t,
                stat: TimingStat::Last,
                window: 1,
            }
        }
        "timing_count" => {
            arity(2, "(request type, response type)")?;
            Expr::Timing {
                req: timing_type_arg(&args[0], func, line)?,
                resp: timing_type_arg(&args[1], func, line)?,
                stat: TimingStat::Count,
                window: 1,
            }
        }
        "timing_mean" | "timing_stddev" => {
            arity(3, "(request type, response type, window)")?;
            Expr::Timing {
                req: timing_type_arg(&args[0], func, line)?,
                resp: timing_type_arg(&args[1], func, line)?,
                stat: if func == "timing_mean" {
                    TimingStat::Mean
                } else {
                    TimingStat::StdDev
                },
                window: timing_window_arg(&args[2], func, line)?,
            }
        }
        other => unreachable!("parser only yields timing predicates, got `{other}`"),
    })
}

fn decode_hex(text: &str, line: u32) -> Result<Vec<u8>, DslError> {
    let clean: String = text.chars().filter(|c| !c.is_whitespace()).collect();
    if !clean.len().is_multiple_of(2) {
        return Err(DslError::new(line, "hex literal has odd length"));
    }
    (0..clean.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&clean[i..i + 2], 16)
                .map_err(|_| DslError::new(line, "invalid hex digit"))
        })
        .collect()
}

fn compile_action(
    ast: ActionAst,
    system: &SystemModel,
    state_index: &impl Fn(&str, u32) -> Result<usize, DslError>,
    line: u32,
) -> Result<AttackAction, DslError> {
    Ok(match ast {
        ActionAst::Drop => AttackAction::Drop,
        ActionAst::Pass => AttackAction::Pass,
        ActionAst::Duplicate => AttackAction::Duplicate,
        ActionAst::Read => AttackAction::Read,
        ActionAst::ReadMetadata => AttackAction::ReadMetadata,
        ActionAst::Delay(e) => AttackAction::Delay(compile_expr(e, system, line)?),
        ActionAst::Modify(field, e) => AttackAction::Modify {
            field,
            value: compile_expr(e, system, line)?,
        },
        ActionAst::ModifyMetadata(field, e) => AttackAction::ModifyMetadata {
            field,
            value: compile_expr(e, system, line)?,
        },
        ActionAst::Fuzz(flips) => AttackAction::Fuzz { flips },
        ActionAst::Inject {
            conn: (c, s),
            to_controller,
            hex,
            line,
        } => {
            let conn = system.connection_by_names(&c, &s).ok_or_else(|| {
                DslError::new(
                    line,
                    format!("({c}, {s}) is not a control plane connection"),
                )
            })?;
            AttackAction::Inject {
                conn,
                to_controller,
                frame: attain_openflow::Frame::new(decode_hex(&hex, line)?),
            }
        }
        ActionAst::Append { deque, value } => match value {
            Some(e) => AttackAction::Append {
                deque,
                value: compile_expr(e, system, line)?,
            },
            None => AttackAction::StoreMessage {
                deque,
                front: false,
            },
        },
        ActionAst::Prepend { deque, value } => match value {
            Some(e) => AttackAction::Prepend {
                deque,
                value: compile_expr(e, system, line)?,
            },
            None => AttackAction::StoreMessage { deque, front: true },
        },
        ActionAst::Shift(d) => AttackAction::Shift(d),
        ActionAst::Pop(d) => AttackAction::Pop(d),
        ActionAst::EmitFront(d) => AttackAction::EmitStored {
            deque: d,
            end: DequeEnd::Front,
        },
        ActionAst::EmitBack(d) => AttackAction::EmitStored {
            deque: d,
            end: DequeEnd::End,
        },
        ActionAst::Goto(target, line) => AttackAction::GoToState(state_index(&target, line)?),
        ActionAst::Sleep(e) => AttackAction::Sleep(compile_expr(e, system, line)?),
        ActionAst::SysCmd { host, cmd, line } => {
            if system.resolve(&host).is_none() {
                return Err(DslError::new(line, format!("unknown host `{host}`")));
            }
            AttackAction::SysCmd { host, cmd }
        }
        ActionAst::Fault { spec, line } => {
            // Shallow validation: the full grammar lives with the
            // simulator, but target kinds and component names are known
            // here and a typo should fail at compile time, not silently
            // no-op at run time.
            let toks: Vec<&str> = spec.split_whitespace().collect();
            let err = |msg: String| Err(DslError::new(line, msg));
            match toks.as_slice() {
                ["link", ab, _, ..] => {
                    let Some((a, b)) = ab.split_once('-') else {
                        return err(format!("fault link target `{ab}` is not `A-B`"));
                    };
                    for n in [a, b] {
                        if system.resolve(n).is_none() {
                            return err(format!("unknown component `{n}` in fault `{spec}`"));
                        }
                    }
                }
                [kind @ ("controller" | "switch"), name, _, ..] => {
                    if system.resolve(name).is_none() {
                        return err(format!("unknown {kind} `{name}` in fault `{spec}`"));
                    }
                }
                _ => {
                    return err(format!(
                        "fault spec `{spec}` must be `link A-B …`, `controller N …`, \
                         or `switch N …`"
                    ));
                }
            }
            AttackAction::Fault { spec }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Capability;

    const SELF_CONTAINED: &str = r#"
        system {
            controller c1;
            switch s1;
            switch s2;
            host h1 ip 10.0.0.1;
            host h2 ip 10.0.0.2;
            link h1, s1;
            link s1, s2;
            link h2, s2;
            connection c1 -> s1;
            connection c1 -> s2;
        }
        capabilities {
            default no_tls;
            (c1, s2): tls;
        }
        attack drop_flow_mods {
            start state sigma1 {
                rule phi1 on (c1, s1) {
                    when msg.type == FLOW_MOD && msg.source == c1
                    do { drop(msg); }
                }
            }
        }
    "#;

    #[test]
    fn compiles_self_contained_document() {
        let doc = compile_document(SELF_CONTAINED).unwrap();
        assert_eq!(doc.system.connection_count(), 2);
        assert!(doc
            .attack_model
            .get(ConnectionId(0))
            .contains(Capability::ReadMessage));
        assert!(!doc
            .attack_model
            .get(ConnectionId(1))
            .contains(Capability::ReadMessage));
        assert_eq!(doc.attacks.len(), 1);
        let atk = &doc.attacks[0];
        assert_eq!(atk.name(), "drop_flow_mods");
        assert_eq!(atk.states().len(), 1);
        // Inferred γ covers the payload read and the drop.
        let rule = &atk.attack.states[0].rules[0];
        assert!(rule.required.contains(Capability::ReadMessage));
        assert!(rule.required.contains(Capability::DropMessage));
        assert!(rule.required.contains(Capability::ReadMessageMetadata));
        // The condition anchors on `msg.type == FLOW_MOD`: the compiled
        // dispatcher indexes it through an equality bucket.
        let summary = atk.dispatch_summary();
        assert_eq!(summary.rules, 1);
        assert_eq!(summary.eq_indexed, 1);
        assert_eq!(summary.residual, 0);
    }

    #[test]
    fn tls_connection_rejects_payload_reading_rules() {
        // Same attack, but watching the TLS connection (c1, s2): the
        // compiler must refuse, since msg.type needs READMESSAGE.
        let source = SELF_CONTAINED.replace("rule phi1 on (c1, s1)", "rule phi1 on (c1, s2)");
        let err = compile_document(&source).unwrap_err();
        assert!(
            err.message.contains("does not grant"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn under_declared_requires_is_rejected() {
        let source = SELF_CONTAINED.replace(
            "rule phi1 on (c1, s1) {",
            "rule phi1 on (c1, s1) requires { drop_message } {",
        );
        let err = compile_document(&source).unwrap_err();
        assert!(
            err.message.contains("undeclared"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn unknown_names_are_reported_with_lines() {
        let source = r#"
            attack x {
                start state s {
                    rule r on (c9, s9) {
                        when true
                        do { drop(msg); }
                    }
                }
            }
        "#;
        let doc = compile_document(SELF_CONTAINED).unwrap();
        let err = compile(source, &doc.system, &doc.attack_model).unwrap_err();
        assert!(err.message.contains("not a control plane connection"));
        assert!(err.line > 0);

        let source = r#"
            attack x {
                start state s {
                    rule r on all {
                        when msg.source == nobody
                        do { drop(msg); }
                    }
                }
            }
        "#;
        let err = compile(source, &doc.system, &doc.attack_model).unwrap_err();
        assert!(err.message.contains("nobody"));
    }

    #[test]
    fn goto_resolves_state_names() {
        let doc = compile_document(SELF_CONTAINED).unwrap();
        let source = r#"
            attack two_stage {
                start state a {
                    # (c1, s1) only: `all` would include the TLS
                    # connection, where msg.type is unreadable.
                    rule r on (c1, s1) {
                        when msg.type == HELLO
                        do { pass(msg); goto b; }
                    }
                }
                state b { }
            }
        "#;
        let atk = compile(source, &doc.system, &doc.attack_model).unwrap();
        assert_eq!(atk.attack.start, 0);
        assert_eq!(atk.graph.edges.len(), 1);
        assert_eq!(atk.graph.edges[0].to, 1);
        assert_eq!(atk.graph.end, vec![1]);
        // Unknown target:
        let bad = source.replace("goto b;", "goto zz;");
        assert!(compile(&bad, &doc.system, &doc.attack_model)
            .unwrap_err()
            .message
            .contains("unknown state"));
    }

    #[test]
    fn attack_only_compile_rejects_system_blocks() {
        let doc = compile_document(SELF_CONTAINED).unwrap();
        let err = compile(SELF_CONTAINED, &doc.system, &doc.attack_model).unwrap_err();
        assert!(err.message.contains("attack-only"));
    }

    #[test]
    fn start_state_marking_rules() {
        let doc = compile_document(SELF_CONTAINED).unwrap();
        // Single state: implicit start.
        let one = "attack a { state s { } }";
        assert!(compile(one, &doc.system, &doc.attack_model).is_ok());
        // Two states, no start: error.
        let two = "attack a { state s { } state t { } }";
        assert!(compile(two, &doc.system, &doc.attack_model)
            .unwrap_err()
            .message
            .contains("start"));
        // Two starts: error.
        let dup = "attack a { start state s { } start state t { } }";
        assert!(compile(dup, &doc.system, &doc.attack_model)
            .unwrap_err()
            .message
            .contains("more than one"));
    }

    #[test]
    fn hex_injection_is_decoded() {
        let doc = compile_document(SELF_CONTAINED).unwrap();
        let source = r#"
            attack inj {
                start state s {
                    rule r on (c1, s1) {
                        when true
                        do { inject((c1, s1), to_switch, hex("01 04 00 08 00 00 00 63")); }
                    }
                }
            }
        "#;
        let atk = compile(source, &doc.system, &doc.attack_model).unwrap();
        let AttackAction::Inject { frame, .. } = &atk.attack.states[0].rules[0].actions[0] else {
            panic!("expected inject");
        };
        assert_eq!(
            frame.bytes(),
            &[0x01, 0x04, 0x00, 0x08, 0x00, 0x00, 0x00, 0x63]
        );
        // Malformed hex:
        let bad = source.replace("00 63", "00 6");
        assert!(compile(&bad, &doc.system, &doc.attack_model).is_err());
    }

    #[test]
    fn fault_specs_are_validated_against_the_system_model() {
        let doc = compile_document(SELF_CONTAINED).unwrap();
        let source = r#"
            attack env {
                start state s {
                    rule r on (c1, s1) {
                        when true
                        do {
                            fault("link s1-s2 down");
                            fault("controller c1 crash");
                            fault("switch s2 restart");
                        }
                    }
                }
            }
        "#;
        let atk = compile(source, &doc.system, &doc.attack_model).unwrap();
        let actions = &atk.attack.states[0].rules[0].actions;
        assert!(matches!(&actions[0], AttackAction::Fault { spec } if spec == "link s1-s2 down"));
        assert!(
            matches!(&actions[1], AttackAction::Fault { spec } if spec == "controller c1 crash")
        );
        // Unknown component names fail at compile time, not at run time.
        for bad in [
            r#"fault("link s1-s9 down")"#,
            r#"fault("controller c9 crash")"#,
            r#"fault("nonsense")"#,
        ] {
            let src = source.replace(r#"fault("link s1-s2 down")"#, bad);
            assert!(
                compile(&src, &doc.system, &doc.attack_model).is_err(),
                "expected {bad} to be rejected"
            );
        }
    }

    /// Wraps `clause` in a minimal attack against the self-contained
    /// document and compiles it, for timing-predicate error probing.
    fn compile_when(clause: &str) -> Result<crate::dsl::CompiledAttack, DslError> {
        let doc = compile_document(SELF_CONTAINED).unwrap();
        let source = format!(
            r#"
            attack probe {{
                start state s {{
                    rule r on (c1, s1) {{
                        when {clause}
                        do {{ drop(msg); }}
                    }}
                }}
            }}
            "#
        );
        compile(&source, &doc.system, &doc.attack_model)
    }

    #[test]
    fn timing_predicates_compile_to_the_expected_exprs() {
        use crate::lang::TimingStat;
        let atk = compile_when(
            "latency(PACKET_IN, FLOW_MOD) > 1000000 \
             && timing_mean(PACKET_IN, FLOW_MOD, 8) > 0 \
             && timing_count(HELLO, HELLO) >= 0 \
             && elapsed_in_state() < 5000000",
        )
        .unwrap();
        let mut stats = Vec::new();
        atk.attack.states[0].rules[0].condition.for_each(&mut |e| {
            if let Expr::Timing { stat, window, .. } = e {
                stats.push((*stat, *window));
            }
        });
        assert_eq!(
            stats,
            [
                (TimingStat::Last, 1),
                (TimingStat::Mean, 8),
                (TimingStat::Count, 1),
            ]
        );
    }

    #[test]
    fn timing_predicate_misuse_is_a_compile_error() {
        // (clause, must-appear-in-message) pairs covering every
        // validation branch in `compile_timing_fn`.
        for (clause, needle) in [
            // `latency` of a type with itself: pointed at inter_arrival.
            (
                "latency(PACKET_IN, PACKET_IN) > 0",
                "use `inter_arrival(PACKET_IN)`",
            ),
            // Unknown message type name.
            (
                "latency(PACKET_IN, FLOW_MOE) > 0",
                "`FLOW_MOE` is not an OpenFlow message type",
            ),
            // Arity errors, one per builtin shape.
            ("latency(PACKET_IN) > 0", "expects 2 arguments"),
            ("inter_arrival() > 0", "expects 1 argument"),
            ("elapsed_in_state(HELLO) > 0", "expects 0 arguments"),
            (
                "timing_mean(PACKET_IN, FLOW_MOD) > 0",
                "expects 3 arguments",
            ),
            // Window domain: negative, zero, oversized, non-integer.
            ("timing_mean(PACKET_IN, FLOW_MOD, -3) > 0", "got -3"),
            ("timing_stddev(PACKET_IN, FLOW_MOD, 0) > 0", "got 0"),
            (
                "timing_mean(PACKET_IN, FLOW_MOD, 257) > 0",
                "window must be in 1..=256",
            ),
            (
                "timing_mean(PACKET_IN, FLOW_MOD, 2.5) > 0",
                "window must be an integer literal",
            ),
            (
                "timing_mean(PACKET_IN, FLOW_MOD, msg.length) > 0",
                "window must be an integer literal",
            ),
            // Type arguments must be names, not arbitrary expressions.
            (
                "timing_count(1 + 2, FLOW_MOD) > 0",
                "takes OpenFlow message-type names",
            ),
        ] {
            let err = compile_when(clause)
                .map(|_| ())
                .expect_err(&format!("`{clause}` must not compile"));
            assert!(
                err.message.contains(needle),
                "`{clause}`: expected `{needle}` in `{}`",
                err.message
            );
            assert!(err.line > 0, "`{clause}`: error must carry a line");
        }
    }

    #[test]
    fn auto_port_assignment_numbers_in_declaration_order() {
        let doc = compile_document(SELF_CONTAINED).unwrap();
        // s1: port 1 = h1 link, port 2 = s1-s2 link.
        let (_, s1) = doc.system.switches().next().unwrap();
        assert_eq!(s1.ports, vec![1, 2]);
        let (_, s2) = doc.system.switches().nth(1).unwrap();
        assert_eq!(s2.ports, vec![1, 2]);
    }
}
