//! The textual attack description language and its compiler (paper
//! §VI-B1).
//!
//! The paper's compiler consumes three XML files — system model, attack
//! model, and attack states — and emits executable code. This module
//! implements the same pipeline over a small textual format (the allowed
//! dependency set has no XML parser, and the format is nicer to write by
//! hand); the three inputs can live in one document or the system/attack
//! models can be supplied programmatically.
//!
//! ```text
//! system {
//!     controller c1;
//!     switch s1;
//!     host h1 ip 10.0.0.1;
//!     host h2 ip 10.0.0.2;
//!     link h1, s1;
//!     link h2, s1;
//!     connection c1 -> s1;
//! }
//! capabilities {
//!     default no_tls;          # or tls / none / { drop_message, … }
//! }
//! attack flow_mod_suppression {
//!     start state sigma1 {
//!         rule phi1 on (c1, s1) requires no_tls {
//!             when msg.type == FLOW_MOD && msg.source == c1
//!             do { drop(msg); }
//!         }
//!     }
//! }
//! ```
//!
//! Conditions support `&& || !`, comparisons, `in [a, b, c]`, message
//! properties (`msg.type`, `msg.source`, …), type options
//! (`msg["match.nw_src"]`), and deque reads (`front(d)`, `back(d)`,
//! `len(d)`). Actions cover Table I (`drop`, `pass`, `delay`,
//! `duplicate`, `read`, `read_metadata`, `modify`, `modify_metadata`,
//! `fuzz`, `inject`), the deque operations (`append`, `prepend`,
//! `shift`, `pop`, plus `append(d, msg)` to capture the in-flight
//! message and `emit_front`/`emit_back` to replay it), and the control
//! actions (`goto`, `sleep`, `syscmd`).

mod ast;
mod compile;
mod lexer;
mod parser;
mod render;

pub use ast::Document;
pub use compile::{compile, compile_all, compile_document, CompiledAttack, CompiledDocument};
pub use lexer::DslError;
pub use parser::parse;
pub use render::{render, RenderError};
