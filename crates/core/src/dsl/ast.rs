//! Untyped syntax tree produced by the parser, resolved by the compiler.

use std::net::Ipv4Addr;

/// A parsed document: the compiler's three inputs (system model file,
/// attack model file, attack states file — paper §VI-B1) in one source,
/// any subset present.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    /// `system { … }` block, if present.
    pub system: Option<SystemBlock>,
    /// `capabilities { … }` block, if present.
    pub capabilities: Option<CapabilitiesBlock>,
    /// `attack NAME { … }` blocks.
    pub attacks: Vec<AttackBlock>,
}

/// `system { … }`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SystemBlock {
    /// Statements in order.
    pub stmts: Vec<SystemStmt>,
}

/// One endpoint of a `link` statement: a node name with an optional
/// port.
#[derive(Debug, Clone, PartialEq)]
pub struct Endpoint {
    /// Node name.
    pub node: String,
    /// Port number (switches).
    pub port: Option<u16>,
    /// Source line.
    pub line: u32,
}

/// A statement inside `system { … }`.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemStmt {
    /// `controller c1;`
    Controller {
        /// Name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// `switch s1;`
    Switch {
        /// Name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// `host h1 ip 10.0.0.1 mac "…";`
    Host {
        /// Name.
        name: String,
        /// IPv4 address.
        ip: Option<Ipv4Addr>,
        /// MAC address text.
        mac: Option<String>,
        /// Source line.
        line: u32,
    },
    /// `link h1, s1:1;`
    Link {
        /// First endpoint.
        a: Endpoint,
        /// Second endpoint.
        b: Endpoint,
    },
    /// `connection c1 -> s1;`
    Connection {
        /// Controller name.
        controller: String,
        /// Switch name.
        switch: String,
        /// Source line.
        line: u32,
    },
}

/// A capability class: `tls`, `no_tls`, `none`, or an explicit list.
#[derive(Debug, Clone, PartialEq)]
pub enum CapClass {
    /// All of Table I.
    NoTls,
    /// The TLS-restricted subset.
    Tls,
    /// Nothing.
    None,
    /// Explicit capability names.
    Explicit(Vec<String>),
}

/// `capabilities { … }`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CapabilitiesBlock {
    /// `default CLASS;`
    pub default: Option<(CapClass, u32)>,
    /// `(c1, s2): CLASS;` overrides.
    pub overrides: Vec<(String, String, CapClass, u32)>,
}

/// `attack NAME { … }`.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackBlock {
    /// Attack name.
    pub name: String,
    /// States in declaration order.
    pub states: Vec<StateDecl>,
    /// Source line.
    pub line: u32,
}

/// `state NAME { … }`, optionally marked `start`.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDecl {
    /// State name.
    pub name: String,
    /// Whether declared `start state`.
    pub start: bool,
    /// Rules.
    pub rules: Vec<RuleDecl>,
    /// Source line.
    pub line: u32,
}

/// Which connections a rule watches.
#[derive(Debug, Clone, PartialEq)]
pub enum ConnSpec {
    /// `on all`.
    All,
    /// `on (c1, s1), (c1, s2)`.
    List(Vec<(String, String)>),
}

/// `rule NAME on … requires … { when …; do { … } }`.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDecl {
    /// Rule name.
    pub name: String,
    /// Watched connections.
    pub connections: ConnSpec,
    /// Declared `γ` (inferred from the body when omitted).
    pub requires: Option<CapClass>,
    /// Trigger condition.
    pub condition: ExprAst,
    /// Action list.
    pub actions: Vec<ActionAst>,
    /// Source line.
    pub line: u32,
}

/// Untyped expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// IPv4 literal.
    Ip(Ipv4Addr),
    /// `true` / `false`.
    Bool(bool),
    /// `none`.
    NoneLit,
    /// An identifier (component name, OF type name, …), with its line
    /// for resolution errors.
    Name(String, u32),
    /// `msg.PROP`.
    MsgProp(String, u32),
    /// `msg["path"]`.
    MsgOption(String),
    /// `front(d)` / `back(d)` / `len(d)`.
    DequeFn {
        /// `front` | `back` | `len`.
        func: String,
        /// Deque name.
        deque: String,
    },
    /// `mac("…")`.
    MacLit(String, u32),
    /// A timing predicate call: `latency(A, B)`, `inter_arrival(T)`,
    /// `timing_mean(A, B, N)`, `timing_stddev(A, B, N)`,
    /// `timing_count(A, B)`, or `elapsed_in_state()`. Arity and
    /// argument kinds are validated by the compiler, which knows the
    /// message-type namespace.
    TimingFn {
        /// The called predicate name.
        func: String,
        /// Raw arguments.
        args: Vec<ExprAst>,
        /// Source line.
        line: u32,
    },
    /// Unary `!`.
    Not(Box<ExprAst>),
    /// Binary operator.
    Bin {
        /// Operator text (`&&`, `==`, `+`, …).
        op: &'static str,
        /// Left operand.
        lhs: Box<ExprAst>,
        /// Right operand.
        rhs: Box<ExprAst>,
    },
    /// `e in [a, b, c]`.
    In(Box<ExprAst>, Vec<ExprAst>),
}

/// Untyped action.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionAst {
    /// `drop(msg);`
    Drop,
    /// `pass(msg);`
    Pass,
    /// `delay(msg, expr);`
    Delay(ExprAst),
    /// `duplicate(msg);`
    Duplicate,
    /// `read(msg);`
    Read,
    /// `read_metadata(msg);`
    ReadMetadata,
    /// `modify(msg, "field", expr);`
    Modify(String, ExprAst),
    /// `modify_metadata(msg, "field", expr);`
    ModifyMetadata(String, ExprAst),
    /// `fuzz(msg, flips);`
    Fuzz(u32),
    /// `inject((c, s), to_switch|to_controller, hex("…"));`
    Inject {
        /// Connection pair.
        conn: (String, String),
        /// `true` when `to_controller`.
        to_controller: bool,
        /// Hex payload text.
        hex: String,
        /// Source line.
        line: u32,
    },
    /// `append(d, expr)` / `append(d, msg)`.
    Append {
        /// Deque name.
        deque: String,
        /// Value (`None` = the message itself).
        value: Option<ExprAst>,
    },
    /// `prepend(d, expr)` / `prepend(d, msg)`.
    Prepend {
        /// Deque name.
        deque: String,
        /// Value (`None` = the message itself).
        value: Option<ExprAst>,
    },
    /// `shift(d);`
    Shift(String),
    /// `pop(d);`
    Pop(String),
    /// `emit_front(d);`
    EmitFront(String),
    /// `emit_back(d);`
    EmitBack(String),
    /// `goto NAME;`
    Goto(String, u32),
    /// `sleep(expr);`
    Sleep(ExprAst),
    /// `syscmd(host, "cmd");`
    SysCmd {
        /// Host name.
        host: String,
        /// Command line.
        cmd: String,
        /// Source line.
        line: u32,
    },
    /// `fault("link s1-s2 down");`
    Fault {
        /// The fault spec text (environment-fault grammar).
        spec: String,
        /// Source line.
        line: u32,
    },
}
