//! Rendering compiled attacks back to DSL text — the inverse of the
//! compiler, so programmatically generated attacks (e.g. from
//! [`templates`](crate::lang::templates)) can be shared as `.atk` files.

use crate::lang::{Attack, AttackAction, DequeEnd, Expr, Property, Value};
use crate::model::{NodeRef, SystemModel};
use std::fmt::Write as _;

/// Error rendering an attack to DSL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenderError {
    /// The attack embeds a value the textual syntax cannot express
    /// (e.g. a captured message literal).
    Unrepresentable(&'static str),
    /// A component or connection index does not exist in `system`.
    UnknownComponent(String),
}

impl std::fmt::Display for RenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenderError::Unrepresentable(what) => {
                write!(f, "{what} cannot be expressed in DSL syntax")
            }
            RenderError::UnknownComponent(what) => {
                write!(f, "attack references unknown component {what}")
            }
        }
    }
}

impl std::error::Error for RenderError {}

fn render_value(v: &Value, system: &SystemModel) -> Result<String, RenderError> {
    Ok(match v {
        Value::Int(i) => i.to_string(),
        Value::Float(x) => {
            let s = format!("{x}");
            if s.contains('.') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => format!("{s:?}"),
        Value::Addr(node) => system.name_of(*node).to_string(),
        Value::MsgType(t) => t.spec_name().to_string(),
        Value::Ip(ip) => ip.to_string(),
        Value::Mac(m) => format!("mac(\"{m}\")"),
        Value::None => "none".to_string(),
        Value::Message(_) => {
            return Err(RenderError::Unrepresentable("a captured message literal"))
        }
    })
}

fn render_expr(e: &Expr, system: &SystemModel) -> Result<String, RenderError> {
    let bin = |op: &str, a: &Expr, b: &Expr| -> Result<String, RenderError> {
        Ok(format!(
            "({} {} {})",
            render_expr(a, system)?,
            op,
            render_expr(b, system)?
        ))
    };
    Ok(match e {
        Expr::Lit(v) => render_value(v, system)?,
        Expr::Prop(p) => match p {
            Property::Source => "msg.source".to_string(),
            Property::Destination => "msg.destination".to_string(),
            Property::Timestamp => "msg.timestamp".to_string(),
            Property::Length => "msg.length".to_string(),
            Property::Type => "msg.type".to_string(),
            Property::Id => "msg.id".to_string(),
            Property::Entropy => "msg.entropy".to_string(),
            Property::TypeOption(path) => format!("msg[{path:?}]"),
        },
        Expr::DequeRead { deque, end } => match end {
            DequeEnd::Front => format!("front({deque})"),
            DequeEnd::End => format!("back({deque})"),
        },
        Expr::DequeLen(d) => format!("len({d})"),
        Expr::Not(inner) => format!("!({})", render_expr(inner, system)?),
        Expr::And(a, b) => bin("&&", a, b)?,
        Expr::Or(a, b) => bin("||", a, b)?,
        Expr::Eq(a, b) => bin("==", a, b)?,
        Expr::Ne(a, b) => bin("!=", a, b)?,
        Expr::Lt(a, b) => bin("<", a, b)?,
        Expr::Le(a, b) => bin("<=", a, b)?,
        Expr::Gt(a, b) => bin(">", a, b)?,
        Expr::Ge(a, b) => bin(">=", a, b)?,
        Expr::Add(a, b) => bin("+", a, b)?,
        Expr::Sub(a, b) => bin("-", a, b)?,
        Expr::In(needle, items) => {
            let rendered: Result<Vec<String>, RenderError> =
                items.iter().map(|i| render_expr(i, system)).collect();
            format!(
                "{} in [{}]",
                render_expr(needle, system)?,
                rendered?.join(", ")
            )
        }
        // `latency(T, T)` is a compile error, so `req == resp` plus
        // `Last` can only have come from `inter_arrival(T)`.
        Expr::Timing {
            req,
            resp,
            stat,
            window,
        } => match stat {
            crate::lang::TimingStat::Last if req == resp => {
                format!("inter_arrival({})", req.spec_name())
            }
            crate::lang::TimingStat::Last => {
                format!("latency({}, {})", req.spec_name(), resp.spec_name())
            }
            crate::lang::TimingStat::Mean => format!(
                "timing_mean({}, {}, {window})",
                req.spec_name(),
                resp.spec_name()
            ),
            crate::lang::TimingStat::StdDev => format!(
                "timing_stddev({}, {}, {window})",
                req.spec_name(),
                resp.spec_name()
            ),
            crate::lang::TimingStat::Count => {
                format!("timing_count({}, {})", req.spec_name(), resp.spec_name())
            }
        },
        Expr::ElapsedInState => "elapsed_in_state()".to_string(),
    })
}

fn conn_name(
    system: &SystemModel,
    conn: crate::model::ConnectionId,
) -> Result<String, RenderError> {
    if conn.0 >= system.connection_count() {
        return Err(RenderError::UnknownComponent(format!("connection {conn}")));
    }
    let (c, s) = system.connection(conn);
    Ok(format!(
        "({}, {})",
        system.name_of(NodeRef::Controller(c)),
        system.name_of(NodeRef::Switch(s))
    ))
}

fn render_action(
    a: &AttackAction,
    attack: &Attack,
    system: &SystemModel,
) -> Result<String, RenderError> {
    Ok(match a {
        AttackAction::Drop => "drop(msg);".to_string(),
        AttackAction::Pass => "pass(msg);".to_string(),
        AttackAction::Delay(e) => format!("delay(msg, {});", render_expr(e, system)?),
        AttackAction::Duplicate => "duplicate(msg);".to_string(),
        AttackAction::ReadMetadata => "read_metadata(msg);".to_string(),
        AttackAction::Read => "read(msg);".to_string(),
        AttackAction::ModifyMetadata { field, value } => format!(
            "modify_metadata(msg, {field:?}, {});",
            render_expr(value, system)?
        ),
        AttackAction::Modify { field, value } => {
            format!("modify(msg, {field:?}, {});", render_expr(value, system)?)
        }
        AttackAction::Fuzz { flips } => format!("fuzz(msg, {flips});"),
        AttackAction::Inject {
            conn,
            to_controller,
            frame,
        } => {
            let hex: String = frame.bytes().iter().map(|b| format!("{b:02x}")).collect();
            format!(
                "inject({}, {}, hex({:?}));",
                conn_name(system, *conn)?,
                if *to_controller {
                    "to_controller"
                } else {
                    "to_switch"
                },
                hex,
            )
        }
        AttackAction::Prepend { deque, value } => {
            format!("prepend({deque}, {});", render_expr(value, system)?)
        }
        AttackAction::Append { deque, value } => {
            format!("append({deque}, {});", render_expr(value, system)?)
        }
        AttackAction::Shift(d) => format!("shift({d});"),
        AttackAction::Pop(d) => format!("pop({d});"),
        AttackAction::StoreMessage { deque, front } => {
            if *front {
                format!("prepend({deque}, msg);")
            } else {
                format!("append({deque}, msg);")
            }
        }
        AttackAction::EmitStored { deque, end } => match end {
            DequeEnd::Front => format!("emit_front({deque});"),
            DequeEnd::End => format!("emit_back({deque});"),
        },
        AttackAction::GoToState(target) => {
            let name = attack
                .states
                .get(*target)
                .map(|s| s.name.as_str())
                .ok_or_else(|| RenderError::UnknownComponent(format!("state {target}")))?;
            format!("goto {name};")
        }
        AttackAction::Sleep(e) => format!("sleep({});", render_expr(e, system)?),
        AttackAction::SysCmd { host, cmd } => format!("syscmd({host}, {cmd:?});"),
        AttackAction::Fault { spec } => format!("fault({spec:?});"),
    })
}

/// Renders `attack` as a DSL attack block that recompiles (against the
/// same `system` and a sufficiently permissive attack model) to a
/// structurally identical attack.
///
/// # Errors
///
/// Fails if the attack embeds values the textual syntax cannot express,
/// or references connections/states outside `system`/the attack.
pub fn render(attack: &Attack, system: &SystemModel) -> Result<String, RenderError> {
    let mut out = String::new();
    let _ = writeln!(out, "attack {} {{", attack.name);
    for (i, state) in attack.states.iter().enumerate() {
        let marker = if i == attack.start && attack.states.len() > 1 {
            "start "
        } else {
            ""
        };
        let _ = writeln!(out, "    {marker}state {} {{", state.name);
        for rule in &state.rules {
            let conns: Result<Vec<String>, RenderError> = rule
                .connections
                .iter()
                .map(|&c| conn_name(system, c))
                .collect();
            let caps: Vec<&str> = rule.required.iter().map(|c| c.dsl_name()).collect();
            let requires = if caps.is_empty() {
                "none".to_string()
            } else {
                format!("{{ {} }}", caps.join(", "))
            };
            let _ = writeln!(
                out,
                "        rule {} on {} requires {} {{",
                rule.name,
                conns?.join(", "),
                requires,
            );
            let _ = writeln!(
                out,
                "            when {}",
                render_expr(&rule.condition, system)?
            );
            let _ = writeln!(out, "            do {{");
            for action in &rule.actions {
                let _ = writeln!(
                    out,
                    "                {}",
                    render_action(action, attack, system)?
                );
            }
            let _ = writeln!(out, "            }}");
            let _ = writeln!(out, "        }}");
        }
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "}}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl;
    use crate::lang::templates;
    use crate::scenario;
    use attain_openflow::OfType;

    #[test]
    fn bundled_attacks_roundtrip_through_render() {
        let sc = scenario::enterprise_network();
        for (name, source) in scenario::attacks::ALL {
            let original = dsl::compile(source, &sc.system, &sc.attack_model)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .attack;
            let rendered =
                render(&original, &sc.system).unwrap_or_else(|e| panic!("{name} renders: {e}"));
            let reparsed = dsl::compile(&rendered, &sc.system, &sc.attack_model)
                .unwrap_or_else(|e| panic!("{name} rerendered source compiles: {e}\n{rendered}"))
                .attack;
            assert_eq!(reparsed, original, "{name} roundtrips\n{rendered}");
        }
    }

    #[test]
    fn template_attacks_roundtrip_through_render() {
        let sc = scenario::enterprise_network();
        let conns: Vec<_> = sc.system.connections().map(|(id, _, _)| id).collect();
        let generated = [
            templates::suppress_type(OfType::FlowMod, conns.clone()),
            templates::after_sequence(
                &[OfType::PacketIn, OfType::FlowMod],
                vec![crate::lang::AttackAction::Drop],
                conns.clone(),
            ),
            templates::after_count(
                OfType::FlowMod,
                7,
                vec![crate::lang::AttackAction::Drop],
                conns.clone(),
            ),
            templates::suppress_type_with_probability(OfType::PacketIn, 0.25, conns),
        ];
        for attack in generated {
            let rendered = render(&attack, &sc.system).expect("template renders");
            let reparsed = dsl::compile(&rendered, &sc.system, &sc.attack_model)
                .unwrap_or_else(|e| panic!("{e}\n{rendered}"))
                .attack;
            assert_eq!(reparsed, attack, "template roundtrips\n{rendered}");
        }
    }

    #[test]
    fn captured_message_literals_are_rejected() {
        use crate::lang::{AttackState, Expr, Rule, StoredMessage, Value};
        use crate::model::{CapabilitySet, ConnectionId};
        let sc = scenario::enterprise_network();
        let attack = Attack {
            name: "weird".into(),
            states: vec![AttackState {
                name: "s".into(),
                rules: vec![Rule {
                    name: "r".into(),
                    connections: vec![ConnectionId(0)],
                    required: CapabilitySet::no_tls(),
                    condition: Expr::Lit(Value::Message(StoredMessage {
                        conn: 0,
                        to_controller: true,
                        frame: attain_openflow::Frame::new(vec![]),
                    })),
                    actions: vec![],
                }],
            }],
            start: 0,
        };
        assert!(matches!(
            render(&attack, &sc.system),
            Err(RenderError::Unrepresentable(_))
        ));
    }
}
