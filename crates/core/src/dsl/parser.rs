//! Recursive-descent parser for the attack description language.

use crate::dsl::ast::*;
use crate::dsl::lexer::{lex, DslError, Tok, Token};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parses a full document (any combination of `system`, `capabilities`,
/// and `attack` blocks).
///
/// # Errors
///
/// Returns [`DslError`] with a line number on the first syntax error.
pub fn parse(source: &str) -> Result<Document, DslError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut doc = Document::default();
    loop {
        match p.peek() {
            Tok::Eof => break,
            Tok::Ident(kw) if kw == "system" => {
                if doc.system.is_some() {
                    return Err(p.err("duplicate system block"));
                }
                p.bump();
                doc.system = Some(p.system_block()?);
            }
            Tok::Ident(kw) if kw == "capabilities" => {
                if doc.capabilities.is_some() {
                    return Err(p.err("duplicate capabilities block"));
                }
                p.bump();
                doc.capabilities = Some(p.capabilities_block()?);
            }
            Tok::Ident(kw) if kw == "attack" => {
                p.bump();
                doc.attacks.push(p.attack_block()?);
            }
            other => {
                return Err(p.err(format!(
                    "expected `system`, `capabilities`, or `attack`, found {other}"
                )))
            }
        }
    }
    Ok(doc)
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> DslError {
        DslError::new(self.line(), msg)
    }

    fn expect(&mut self, want: Tok) -> Result<(), DslError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, DslError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(DslError::new(
                self.tokens[self.pos.saturating_sub(1)].line,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), DslError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{kw}`, found {other}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn string(&mut self) -> Result<String, DslError> {
        match self.bump() {
            Tok::Str(s) => Ok(s),
            other => Err(DslError::new(
                self.tokens[self.pos.saturating_sub(1)].line,
                format!("expected string literal, found {other}"),
            )),
        }
    }

    // ---- system -------------------------------------------------------

    fn system_block(&mut self) -> Result<SystemBlock, DslError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            let line = self.line();
            let kw = self.ident()?;
            match kw.as_str() {
                "controller" => {
                    let name = self.ident()?;
                    self.expect(Tok::Semi)?;
                    stmts.push(SystemStmt::Controller { name, line });
                }
                "switch" => {
                    let name = self.ident()?;
                    self.expect(Tok::Semi)?;
                    stmts.push(SystemStmt::Switch { name, line });
                }
                "host" => {
                    let name = self.ident()?;
                    let mut ip = None;
                    let mut mac = None;
                    while *self.peek() != Tok::Semi {
                        let attr = self.ident()?;
                        match attr.as_str() {
                            "ip" => match self.bump() {
                                Tok::Ip(addr) => ip = Some(addr),
                                other => {
                                    return Err(self.err(format!(
                                        "expected IPv4 literal after `ip`, found {other}"
                                    )))
                                }
                            },
                            "mac" => mac = Some(self.string()?),
                            other => {
                                return Err(self.err(format!("unknown host attribute `{other}`")))
                            }
                        }
                    }
                    self.expect(Tok::Semi)?;
                    stmts.push(SystemStmt::Host {
                        name,
                        ip,
                        mac,
                        line,
                    });
                }
                "link" => {
                    let a = self.endpoint()?;
                    self.expect(Tok::Comma)?;
                    let b = self.endpoint()?;
                    self.expect(Tok::Semi)?;
                    stmts.push(SystemStmt::Link { a, b });
                }
                "connection" => {
                    let controller = self.ident()?;
                    self.expect(Tok::Arrow)?;
                    let switch = self.ident()?;
                    self.expect(Tok::Semi)?;
                    stmts.push(SystemStmt::Connection {
                        controller,
                        switch,
                        line,
                    });
                }
                other => return Err(self.err(format!("unknown system statement `{other}`"))),
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(SystemBlock { stmts })
    }

    fn endpoint(&mut self) -> Result<Endpoint, DslError> {
        let line = self.line();
        let node = self.ident()?;
        let port = if *self.peek() == Tok::Colon {
            self.bump();
            match self.bump() {
                Tok::Int(i) if (0..=0xffff).contains(&i) => Some(i as u16),
                other => {
                    return Err(DslError::new(
                        line,
                        format!("expected port number, found {other}"),
                    ))
                }
            }
        } else {
            None
        };
        Ok(Endpoint { node, port, line })
    }

    // ---- capabilities --------------------------------------------------

    fn cap_class(&mut self) -> Result<CapClass, DslError> {
        match self.peek().clone() {
            Tok::Ident(kw) if kw == "tls" => {
                self.bump();
                Ok(CapClass::Tls)
            }
            Tok::Ident(kw) if kw == "no_tls" => {
                self.bump();
                Ok(CapClass::NoTls)
            }
            Tok::Ident(kw) if kw == "none" => {
                self.bump();
                Ok(CapClass::None)
            }
            Tok::LBrace => {
                self.bump();
                let mut names = Vec::new();
                loop {
                    names.push(self.ident()?);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(CapClass::Explicit(names))
            }
            other => Err(self.err(format!(
                "expected `tls`, `no_tls`, `none`, or `{{caps}}`, found {other}"
            ))),
        }
    }

    fn capabilities_block(&mut self) -> Result<CapabilitiesBlock, DslError> {
        self.expect(Tok::LBrace)?;
        let mut block = CapabilitiesBlock::default();
        while *self.peek() != Tok::RBrace {
            let line = self.line();
            if self.at_keyword("default") {
                self.bump();
                let class = self.cap_class()?;
                self.expect(Tok::Semi)?;
                block.default = Some((class, line));
            } else {
                self.expect(Tok::LParen)?;
                let c = self.ident()?;
                self.expect(Tok::Comma)?;
                let s = self.ident()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Colon)?;
                let class = self.cap_class()?;
                self.expect(Tok::Semi)?;
                block.overrides.push((c, s, class, line));
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(block)
    }

    // ---- attacks -------------------------------------------------------

    fn attack_block(&mut self) -> Result<AttackBlock, DslError> {
        let line = self.line();
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut states = Vec::new();
        while *self.peek() != Tok::RBrace {
            let line = self.line();
            let start = if self.at_keyword("start") {
                self.bump();
                true
            } else {
                false
            };
            self.keyword("state")?;
            let name = self.ident()?;
            self.expect(Tok::LBrace)?;
            let mut rules = Vec::new();
            while *self.peek() != Tok::RBrace {
                rules.push(self.rule_decl()?);
            }
            self.expect(Tok::RBrace)?;
            states.push(StateDecl {
                name,
                start,
                rules,
                line,
            });
        }
        self.expect(Tok::RBrace)?;
        Ok(AttackBlock { name, states, line })
    }

    fn rule_decl(&mut self) -> Result<RuleDecl, DslError> {
        let line = self.line();
        self.keyword("rule")?;
        let name = self.ident()?;
        self.keyword("on")?;
        let connections = if self.at_keyword("all") {
            self.bump();
            ConnSpec::All
        } else {
            let mut list = Vec::new();
            loop {
                self.expect(Tok::LParen)?;
                let c = self.ident()?;
                self.expect(Tok::Comma)?;
                let s = self.ident()?;
                self.expect(Tok::RParen)?;
                list.push((c, s));
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            ConnSpec::List(list)
        };
        let requires = if self.at_keyword("requires") {
            self.bump();
            Some(self.cap_class()?)
        } else {
            None
        };
        self.expect(Tok::LBrace)?;
        self.keyword("when")?;
        let condition = self.expr()?;
        if *self.peek() == Tok::Semi {
            self.bump();
        }
        self.keyword("do")?;
        self.expect(Tok::LBrace)?;
        let mut actions = Vec::new();
        while *self.peek() != Tok::RBrace {
            actions.push(self.action()?);
        }
        self.expect(Tok::RBrace)?;
        self.expect(Tok::RBrace)?;
        Ok(RuleDecl {
            name,
            connections,
            requires,
            condition,
            actions,
            line,
        })
    }

    fn action(&mut self) -> Result<ActionAst, DslError> {
        let line = self.line();
        let kw = self.ident()?;
        let action = match kw.as_str() {
            "drop" => {
                self.msg_arg0()?;
                ActionAst::Drop
            }
            "pass" => {
                self.msg_arg0()?;
                ActionAst::Pass
            }
            "duplicate" => {
                self.msg_arg0()?;
                ActionAst::Duplicate
            }
            "read" => {
                self.msg_arg0()?;
                ActionAst::Read
            }
            "read_metadata" => {
                self.msg_arg0()?;
                ActionAst::ReadMetadata
            }
            "delay" => {
                self.expect(Tok::LParen)?;
                self.keyword("msg")?;
                self.expect(Tok::Comma)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                ActionAst::Delay(e)
            }
            "modify" | "modify_metadata" => {
                self.expect(Tok::LParen)?;
                self.keyword("msg")?;
                self.expect(Tok::Comma)?;
                let field = self.string()?;
                self.expect(Tok::Comma)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                if kw == "modify" {
                    ActionAst::Modify(field, e)
                } else {
                    ActionAst::ModifyMetadata(field, e)
                }
            }
            "fuzz" => {
                self.expect(Tok::LParen)?;
                self.keyword("msg")?;
                let flips = if *self.peek() == Tok::Comma {
                    self.bump();
                    match self.bump() {
                        Tok::Int(i) if i > 0 => i as u32,
                        other => {
                            return Err(DslError::new(
                                line,
                                format!("expected positive bit-flip count, found {other}"),
                            ))
                        }
                    }
                } else {
                    8
                };
                self.expect(Tok::RParen)?;
                ActionAst::Fuzz(flips)
            }
            "inject" => {
                self.expect(Tok::LParen)?;
                self.expect(Tok::LParen)?;
                let c = self.ident()?;
                self.expect(Tok::Comma)?;
                let s = self.ident()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Comma)?;
                let dir = self.ident()?;
                let to_controller = match dir.as_str() {
                    "to_controller" => true,
                    "to_switch" => false,
                    other => {
                        return Err(DslError::new(
                            line,
                            format!("expected `to_switch` or `to_controller`, found `{other}`"),
                        ))
                    }
                };
                self.expect(Tok::Comma)?;
                self.keyword("hex")?;
                self.expect(Tok::LParen)?;
                let hex = self.string()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::RParen)?;
                ActionAst::Inject {
                    conn: (c, s),
                    to_controller,
                    hex,
                    line,
                }
            }
            "append" | "prepend" => {
                self.expect(Tok::LParen)?;
                let deque = self.ident()?;
                self.expect(Tok::Comma)?;
                let value = if self.at_keyword("msg") && *self.peek2() == Tok::RParen {
                    self.bump();
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::RParen)?;
                if kw == "append" {
                    ActionAst::Append { deque, value }
                } else {
                    ActionAst::Prepend { deque, value }
                }
            }
            "shift" => ActionAst::Shift(self.deque_arg()?),
            "pop" => ActionAst::Pop(self.deque_arg()?),
            "emit_front" => ActionAst::EmitFront(self.deque_arg()?),
            "emit_back" => ActionAst::EmitBack(self.deque_arg()?),
            "goto" => {
                let target = self.ident()?;
                self.expect(Tok::Semi)?;
                return Ok(ActionAst::Goto(target, line));
            }
            "sleep" => {
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                ActionAst::Sleep(e)
            }
            "syscmd" => {
                self.expect(Tok::LParen)?;
                let host = self.ident()?;
                self.expect(Tok::Comma)?;
                let cmd = self.string()?;
                self.expect(Tok::RParen)?;
                ActionAst::SysCmd { host, cmd, line }
            }
            "fault" => {
                self.expect(Tok::LParen)?;
                let spec = self.string()?;
                self.expect(Tok::RParen)?;
                ActionAst::Fault { spec, line }
            }
            other => return Err(DslError::new(line, format!("unknown action `{other}`"))),
        };
        self.expect(Tok::Semi)?;
        Ok(action)
    }

    fn msg_arg0(&mut self) -> Result<(), DslError> {
        self.expect(Tok::LParen)?;
        self.keyword("msg")?;
        self.expect(Tok::RParen)
    }

    fn deque_arg(&mut self) -> Result<String, DslError> {
        self.expect(Tok::LParen)?;
        let d = self.ident()?;
        self.expect(Tok::RParen)?;
        Ok(d)
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<ExprAst, DslError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<ExprAst, DslError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = ExprAst::Bin {
                op: "||",
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<ExprAst, DslError> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = ExprAst::Bin {
                op: "&&",
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<ExprAst, DslError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::Ident(kw) if kw == "in" => {
                self.bump();
                self.expect(Tok::LBracket)?;
                let mut items = Vec::new();
                loop {
                    items.push(self.add_expr()?);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RBracket)?;
                return Ok(ExprAst::In(Box::new(lhs), items));
            }
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(ExprAst::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<ExprAst, DslError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => "+",
                Tok::Minus => "-",
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = ExprAst::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<ExprAst, DslError> {
        if *self.peek() == Tok::Bang {
            self.bump();
            return Ok(ExprAst::Not(Box::new(self.unary_expr()?)));
        }
        if *self.peek() == Tok::Minus {
            let line = self.line();
            self.bump();
            return match self.unary_expr()? {
                ExprAst::Int(i) => Ok(ExprAst::Int(-i)),
                ExprAst::Float(x) => Ok(ExprAst::Float(-x)),
                _ => Err(DslError::new(
                    line,
                    "unary `-` applies to numeric literals only",
                )),
            };
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<ExprAst, DslError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(i) => Ok(ExprAst::Int(i)),
            Tok::Float(x) => Ok(ExprAst::Float(x)),
            Tok::Str(s) => Ok(ExprAst::Str(s)),
            Tok::Ip(ip) => Ok(ExprAst::Ip(ip)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => match name.as_str() {
                "true" => Ok(ExprAst::Bool(true)),
                "false" => Ok(ExprAst::Bool(false)),
                "none" => Ok(ExprAst::NoneLit),
                "msg" => match self.bump() {
                    Tok::Dot => {
                        let prop = self.ident()?;
                        Ok(ExprAst::MsgProp(prop, line))
                    }
                    Tok::LBracket => {
                        let path = self.string()?;
                        self.expect(Tok::RBracket)?;
                        Ok(ExprAst::MsgOption(path))
                    }
                    other => Err(DslError::new(
                        line,
                        format!("expected `.prop` or `[\"path\"]` after `msg`, found {other}"),
                    )),
                },
                "front" | "back" | "len" => {
                    self.expect(Tok::LParen)?;
                    let deque = self.ident()?;
                    self.expect(Tok::RParen)?;
                    Ok(ExprAst::DequeFn { func: name, deque })
                }
                "mac" => {
                    self.expect(Tok::LParen)?;
                    let text = self.string()?;
                    self.expect(Tok::RParen)?;
                    Ok(ExprAst::MacLit(text, line))
                }
                "latency" | "inter_arrival" | "elapsed_in_state" | "timing_mean"
                | "timing_stddev" | "timing_count" => {
                    self.expect(Tok::LParen)?;
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(ExprAst::TimingFn {
                        func: name,
                        args,
                        line,
                    })
                }
                _ => Ok(ExprAst::Name(name, line)),
            },
            other => Err(DslError::new(
                line,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_system_block() {
        let doc = parse(
            r#"
            system {
                controller c1;
                switch s1;
                switch s2;
                host h1 ip 10.0.0.1;
                host h2 ip 10.0.0.2 mac "00:00:00:00:00:02";
                link h1, s1:1;
                link s1:3, s2:1;
                connection c1 -> s1;
                connection c1 -> s2;
            }
            "#,
        )
        .unwrap();
        let sys = doc.system.unwrap();
        assert_eq!(sys.stmts.len(), 9);
        assert!(matches!(
            &sys.stmts[3],
            SystemStmt::Host { name, ip: Some(_), mac: None, .. } if name == "h1"
        ));
        assert!(matches!(
            &sys.stmts[6],
            SystemStmt::Link { a, b }
                if a.node == "s1" && a.port == Some(3) && b.node == "s2" && b.port == Some(1)
        ));
    }

    #[test]
    fn parses_capabilities_block() {
        let doc = parse(
            r#"
            capabilities {
                default no_tls;
                (c1, s2): tls;
                (c1, s3): { drop_message, pass_message };
            }
            "#,
        )
        .unwrap();
        let caps = doc.capabilities.unwrap();
        assert!(matches!(caps.default, Some((CapClass::NoTls, _))));
        assert_eq!(caps.overrides.len(), 2);
        assert!(matches!(&caps.overrides[1].2, CapClass::Explicit(v) if v.len() == 2));
    }

    #[test]
    fn parses_flow_mod_suppression_shape() {
        let doc = parse(
            r#"
            attack flow_mod_suppression {
                start state sigma1 {
                    rule phi1 on all requires no_tls {
                        when msg.type == FLOW_MOD && msg.source == c1;
                        do { drop(msg); }
                    }
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(doc.attacks.len(), 1);
        let atk = &doc.attacks[0];
        assert_eq!(atk.name, "flow_mod_suppression");
        assert!(atk.states[0].start);
        let rule = &atk.states[0].rules[0];
        assert_eq!(rule.connections, ConnSpec::All);
        assert!(matches!(rule.actions[0], ActionAst::Drop));
        assert!(matches!(&rule.condition, ExprAst::Bin { op: "&&", .. }));
    }

    #[test]
    fn parses_multi_state_with_goto_and_membership() {
        let doc = parse(
            r#"
            attack interruption {
                start state sigma1 {
                    rule phi1 on (c1, s2) {
                        when msg.type == HELLO
                        do { pass(msg); goto sigma2; }
                    }
                }
                state sigma2 {
                    rule phi2 on (c1, s2) {
                        when msg["match.nw_src"] == 10.0.0.2
                             && msg["match.nw_dst"] in [10.0.0.3, 10.0.0.4]
                        do { drop(msg); goto sigma3; }
                    }
                }
                state sigma3 {
                    rule phi3 on (c1, s2) {
                        when true
                        do { drop(msg); }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let atk = &doc.attacks[0];
        assert_eq!(atk.states.len(), 3);
        assert!(matches!(
            &atk.states[1].rules[0].condition,
            ExprAst::Bin { op: "&&", .. }
        ));
        assert!(matches!(
            &atk.states[0].rules[0].actions[1],
            ActionAst::Goto(t, _) if t == "sigma2"
        ));
    }

    #[test]
    fn parses_deque_counter_idiom() {
        let doc = parse(
            r#"
            attack counter {
                start state s1 {
                    rule count on all {
                        when front(counter) + 1 <= 10
                        do {
                            prepend(counter, front(counter) + 1);
                            pop(counter);
                            pass(msg);
                        }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let rule = &doc.attacks[0].states[0].rules[0];
        assert_eq!(rule.actions.len(), 3);
        assert!(matches!(
            &rule.actions[0],
            ActionAst::Prepend { deque, value: Some(_) } if deque == "counter"
        ));
    }

    #[test]
    fn parses_store_and_emit() {
        let doc = parse(
            r#"
            attack reorder {
                start state s1 {
                    rule hold on all {
                        when msg.type == PACKET_IN
                        do { append(stash, msg); drop(msg); }
                    }
                    rule release on all {
                        when len(stash) >= 3
                        do { emit_back(stash); emit_back(stash); emit_back(stash); }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let rules = &doc.attacks[0].states[0].rules;
        assert!(matches!(
            &rules[0].actions[0],
            ActionAst::Append { value: None, .. }
        ));
        assert!(matches!(&rules[1].actions[0], ActionAst::EmitBack(d) if d == "stash"));
    }

    #[test]
    fn parses_syscmd_sleep_inject() {
        let doc = parse(
            r#"
            attack misc {
                start state s1 {
                    rule r on (c1, s1) {
                        when true
                        do {
                            sleep(2.5);
                            syscmd(h1, "iperf -s");
                            inject((c1, s1), to_switch, hex("0104000800000099"));
                        }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let actions = &doc.attacks[0].states[0].rules[0].actions;
        assert!(matches!(&actions[0], ActionAst::Sleep(ExprAst::Float(f)) if *f == 2.5));
        assert!(matches!(&actions[1], ActionAst::SysCmd { host, .. } if host == "h1"));
        assert!(matches!(
            &actions[2],
            ActionAst::Inject {
                to_controller: false,
                ..
            }
        ));
    }

    #[test]
    fn parses_fault_action() {
        let doc = parse(
            r#"
            attack env {
                start state s1 {
                    rule r on (c1, s1) {
                        when true
                        do {
                            fault("link s1-s2 down");
                            fault("controller c1 crash");
                        }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let actions = &doc.attacks[0].states[0].rules[0].actions;
        assert!(matches!(&actions[0], ActionAst::Fault { spec, .. } if spec == "link s1-s2 down"));
        assert!(
            matches!(&actions[1], ActionAst::Fault { spec, .. } if spec == "controller c1 crash")
        );
        // The spec is a string literal, not bare tokens.
        assert!(parse(
            "attack x { start state s { rule r on (c1, s1) { when true do { fault(link); } } } }"
        )
        .is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = parse("attack x {\n  state s {\n    bogus\n  }\n}").unwrap_err();
        assert_eq!(err.line, 3);
        let err = parse("system { controller }").unwrap_err();
        assert!(err.message.contains("identifier"));
    }

    #[test]
    fn rejects_duplicate_blocks() {
        assert!(parse("system {} system {}")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(parse("capabilities {} capabilities {}")
            .unwrap_err()
            .message
            .contains("duplicate"));
    }

    #[test]
    fn unary_minus_on_numeric_literals() {
        let doc = parse(
            r#"
            attack neg {
                start state s {
                    rule r on all {
                        when front(d) == -1 && msg.timestamp > -2.5
                        do { pass(msg); }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let cond = &doc.attacks[0].states[0].rules[0].condition;
        let rendered = format!("{cond:?}");
        assert!(rendered.contains("Int(-1)"), "{rendered}");
        assert!(rendered.contains("Float(-2.5)"), "{rendered}");
        // Unary minus on non-literals is rejected with a line number.
        let err = parse(
            "attack x { state s { rule r on all { when -msg.length > 0 do { pass(msg); } } } }",
        )
        .unwrap_err();
        assert!(err.message.contains("numeric literals"));
    }

    #[test]
    fn precedence_binds_and_over_or_and_cmp_over_and() {
        let doc = parse(
            r#"
            attack p {
                start state s {
                    rule r on all {
                        when msg.length > 8 && msg.length < 100 || true
                        do { pass(msg); }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let cond = &doc.attacks[0].states[0].rules[0].condition;
        // Top is ||, left is &&, whose sides are comparisons.
        let ExprAst::Bin { op: "||", lhs, .. } = cond else {
            panic!("expected || at top, got {cond:?}");
        };
        assert!(matches!(&**lhs, ExprAst::Bin { op: "&&", .. }));
    }
}
