//! Payload field modification (`MODIFYMESSAGE`): decode → set field →
//! re-encode, preserving the transaction id.

use crate::lang::Value;
use attain_openflow::{Match, OfMessage, PortNo, Wildcards};

/// Error applying a payload modification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModifyError {
    /// The message bytes do not decode.
    Unparseable,
    /// The path does not exist (or is not writable) on this type.
    NoSuchField(String),
    /// The value's type does not fit the field.
    BadValue {
        /// The field.
        field: String,
        /// The offered value's kind.
        found: &'static str,
    },
}

impl std::fmt::Display for ModifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModifyError::Unparseable => write!(f, "message does not parse"),
            ModifyError::NoSuchField(p) => write!(f, "no writable field {p}"),
            ModifyError::BadValue { field, found } => {
                write!(f, "cannot write a {found} into {field}")
            }
        }
    }
}

impl std::error::Error for ModifyError {}

fn as_u16(field: &str, v: &Value) -> Result<u16, ModifyError> {
    v.as_int()
        .and_then(|i| u16::try_from(i).ok())
        .ok_or(ModifyError::BadValue {
            field: field.to_string(),
            found: v.kind(),
        })
}

fn set_match_field(m: &mut Match, field: &str, value: &Value) -> Result<(), ModifyError> {
    match field {
        "nw_src" => match value {
            Value::Ip(ip) => {
                m.nw_src = u32::from(*ip);
                m.wildcards = m.wildcards.with_nw_src_ignored_bits(0);
                Ok(())
            }
            Value::None => {
                m.wildcards = m.wildcards.with_nw_src_ignored_bits(32);
                Ok(())
            }
            other => Err(ModifyError::BadValue {
                field: "match.nw_src".into(),
                found: other.kind(),
            }),
        },
        "nw_dst" => match value {
            Value::Ip(ip) => {
                m.nw_dst = u32::from(*ip);
                m.wildcards = m.wildcards.with_nw_dst_ignored_bits(0);
                Ok(())
            }
            Value::None => {
                m.wildcards = m.wildcards.with_nw_dst_ignored_bits(32);
                Ok(())
            }
            other => Err(ModifyError::BadValue {
                field: "match.nw_dst".into(),
                found: other.kind(),
            }),
        },
        "in_port" => {
            m.in_port = PortNo(as_u16("match.in_port", value)?);
            m.wildcards = Wildcards(m.wildcards.0 & !Wildcards::IN_PORT);
            Ok(())
        }
        "dl_type" => {
            m.dl_type = as_u16("match.dl_type", value)?;
            m.wildcards = Wildcards(m.wildcards.0 & !Wildcards::DL_TYPE);
            Ok(())
        }
        other => Err(ModifyError::NoSuchField(format!("match.{other}"))),
    }
}

/// Rewrites `field` on the encoded message `bytes`, returning new bytes
/// with the original xid.
///
/// Writable fields:
///
/// * `FLOW_MOD`: `idle_timeout`, `hard_timeout`, `priority`, `cookie`,
///   `buffer_id`, `out_port`, `match.nw_src`, `match.nw_dst`,
///   `match.in_port`, `match.dl_type`, `actions.clear` (any value —
///   empties the action list, turning the flow into a drop);
/// * `PACKET_IN` / `PACKET_OUT`: `in_port`, `buffer_id`;
/// * `ERROR`: `code`.
///
/// # Errors
///
/// Returns [`ModifyError`] when the bytes do not parse, the field is
/// unknown, or the value does not fit.
pub fn set_field(bytes: &[u8], field: &str, value: &Value) -> Result<Vec<u8>, ModifyError> {
    let (mut msg, xid) = OfMessage::decode(bytes).map_err(|_| ModifyError::Unparseable)?;
    let (head, rest) = match field.split_once('.') {
        Some((h, r)) => (h, Some(r)),
        None => (field, None),
    };
    match &mut msg {
        OfMessage::FlowMod(fm) => match (head, rest) {
            ("match", Some(sub)) => set_match_field(&mut fm.r#match, sub, value)?,
            ("idle_timeout", None) => fm.idle_timeout = as_u16(field, value)?,
            ("hard_timeout", None) => fm.hard_timeout = as_u16(field, value)?,
            ("priority", None) => fm.priority = as_u16(field, value)?,
            ("cookie", None) => {
                fm.cookie = value.as_int().ok_or(ModifyError::BadValue {
                    field: field.to_string(),
                    found: value.kind(),
                })? as u64
            }
            ("out_port", None) => fm.out_port = PortNo(as_u16(field, value)?),
            ("buffer_id", None) => {
                fm.buffer_id = match value {
                    Value::None => None,
                    v => Some(v.as_int().ok_or(ModifyError::BadValue {
                        field: field.to_string(),
                        found: v.kind(),
                    })? as u32),
                }
            }
            ("actions", Some("clear")) => fm.actions.clear(),
            _ => return Err(ModifyError::NoSuchField(field.to_string())),
        },
        OfMessage::PacketIn(pi) => match (head, rest) {
            ("in_port", None) => pi.in_port = PortNo(as_u16(field, value)?),
            ("buffer_id", None) => {
                pi.buffer_id = match value {
                    Value::None => None,
                    v => Some(v.as_int().ok_or(ModifyError::BadValue {
                        field: field.to_string(),
                        found: v.kind(),
                    })? as u32),
                }
            }
            _ => return Err(ModifyError::NoSuchField(field.to_string())),
        },
        OfMessage::PacketOut(po) => match (head, rest) {
            ("in_port", None) => po.in_port = PortNo(as_u16(field, value)?),
            ("buffer_id", None) => {
                po.buffer_id = match value {
                    Value::None => None,
                    v => Some(v.as_int().ok_or(ModifyError::BadValue {
                        field: field.to_string(),
                        found: v.kind(),
                    })? as u32),
                }
            }
            ("actions", Some("clear")) => po.actions.clear(),
            _ => return Err(ModifyError::NoSuchField(field.to_string())),
        },
        OfMessage::Error(e) => match (head, rest) {
            ("code", None) => e.code = as_u16(field, value)?,
            _ => return Err(ModifyError::NoSuchField(field.to_string())),
        },
        _ => return Err(ModifyError::NoSuchField(field.to_string())),
    }
    Ok(msg.encode(xid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_openflow::{Action, FlowMod};

    fn flow_mod_bytes() -> Vec<u8> {
        OfMessage::FlowMod(FlowMod {
            idle_timeout: 5,
            ..FlowMod::add(
                Match::all(),
                vec![Action::Output {
                    port: PortNo(2),
                    max_len: 0,
                }],
            )
        })
        .encode(0x77)
    }

    #[test]
    fn rewrite_idle_timeout_preserves_xid() {
        let bytes = flow_mod_bytes();
        let out = set_field(&bytes, "idle_timeout", &Value::Int(0)).unwrap();
        let (msg, xid) = OfMessage::decode(&out).unwrap();
        assert_eq!(xid, 0x77);
        let OfMessage::FlowMod(fm) = msg else {
            panic!()
        };
        assert_eq!(fm.idle_timeout, 0);
    }

    #[test]
    fn rewrite_match_nw_dst_clears_wildcard() {
        let bytes = flow_mod_bytes();
        let out = set_field(
            &bytes,
            "match.nw_dst",
            &Value::Ip("10.0.0.9".parse().unwrap()),
        )
        .unwrap();
        let (msg, _) = OfMessage::decode(&out).unwrap();
        let OfMessage::FlowMod(fm) = msg else {
            panic!()
        };
        assert_eq!(fm.r#match.nw_dst_addr(), Some("10.0.0.9".parse().unwrap()));
    }

    #[test]
    fn clearing_actions_turns_flow_into_drop() {
        let bytes = flow_mod_bytes();
        let out = set_field(&bytes, "actions.clear", &Value::Bool(true)).unwrap();
        let (msg, _) = OfMessage::decode(&out).unwrap();
        let OfMessage::FlowMod(fm) = msg else {
            panic!()
        };
        assert!(fm.actions.is_empty());
    }

    #[test]
    fn buffer_id_none_detaches_buffer() {
        let mut fm = FlowMod::add(Match::all(), vec![]);
        fm.buffer_id = Some(42);
        let bytes = OfMessage::FlowMod(fm).encode(1);
        let out = set_field(&bytes, "buffer_id", &Value::None).unwrap();
        let (msg, _) = OfMessage::decode(&out).unwrap();
        let OfMessage::FlowMod(fm) = msg else {
            panic!()
        };
        assert_eq!(fm.buffer_id, None);
    }

    #[test]
    fn errors_are_typed() {
        let bytes = flow_mod_bytes();
        assert_eq!(
            set_field(&bytes, "no_such", &Value::Int(1)).unwrap_err(),
            ModifyError::NoSuchField("no_such".into())
        );
        assert!(matches!(
            set_field(&bytes, "priority", &Value::Str("hi".into())).unwrap_err(),
            ModifyError::BadValue { .. }
        ));
        assert_eq!(
            set_field(&[1, 2, 3], "priority", &Value::Int(1)).unwrap_err(),
            ModifyError::Unparseable
        );
    }
}
