//! The attack executor: the paper's Algorithm 1, with `SLEEP` holding
//! and deterministic fuzzing.

use crate::exec::dispatch::CompiledRuleset;
use crate::exec::log::{InjectionLog, LogKind};
use crate::exec::modifier;
use crate::lang::Attack;
use crate::lang::{
    AttackAction, DequeEnd, DequeStore, MessageView, StoredMessage, TimingPlan, TimingStore, Value,
};
use crate::model::AttackModel;
use crate::model::{Capability, CapabilitySet};
use crate::model::{ConnectionId, NodeRef, SystemModel};
use attain_openflow::Frame;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// A message entering the proxy, as presented to the executor.
///
/// Holds a shared [`Frame`]; the executor's pass-through path forwards
/// the same allocation it was handed.
#[derive(Debug, Clone)]
pub struct InjectorInput {
    /// The connection the message is on.
    pub conn: ConnectionId,
    /// `true` when travelling switch→controller.
    pub to_controller: bool,
    /// Encoded message.
    pub frame: Frame,
    /// Arrival time at the proxy in nanoseconds.
    pub now_ns: u64,
}

/// A message the executor wants delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutMessage {
    /// Target connection.
    pub conn: ConnectionId,
    /// `true` to deliver toward the controller.
    pub to_controller: bool,
    /// Encoded message, shared with the input frame unless a mutating
    /// action (`MODIFYMESSAGE`/`FUZZMESSAGE`) rewrote it copy-on-write.
    pub frame: Frame,
    /// Extra delay before delivery, in nanoseconds.
    pub extra_delay_ns: u64,
    /// Executor-assigned emission sequence number, strictly increasing
    /// across the executor's lifetime. Deployments that apply
    /// `extra_delay_ns` asynchronously (the TCP proxy's timer heap) use
    /// it to keep equal-deadline deliveries in executor order.
    pub seq: u64,
    /// Whether this entry derives from the triggering input message
    /// (`DROPMESSAGE` removes derived entries; injections survive).
    derived: bool,
}

/// Everything one executor step produced.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ExecOutput {
    /// Messages to deliver.
    pub deliveries: Vec<OutMessage>,
    /// `SYSCMD` commands, as `(host, command)` pairs.
    pub commands: Vec<(String, String)>,
    /// `FAULT` environment-fault specs, in issue order.
    pub faults: Vec<String>,
    /// Absolute time the executor wants a wakeup at (for `SLEEP`).
    pub wakeup_ns: Option<u64>,
}

/// Why an executor could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutorError {
    /// The attack's state structure is invalid.
    Attack(crate::lang::AttackError),
    /// A rule declares fewer capabilities than its condition/actions
    /// exercise.
    RuleUnderDeclared {
        /// Rule name.
        rule: String,
        /// Missing capabilities.
        missing: Vec<Capability>,
    },
    /// A rule requires capabilities the attack model does not grant on
    /// one of its connections.
    NotGranted {
        /// Rule name.
        rule: String,
        /// The connection.
        conn: ConnectionId,
        /// Missing capabilities.
        missing: Vec<Capability>,
    },
    /// A rule names a connection outside the system model's `N_C`.
    UnknownConnection {
        /// Rule name.
        rule: String,
        /// The bad connection index.
        conn: ConnectionId,
    },
}

impl fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorError::Attack(e) => write!(f, "{e}"),
            ExecutorError::RuleUnderDeclared { rule, missing } => write!(
                f,
                "rule {rule} exercises undeclared capabilities {missing:?}"
            ),
            ExecutorError::NotGranted {
                rule,
                conn,
                missing,
            } => write!(
                f,
                "rule {rule} requires {missing:?} on {conn}, which the attack model does not grant"
            ),
            ExecutorError::UnknownConnection { rule, conn } => {
                write!(f, "rule {rule} names unknown connection {conn}")
            }
        }
    }
}

impl std::error::Error for ExecutorError {}

/// Validates an attack against a system and attack model (the compiler's
/// §VI-B1 checks, reusable without the DSL).
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_attack(
    system: &SystemModel,
    model: &AttackModel,
    attack: &Attack,
) -> Result<(), ExecutorError> {
    attack.validate().map_err(ExecutorError::Attack)?;
    for state in &attack.states {
        for rule in &state.rules {
            let exercised = rule.exercised_capabilities();
            if !rule.required.is_superset_of(&exercised) {
                return Err(ExecutorError::RuleUnderDeclared {
                    rule: rule.name.clone(),
                    missing: rule.required.missing_from(&exercised),
                });
            }
            for &conn in &rule.connections {
                if conn.0 >= system.connection_count() {
                    return Err(ExecutorError::UnknownConnection {
                        rule: rule.name.clone(),
                        conn,
                    });
                }
                let granted = model.get(conn);
                if !granted.is_superset_of(&rule.required) {
                    return Err(ExecutorError::NotGranted {
                        rule: rule.name.clone(),
                        conn,
                        missing: granted.missing_from(&rule.required),
                    });
                }
            }
        }
    }
    Ok(())
}

/// SplitMix64-style hash of `(seed, id)` mapped to `[0, 1)`: the
/// deterministic randomness behind [`Property::Entropy`](crate::lang::Property::Entropy).
fn entropy_for(seed: u64, id: u64) -> f64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

struct HeldMessage {
    conn: ConnectionId,
    to_controller: bool,
    frame: Frame,
    id: u64,
}

/// How the executor finds the rules to evaluate for a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Evaluate every rule of the current state in order — the paper's
    /// literal Algorithm 1 loop, kept as the reference semantics (and
    /// the differential-test oracle).
    Scan,
    /// Use the [`CompiledRuleset`] to narrow each message to its
    /// candidate rules first. Produces bit-for-bit identical output;
    /// the `dispatch_audit` feature checks that claim on every message.
    #[default]
    Compiled,
}

/// The runtime attack executor (paper Algorithm 1 and §VI-B2).
pub struct AttackExecutor {
    system: SystemModel,
    model: AttackModel,
    attack: Attack,
    /// Per-state rule lists, shared so the hot path avoids cloning rule
    /// bodies on every message.
    rules_by_state: Vec<Arc<[crate::lang::Rule]>>,
    /// The compiled per-state dispatch indexes (also the O(1)
    /// connection-scope source for the scan path).
    ruleset: CompiledRuleset,
    mode: DispatchMode,
    /// Reused candidate-index buffer: dispatch allocates nothing in
    /// steady state.
    cand_scratch: Vec<u32>,
    /// Reused bitmask accumulator for candidate extraction.
    mask_scratch: Vec<u64>,
    current: usize,
    deques: DequeStore,
    /// Per-connection timing state driving the DSL's timing predicates.
    /// Passive (and free) when the attack names no timing pairs.
    timing: TimingStore,
    sleep_until_ns: Option<u64>,
    held: VecDeque<HeldMessage>,
    log: InjectionLog,
    next_msg_id: u64,
    /// Next value of [`OutMessage::seq`]; stamped onto every delivery in
    /// emission order.
    next_delivery_seq: u64,
    fuzz_rng: SmallRng,
    /// Seed for the per-message entropy property.
    entropy_seed: u64,
}

impl fmt::Debug for AttackExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AttackExecutor")
            .field("attack", &self.attack.name)
            .field("current_state", &self.current)
            .field("held", &self.held.len())
            .finish()
    }
}

impl AttackExecutor {
    /// Builds an executor, validating the attack first (line 2 of
    /// Algorithm 1 initializes `σ_current ← σ_start`).
    ///
    /// # Errors
    ///
    /// Returns [`ExecutorError`] if validation fails.
    pub fn new(
        system: SystemModel,
        model: AttackModel,
        attack: Attack,
    ) -> Result<AttackExecutor, ExecutorError> {
        validate_attack(&system, &model, &attack)?;
        let start = attack.start;
        let rules_by_state = attack
            .states
            .iter()
            .map(|s| Arc::from(s.rules.as_slice()))
            .collect();
        let ruleset = CompiledRuleset::compile(&attack, system.connection_count());
        let timing = TimingStore::new(TimingPlan::from_attack(&attack));
        Ok(AttackExecutor {
            system,
            model,
            attack,
            rules_by_state,
            ruleset,
            mode: DispatchMode::default(),
            cand_scratch: Vec::new(),
            mask_scratch: Vec::new(),
            current: start,
            deques: DequeStore::new(),
            timing,
            sleep_until_ns: None,
            held: VecDeque::new(),
            log: InjectionLog::new(),
            next_msg_id: 1,
            next_delivery_seq: 0,
            fuzz_rng: SmallRng::seed_from_u64(0x00A7_7A1D),
            entropy_seed: 0x05EE_D0FA_77A1,
        })
    }

    /// Index of the current attack state.
    pub fn current_state(&self) -> usize {
        self.current
    }

    /// Name of the current attack state.
    pub fn current_state_name(&self) -> &str {
        &self.attack.states[self.current].name
    }

    /// The injection log.
    pub fn log(&self) -> &InjectionLog {
        &self.log
    }

    /// The attack under execution.
    pub fn attack(&self) -> &Attack {
        &self.attack
    }

    /// The deque store (for tests and monitors).
    pub fn deques(&self) -> &DequeStore {
        &self.deques
    }

    /// The per-connection timing state (for tests and monitors).
    pub fn timing(&self) -> &TimingStore {
        &self.timing
    }

    /// Releases all per-connection executor state for `conn`: timing
    /// rings, arrival stamps, and any messages held for it by `SLEEP`.
    /// Deployments call this on connection teardown (the TCP proxy's
    /// generation-epoch bump) so a reconnect never inherits stale
    /// samples.
    pub fn release_connection(&mut self, conn: ConnectionId) {
        self.timing.release_connection(conn);
        self.held.retain(|h| h.conn != conn);
    }

    /// Switches the rule dispatch strategy (builder-style; the default
    /// is [`DispatchMode::Compiled`]).
    pub fn with_dispatch_mode(mut self, mode: DispatchMode) -> AttackExecutor {
        self.mode = mode;
        self
    }

    /// The active dispatch strategy.
    pub fn dispatch_mode(&self) -> DispatchMode {
        self.mode
    }

    /// The compiled dispatch structure (for introspection and benches).
    pub fn ruleset(&self) -> &CompiledRuleset {
        &self.ruleset
    }

    fn endpoints(&self, conn: ConnectionId, to_controller: bool) -> (NodeRef, NodeRef) {
        let (c, s) = self.system.connection(conn);
        if to_controller {
            (NodeRef::Switch(s), NodeRef::Controller(c))
        } else {
            (NodeRef::Controller(c), NodeRef::Switch(s))
        }
    }

    /// Algorithm 1, lines 4–21: processes one asynchronous incoming
    /// message and returns the outgoing message list plus side effects.
    pub fn on_message(&mut self, input: InjectorInput) -> ExecOutput {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        // SLEEP semantics: messages arriving while asleep are held and
        // replayed, in order, at wake time. Holding is a refcount bump.
        if let Some(until) = self.sleep_until_ns {
            if input.now_ns < until {
                self.held.push_back(HeldMessage {
                    conn: input.conn,
                    to_controller: input.to_controller,
                    frame: input.frame,
                    id,
                });
                self.log.push(input.now_ns, LogKind::Held { msg_id: id });
                return ExecOutput {
                    wakeup_ns: Some(until),
                    ..ExecOutput::default()
                };
            }
            self.sleep_until_ns = None;
        }
        self.process(
            input.conn,
            input.to_controller,
            &input.frame,
            input.now_ns,
            id,
        )
    }

    /// A requested wakeup fired: drains held messages (unless a new
    /// `SLEEP` interrupts the drain).
    pub fn on_wakeup(&mut self, now_ns: u64) -> ExecOutput {
        let mut total = ExecOutput::default();
        if let Some(until) = self.sleep_until_ns {
            if now_ns < until {
                total.wakeup_ns = Some(until);
                return total;
            }
            self.sleep_until_ns = None;
        }
        while let Some(held) = self.held.pop_front() {
            let out = self.process(held.conn, held.to_controller, &held.frame, now_ns, held.id);
            total.deliveries.extend(out.deliveries);
            total.commands.extend(out.commands);
            total.faults.extend(out.faults);
            if let Some(w) = out.wakeup_ns {
                // A held message triggered another SLEEP: stop draining.
                total.wakeup_ns = Some(w);
                break;
            }
        }
        total
    }

    fn process(
        &mut self,
        conn: ConnectionId,
        to_controller: bool,
        frame: &Frame,
        now_ns: u64,
        id: u64,
    ) -> ExecOutput {
        // Line 5: msg_out ← [msg_in] — a shared handle, not a copy.
        let mut out = vec![OutMessage {
            conn,
            to_controller,
            frame: frame.clone(),
            extra_delay_ns: 0,
            seq: 0,
            derived: true,
        }];
        let mut commands = Vec::new();
        let mut faults = Vec::new();
        let mut wakeup = None;

        let (source, destination) = self.endpoints(conn, to_controller);

        // Timing observation happens before rule evaluation, so a rule
        // firing on a response type sees the sample this very message
        // closes. Held (SLEEP) messages are observed at replay time
        // with the wake-time clock — deterministic in both deployments.
        // Undecodable frames carry no type and are not observed.
        if !self.timing.is_passive() {
            if let Some(t) = frame.of_type() {
                self.timing.observe(conn, t, now_ns);
            }
        }

        // Line 6: σ_previous ← σ_current — rules are evaluated against
        // the state as it was when the message arrived, even if an
        // earlier rule in the same pass transitions.
        let previous = self.current;
        // Lines 7–18: evaluate the rules of σ_previous. The compiled
        // path narrows the pass to the candidate rules first; candidate
        // order is rule order, so both paths evaluate the same rules in
        // the same sequence.
        let rules = Arc::clone(&self.rules_by_state[previous]);
        match self.mode {
            DispatchMode::Scan => {
                for (i, rule) in rules.iter().enumerate() {
                    if !self.ruleset.state(previous).rule_watches(i, conn) {
                        continue;
                    }
                    self.eval_rule(
                        rule,
                        previous,
                        conn,
                        source,
                        destination,
                        frame,
                        now_ns,
                        id,
                        &mut out,
                        &mut commands,
                        &mut faults,
                        &mut wakeup,
                    );
                }
            }
            DispatchMode::Compiled => {
                // Guard extraction reads act on behalf of rules that
                // were validated to hold the needed capabilities, so
                // the extraction view carries the full set Γ.
                let extract_view = MessageView {
                    conn,
                    source,
                    destination,
                    timestamp_ns: now_ns,
                    id,
                    frame,
                    granted: CapabilitySet::no_tls(),
                    entropy: entropy_for(self.entropy_seed, id),
                };
                let mut cands = std::mem::take(&mut self.cand_scratch);
                let mut mask = std::mem::take(&mut self.mask_scratch);
                self.ruleset
                    .state(previous)
                    .candidates(conn, &extract_view, &mut cands, &mut mask);
                #[cfg(feature = "dispatch_audit")]
                self.audit_candidates(
                    previous,
                    conn,
                    &rules,
                    &cands,
                    source,
                    destination,
                    frame,
                    now_ns,
                    id,
                );
                for &i in &cands {
                    self.eval_rule(
                        &rules[i as usize],
                        previous,
                        conn,
                        source,
                        destination,
                        frame,
                        now_ns,
                        id,
                        &mut out,
                        &mut commands,
                        &mut faults,
                        &mut wakeup,
                    );
                }
                self.cand_scratch = cands;
                self.mask_scratch = mask;
            }
        }

        // Stamp the surviving list in emission order: the sequence an
        // asynchronous deployment must preserve among equal deadlines.
        for m in &mut out {
            m.seq = self.next_delivery_seq;
            self.next_delivery_seq += 1;
        }
        ExecOutput {
            deliveries: out,
            commands,
            faults,
            wakeup_ns: wakeup,
        }
    }

    /// Evaluates one rule against one message and runs its actions on a
    /// match — the body of Algorithm 1's per-rule loop, shared by both
    /// dispatch paths.
    #[allow(clippy::too_many_arguments)]
    fn eval_rule(
        &mut self,
        rule: &crate::lang::Rule,
        previous: usize,
        conn: ConnectionId,
        source: NodeRef,
        destination: NodeRef,
        frame: &Frame,
        now_ns: u64,
        id: u64,
        out: &mut Vec<OutMessage>,
        commands: &mut Vec<(String, String)>,
        faults: &mut Vec<String>,
        wakeup: &mut Option<u64>,
    ) {
        let view = MessageView {
            conn,
            source,
            destination,
            timestamp_ns: now_ns,
            id,
            frame,
            granted: rule.required,
            entropy: entropy_for(self.entropy_seed, id),
        };
        match rule
            .condition
            .eval_with(&view, &self.deques, self.timing.ctx(conn, now_ns))
        {
            Ok(v) if v.truthy() => {}
            Ok(_) => return,
            Err(e) => {
                self.log.push(
                    now_ns,
                    LogKind::ActionError {
                        rule: rule.name.clone(),
                        error: e.to_string(),
                    },
                );
                return;
            }
        }
        self.log.push(
            now_ns,
            LogKind::RuleMatched {
                state: previous,
                rule: rule.name.clone(),
                msg_id: id,
            },
        );
        // Lines 10–16: run the rule's actions.
        for action in &rule.actions {
            // Defense in depth: the compiler already checked this.
            let needed = action.required_capabilities();
            let granted = self.model.get(conn);
            if !granted.is_superset_of(&needed) {
                if let Some(missing) = granted.missing_from(&needed).first() {
                    self.log.push(
                        now_ns,
                        LogKind::CapabilityViolation {
                            rule: rule.name.clone(),
                            missing: *missing,
                        },
                    );
                }
                continue;
            }
            if let AttackAction::GoToState(target) = action {
                if *target != self.current {
                    self.log.push(
                        now_ns,
                        LogKind::Transition {
                            from: self.current,
                            to: *target,
                        },
                    );
                    self.current = *target;
                    // `elapsed_in_state()` restarts on every transition
                    // to a different state.
                    self.timing.enter_state(now_ns);
                }
                continue;
            }
            self.apply_action(action, rule, &view, out, commands, faults, wakeup, now_ns);
        }
    }

    /// `dispatch_audit` builds only: re-evaluates every rule the
    /// dispatcher excluded, panicking unless the reference scan would
    /// have skipped it silently too (condition falsy, nothing logged).
    #[cfg(feature = "dispatch_audit")]
    #[allow(clippy::too_many_arguments)]
    fn audit_candidates(
        &self,
        previous: usize,
        conn: ConnectionId,
        rules: &[crate::lang::Rule],
        candidates: &[u32],
        source: NodeRef,
        destination: NodeRef,
        frame: &Frame,
        now_ns: u64,
        id: u64,
    ) {
        let state = self.ruleset.state(previous);
        for (i, rule) in rules.iter().enumerate() {
            let is_candidate = candidates.contains(&(i as u32));
            if !state.rule_watches(i, conn) {
                assert!(
                    !is_candidate,
                    "dispatch_audit: rule {} (state {previous}) is a candidate \
                     on {conn} outside its connection scope",
                    rule.name,
                );
                continue;
            }
            if is_candidate {
                continue;
            }
            let view = MessageView {
                conn,
                source,
                destination,
                timestamp_ns: now_ns,
                id,
                frame,
                granted: rule.required,
                entropy: entropy_for(self.entropy_seed, id),
            };
            // Exclusion is sound only when the anchor conjunct is falsy,
            // which short-circuits the scan before any deque read — so
            // evaluating here, before this pass's actions, is exact.
            match rule
                .condition
                .eval_with(&view, &self.deques, self.timing.ctx(conn, now_ns))
            {
                Ok(v) if !v.truthy() => {}
                other => panic!(
                    "dispatch_audit: rule {} (state {previous}, msg {id} at {now_ns}ns) \
                     was excluded by the dispatcher but the scan evaluates it to {other:?}",
                    rule.name,
                ),
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_action(
        &mut self,
        action: &AttackAction,
        rule: &crate::lang::Rule,
        view: &MessageView<'_>,
        out: &mut Vec<OutMessage>,
        commands: &mut Vec<(String, String)>,
        faults: &mut Vec<String>,
        wakeup: &mut Option<u64>,
        now_ns: u64,
    ) {
        let log_err = |log: &mut InjectionLog, e: String| {
            log.push(
                now_ns,
                LogKind::ActionError {
                    rule: rule.name.clone(),
                    error: e,
                },
            );
        };
        match action {
            AttackAction::GoToState(_) => unreachable!("handled by caller"),
            AttackAction::Drop => out.retain(|m| !m.derived),
            AttackAction::Pass => {
                if !out.iter().any(|m| m.derived) {
                    out.push(OutMessage {
                        conn: view.conn,
                        to_controller: matches!(view.source, NodeRef::Switch(_)),
                        frame: view.frame.clone(),
                        extra_delay_ns: 0,
                        seq: 0,
                        derived: true,
                    });
                }
            }
            AttackAction::Delay(e) => {
                match e.eval_with(view, &self.deques, self.timing.ctx(view.conn, now_ns)) {
                    Ok(v) => match v.as_float() {
                        Some(secs) if secs >= 0.0 => {
                            let ns = (secs * 1e9) as u64;
                            for m in out.iter_mut().filter(|m| m.derived) {
                                m.extra_delay_ns += ns;
                            }
                        }
                        _ => log_err(&mut self.log, format!("delay of non-time value {v}")),
                    },
                    Err(e) => log_err(&mut self.log, e.to_string()),
                }
            }
            AttackAction::Duplicate => {
                // Cloning an OutMessage shares its frame: DUPLICATEMESSAGE
                // is a refcount bump, not a buffer copy.
                let template =
                    out.iter()
                        .rev()
                        .find(|m| m.derived)
                        .cloned()
                        .unwrap_or(OutMessage {
                            conn: view.conn,
                            to_controller: matches!(view.source, NodeRef::Switch(_)),
                            frame: view.frame.clone(),
                            extra_delay_ns: 0,
                            seq: 0,
                            derived: true,
                        });
                out.push(template);
            }
            AttackAction::ReadMetadata => {
                let summary = format!(
                    "conn={} {}→{} len={} t={:.6}s",
                    view.conn.0,
                    self.system.name_of(view.source),
                    self.system.name_of(view.destination),
                    view.frame.len(),
                    view.timestamp_ns as f64 / 1e9,
                );
                self.log.push(
                    now_ns,
                    LogKind::MetadataRecord {
                        msg_id: view.id,
                        summary,
                    },
                );
            }
            AttackAction::Read => {
                let summary = match view.frame.message() {
                    Some(m) => {
                        let s = format!("{m:?}");
                        s.chars().take(200).collect()
                    }
                    None => "<unparseable>".to_string(),
                };
                self.log.push(
                    now_ns,
                    LogKind::PayloadRecord {
                        msg_id: view.id,
                        summary,
                    },
                );
            }
            AttackAction::ModifyMetadata { field, value } => {
                if field != "destination" {
                    log_err(&mut self.log, format!("unsupported metadata field {field}"));
                    return;
                }
                let v =
                    match value.eval_with(view, &self.deques, self.timing.ctx(view.conn, now_ns)) {
                        Ok(v) => v,
                        Err(e) => return log_err(&mut self.log, e.to_string()),
                    };
                let Value::Addr(target) = v else {
                    return log_err(
                        &mut self.log,
                        format!("destination must be a component, got {v}"),
                    );
                };
                // Redirect derived copies onto a connection whose far end
                // is the named component.
                let redirect = self
                    .system
                    .connections()
                    .find_map(|(id, c, s)| match target {
                        NodeRef::Controller(tc) if tc == c => Some((id, true)),
                        NodeRef::Switch(ts) if ts == s => Some((id, false)),
                        _ => None,
                    });
                match redirect {
                    Some((conn, to_controller)) => {
                        for m in out.iter_mut().filter(|m| m.derived) {
                            m.conn = conn;
                            m.to_controller = to_controller;
                        }
                    }
                    None => log_err(
                        &mut self.log,
                        format!(
                            "no control connection reaches {}",
                            self.system.name_of(target)
                        ),
                    ),
                }
            }
            AttackAction::Fuzz { flips } => {
                // Copy-on-write: the shared frame stays intact; the
                // mutated copy becomes a fresh frame.
                for m in out.iter_mut().filter(|m| m.derived) {
                    if m.frame.is_empty() {
                        continue;
                    }
                    let mut bytes = m.frame.to_vec();
                    for _ in 0..*flips {
                        let bit = self.fuzz_rng.gen_range(0..bytes.len() * 8);
                        bytes[bit / 8] ^= 1 << (bit % 8);
                    }
                    m.frame = Frame::new(bytes);
                }
            }
            AttackAction::Modify { field, value } => {
                let v =
                    match value.eval_with(view, &self.deques, self.timing.ctx(view.conn, now_ns)) {
                        Ok(v) => v,
                        Err(e) => return log_err(&mut self.log, e.to_string()),
                    };
                // Copy-on-write, as for FUZZMESSAGE.
                for m in out.iter_mut().filter(|m| m.derived) {
                    match modifier::set_field(m.frame.bytes(), field, &v) {
                        Ok(b) => m.frame = Frame::new(b),
                        Err(e) => log_err(&mut self.log, e.to_string()),
                    }
                }
            }
            AttackAction::Inject {
                conn,
                to_controller,
                frame,
            } => {
                out.push(OutMessage {
                    conn: *conn,
                    to_controller: *to_controller,
                    frame: frame.clone(),
                    extra_delay_ns: 0,
                    seq: 0,
                    derived: false,
                });
                self.log.push(now_ns, LogKind::Injected { conn: conn.0 });
            }
            AttackAction::Prepend { deque, value } => {
                match value.eval_with(view, &self.deques, self.timing.ctx(view.conn, now_ns)) {
                    Ok(v) => self.deques.prepend(deque, v),
                    Err(e) => log_err(&mut self.log, e.to_string()),
                }
            }
            AttackAction::Append { deque, value } => {
                match value.eval_with(view, &self.deques, self.timing.ctx(view.conn, now_ns)) {
                    Ok(v) => self.deques.append(deque, v),
                    Err(e) => log_err(&mut self.log, e.to_string()),
                }
            }
            AttackAction::Shift(d) => {
                self.deques.shift(d);
            }
            AttackAction::Pop(d) => {
                self.deques.pop(d);
            }
            AttackAction::StoreMessage { deque, front } => {
                let stored = Value::Message(StoredMessage {
                    conn: view.conn.0,
                    to_controller: matches!(view.source, NodeRef::Switch(_)),
                    frame: view.frame.clone(),
                });
                if *front {
                    self.deques.prepend(deque, stored);
                } else {
                    self.deques.append(deque, stored);
                }
            }
            AttackAction::EmitStored { deque, end } => {
                let v = match end {
                    DequeEnd::Front => self.deques.shift(deque),
                    DequeEnd::End => self.deques.pop(deque),
                };
                match v {
                    Value::Message(m) => out.push(OutMessage {
                        conn: ConnectionId(m.conn),
                        to_controller: m.to_controller,
                        frame: m.frame,
                        extra_delay_ns: 0,
                        seq: 0,
                        derived: false,
                    }),
                    Value::None => {}
                    other => log_err(
                        &mut self.log,
                        format!(
                            "deque {deque} held a {} where a message was expected",
                            other.kind()
                        ),
                    ),
                }
            }
            AttackAction::Sleep(e) => {
                match e.eval_with(view, &self.deques, self.timing.ctx(view.conn, now_ns)) {
                    Ok(v) => match v.as_float() {
                        Some(secs) if secs >= 0.0 => {
                            let until = now_ns + (secs * 1e9) as u64;
                            self.sleep_until_ns = Some(until);
                            *wakeup = Some(until);
                            self.log
                                .push(now_ns, LogKind::SleepStart { until_ns: until });
                        }
                        _ => log_err(&mut self.log, format!("sleep of non-time value {v}")),
                    },
                    Err(e) => log_err(&mut self.log, e.to_string()),
                }
            }
            AttackAction::SysCmd { host, cmd } => {
                self.log.push(
                    now_ns,
                    LogKind::SysCmd {
                        host: host.clone(),
                        cmd: cmd.clone(),
                    },
                );
                commands.push((host.clone(), cmd.clone()));
            }
            AttackAction::Fault { spec } => {
                self.log.push(now_ns, LogKind::Fault { spec: spec.clone() });
                faults.push(spec.clone());
            }
        }
    }
}
