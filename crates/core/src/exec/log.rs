//! The injection log: rule notifications and records, as the paper's
//! injector logged them (§VII-A2).

use crate::model::Capability;
use std::collections::BTreeMap;
use std::fmt;

/// What one log event records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogKind {
    /// A rule's conditional matched a message.
    RuleMatched {
        /// State index.
        state: usize,
        /// Rule name.
        rule: String,
        /// Message id.
        msg_id: u64,
    },
    /// The attack transitioned between states.
    Transition {
        /// Previous state index.
        from: usize,
        /// New state index.
        to: usize,
    },
    /// `READMESSAGEMETADATA` record.
    MetadataRecord {
        /// Message id.
        msg_id: u64,
        /// Rendered metadata.
        summary: String,
    },
    /// `READMESSAGE` record.
    PayloadRecord {
        /// Message id.
        msg_id: u64,
        /// Rendered payload.
        summary: String,
    },
    /// An action or conditional failed at runtime (logged, not fatal).
    ActionError {
        /// Rule name.
        rule: String,
        /// Rendered error.
        error: String,
    },
    /// A capability check failed at runtime (defense in depth; the
    /// compiler should have rejected this).
    CapabilityViolation {
        /// Rule name.
        rule: String,
        /// The missing capability.
        missing: Capability,
    },
    /// A new message was injected.
    Injected {
        /// Target connection index.
        conn: usize,
    },
    /// A message was held during `SLEEP`.
    Held {
        /// Message id.
        msg_id: u64,
    },
    /// `SLEEP` began.
    SleepStart {
        /// Wake time (ns).
        until_ns: u64,
    },
    /// `SYSCMD` was issued.
    SysCmd {
        /// Host name.
        host: String,
        /// Command line.
        cmd: String,
    },
    /// `FAULT` was issued (environment fault, dispatched to the testbed).
    Fault {
        /// The fault spec text.
        spec: String,
    },
}

/// One timestamped log event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEvent {
    /// Virtual (or wall) time in nanoseconds.
    pub time_ns: u64,
    /// The record.
    pub kind: LogKind,
}

impl fmt::Display for LogEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.6}s] {:?}", self.time_ns as f64 / 1e9, self.kind)
    }
}

/// The complete injection log plus per-rule fire counters.
#[derive(Debug, Default)]
pub struct InjectionLog {
    events: Vec<LogEvent>,
    fire_counts: BTreeMap<String, u64>,
}

impl InjectionLog {
    /// Creates an empty log.
    pub fn new() -> InjectionLog {
        InjectionLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, time_ns: u64, kind: LogKind) {
        if let LogKind::RuleMatched { rule, .. } = &kind {
            *self.fire_counts.entry(rule.clone()).or_insert(0) += 1;
        }
        self.events.push(LogEvent { time_ns, kind });
    }

    /// All events in order.
    pub fn events(&self) -> &[LogEvent] {
        &self.events
    }

    /// Every rule that fired, with its count, in name order.
    pub fn rule_fire_counts(&self) -> impl Iterator<Item = (&str, u64)> {
        self.fire_counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// How many times the named rule matched.
    pub fn rule_fires(&self, rule: &str) -> u64 {
        self.fire_counts.get(rule).copied().unwrap_or(0)
    }

    /// The state transitions, in order.
    pub fn transitions(&self) -> Vec<(usize, usize)> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                LogKind::Transition { from, to } => Some((*from, *to)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_counts_and_transitions() {
        let mut log = InjectionLog::new();
        log.push(
            0,
            LogKind::RuleMatched {
                state: 0,
                rule: "phi1".into(),
                msg_id: 1,
            },
        );
        log.push(
            1,
            LogKind::RuleMatched {
                state: 0,
                rule: "phi1".into(),
                msg_id: 2,
            },
        );
        log.push(2, LogKind::Transition { from: 0, to: 1 });
        assert_eq!(log.rule_fires("phi1"), 2);
        assert_eq!(log.rule_fires("phi2"), 0);
        assert_eq!(log.transitions(), vec![(0, 1)]);
        assert_eq!(log.events().len(), 3);
    }

    #[test]
    fn display_has_time_prefix() {
        let e = LogEvent {
            time_ns: 1_500_000_000,
            kind: LogKind::Transition { from: 0, to: 2 },
        };
        assert!(e.to_string().starts_with("[1.500000s]"));
    }
}
