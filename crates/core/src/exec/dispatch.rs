//! Compiled per-state rule dispatch (the Φ-compilation backend).
//!
//! The reference executor evaluates every rule of the current automaton
//! state against every intercepted message — O(|Φ|) per message. This
//! module compiles each state's ruleset once, at attack-compile time,
//! into an index that maps one message to the (usually tiny) candidate
//! subset of rules whose conditions could possibly matter:
//!
//! * **Equality/membership buckets** — rules anchored on
//!   `prop == literal` or `prop in [literals…]` (see
//!   [`anchor_guard`](crate::lang::anchor_guard)) hash-dispatch on the
//!   extracted property value: one read + one hash probe per anchored
//!   property per message, regardless of how many rules share it.
//! * **Interval tests** — rules anchored on `prop OP threshold` over
//!   infallible numeric properties are flattened into sorted threshold
//!   arrays with precomputed prefix/suffix union masks: one binary
//!   search finds every satisfied comparison at once.
//! * **Residual scan** — rules whose conditions defy indexing (deque
//!   reads, disjunctions, arithmetic, property-vs-property tests) are
//!   always candidates. Semantics are never approximated.
//!
//! Soundness of exclusion rests on the anchor-guard contract: a rule is
//! skipped only when the reference scan is guaranteed to evaluate its
//! condition to a falsy value *without logging*. Rules anchored on
//! fallible properties (payload reads that may hit an unparseable frame
//! or missing field) carry an *on-error* fallback mask so the scan's
//! per-rule `ActionError` events are reproduced in exact rule order.
//!
//! Candidate sets are bitmasks over the state's rule indices, so the
//! candidate list always comes out in ascending rule order — evaluation
//! order, `σ_previous` semantics, and log ordering are untouched.

use crate::lang::{
    anchor_guard, property_read_is_fallible, Attack, CmpOp, Guard, MessageView, Property, Value,
    ValueKey,
};
use crate::model::ConnectionId;
use std::collections::HashMap;

/// A bitmask over one state's rule indices.
type Mask = Box<[u64]>;

fn empty_mask(words: usize) -> Mask {
    vec![0u64; words].into_boxed_slice()
}

fn set_bit(mask: &mut [u64], idx: usize) {
    mask[idx / 64] |= 1u64 << (idx % 64);
}

fn has_bit(mask: &[u64], idx: usize) -> bool {
    mask.get(idx / 64)
        .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
}

fn or_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d |= s;
    }
}

fn intersects(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b.iter()).any(|(x, y)| x & y != 0)
}

/// Pushes the set bits of `a & b`, in ascending order, onto `out`.
fn collect_and(a: &[u64], b: &[u64], out: &mut Vec<u32>) {
    for (w, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let mut bits = x & y;
        while bits != 0 {
            out.push(w as u32 * 64 + bits.trailing_zeros());
            bits &= bits - 1;
        }
    }
}

/// One-sided threshold index: sorted `(threshold, strictness)` entries
/// with union masks so a single binary search yields the mask of every
/// rule whose comparison a value satisfies.
///
/// Entries are keyed so that a value `x` satisfies entry `(t, s)` iff
/// `(t, s) < (x, 1)` lexicographically for lower bounds (`x ≥ t` when
/// `s = 0` i.e. `Ge`, `x > t` when `s = 1` i.e. `Gt`), and iff
/// `(t, s) ≥ (x, 1)` for upper bounds (`x < t` when `s = 0` i.e. `Lt`,
/// `x ≤ t` when `s = 1` i.e. `Le`). Both sides share the same cut
/// point; lower bounds take the prefix union, upper bounds the suffix.
#[derive(Debug, Clone, PartialEq, Default)]
struct BoundIndex {
    entries: Vec<(f64, u8)>,
    /// `masks[i]` = union of rules satisfied when the search cut lands
    /// at `i` (length `entries.len() + 1`; empty when no entries).
    masks: Vec<Mask>,
}

impl BoundIndex {
    fn build(mut raw: Vec<(f64, u8, usize)>, words: usize, prefix: bool) -> Self {
        if raw.is_empty() {
            return BoundIndex::default();
        }
        raw.sort_by(|a, b| {
            (a.0, a.1)
                .partial_cmp(&(b.0, b.1))
                .expect("thresholds are finite")
        });
        // Merge duplicate (threshold, strictness) keys into one entry.
        let mut entries: Vec<(f64, u8)> = Vec::new();
        let mut entry_masks: Vec<Mask> = Vec::new();
        for (t, s, rule) in raw {
            if entries.last() != Some(&(t, s)) {
                entries.push((t, s));
                entry_masks.push(empty_mask(words));
            }
            set_bit(entry_masks.last_mut().expect("just pushed"), rule);
        }
        let n = entries.len();
        let mut masks = vec![empty_mask(words); n + 1];
        if prefix {
            for i in 0..n {
                let (done, rest) = masks.split_at_mut(i + 1);
                rest[0].copy_from_slice(&done[i]);
                or_into(&mut rest[0], &entry_masks[i]);
            }
        } else {
            for i in (0..n).rev() {
                let (head, tail) = masks.split_at_mut(i + 1);
                head[i].copy_from_slice(&tail[0]);
                or_into(&mut head[i], &entry_masks[i]);
            }
        }
        BoundIndex { entries, masks }
    }

    /// The mask of rules whose bound `x` satisfies, or `None` when the
    /// index is empty.
    fn matching(&self, x: f64) -> Option<&Mask> {
        if self.entries.is_empty() {
            return None;
        }
        let cut = self.entries.partition_point(|&(t, s)| (t, s) < (x, 1));
        Some(&self.masks[cut])
    }
}

/// All index structures anchored on one property within one state.
#[derive(Debug, Clone, PartialEq)]
struct PropIndex {
    prop: Property,
    /// Equality/membership buckets for non-string literals.
    eq: HashMap<ValueKey, Mask>,
    /// Equality/membership buckets for string literals (kept apart so
    /// lookups borrow the read value instead of cloning it into a key).
    eq_str: HashMap<String, Mask>,
    /// Lower bounds (`Ge`/`Gt`), prefix-union masks.
    lower: BoundIndex,
    /// Upper bounds (`Lt`/`Le`), suffix-union masks.
    upper: BoundIndex,
    /// Rules anchored here whose property read can fail at runtime —
    /// when it does, they must still run (and log the error) in order.
    on_error: Mask,
    /// Union of every rule bit this index can emit; when disjoint from
    /// the connection scope the property is not read at all (so the
    /// dispatcher never decodes a frame the scan would not).
    relevant: Mask,
}

impl PropIndex {
    fn candidates_into(&self, view: &MessageView<'_>, acc: &mut [u64]) {
        match view.read(&self.prop) {
            Ok(value) => {
                let hit = match &value {
                    Value::Str(s) => self.eq_str.get(s.as_str()),
                    other => ValueKey::of(other).and_then(|k| self.eq.get(&k)),
                };
                if let Some(mask) = hit {
                    or_into(acc, mask);
                }
                if let Some(x) = value.as_float() {
                    if let Some(mask) = self.lower.matching(x) {
                        or_into(acc, mask);
                    }
                    if let Some(mask) = self.upper.matching(x) {
                        or_into(acc, mask);
                    }
                }
            }
            Err(_) => or_into(acc, &self.on_error),
        }
    }
}

/// Per-property accumulation while compiling one state.
#[derive(Default)]
struct PropBuilder {
    eq: HashMap<ValueKey, Vec<usize>>,
    eq_str: HashMap<String, Vec<usize>>,
    lower: Vec<(f64, u8, usize)>,
    upper: Vec<(f64, u8, usize)>,
    on_error: Vec<usize>,
}

impl PropBuilder {
    fn add_eq(&mut self, value: &Value, rule: usize) {
        match ValueKey::of(value) {
            Some(ValueKey::Str(s)) => self.eq_str.entry(s).or_default().push(rule),
            Some(key) => self.eq.entry(key).or_default().push(rule),
            // Unreachable: guard extraction rejects unkeyable literals.
            None => {}
        }
    }

    fn finish(self, prop: Property, words: usize) -> PropIndex {
        let to_mask = |rules: Vec<usize>| {
            let mut m = empty_mask(words);
            for r in rules {
                set_bit(&mut m, r);
            }
            m
        };
        let eq: HashMap<ValueKey, Mask> =
            self.eq.into_iter().map(|(k, v)| (k, to_mask(v))).collect();
        let eq_str: HashMap<String, Mask> = self
            .eq_str
            .into_iter()
            .map(|(k, v)| (k, to_mask(v)))
            .collect();
        let lower = BoundIndex::build(self.lower, words, true);
        let upper = BoundIndex::build(self.upper, words, false);
        let on_error = to_mask(self.on_error);
        let mut relevant = empty_mask(words);
        for mask in eq.values().chain(eq_str.values()) {
            or_into(&mut relevant, mask);
        }
        for index in [&lower, &upper] {
            for mask in &index.masks {
                or_into(&mut relevant, mask);
            }
        }
        or_into(&mut relevant, &on_error);
        PropIndex {
            prop,
            eq,
            eq_str,
            lower,
            upper,
            on_error,
            relevant,
        }
    }
}

/// One automaton state's compiled dispatcher.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledState {
    rules: usize,
    words: usize,
    /// `conn_scope[c]` = rules watching connection `c` (the O(1)
    /// replacement for [`Rule::applies_to`](crate::lang::Rule)'s list
    /// walk, used on every dispatch path including the residual scan).
    conn_scope: Vec<Mask>,
    /// Rules that are always candidates (no extractable guard).
    residual: Mask,
    /// Indexes, one per distinct anchored property, in first-anchor
    /// order (deterministic across compiles of the same attack).
    props: Vec<PropIndex>,
}

impl CompiledState {
    fn compile(
        rules: &[crate::lang::Rule],
        conn_count: usize,
        summary: &mut DispatchSummary,
    ) -> CompiledState {
        let words = rules.len().div_ceil(64).max(1);
        let mut conn_scope = vec![empty_mask(words); conn_count];
        let mut residual = empty_mask(words);
        let mut props: Vec<(Property, PropBuilder)> = Vec::new();
        fn builder_for<'a>(
            props: &'a mut Vec<(Property, PropBuilder)>,
            prop: &Property,
        ) -> &'a mut PropBuilder {
            let at = props
                .iter()
                .position(|(p, _)| p == prop)
                .unwrap_or_else(|| {
                    props.push((prop.clone(), PropBuilder::default()));
                    props.len() - 1
                });
            &mut props[at].1
        }
        summary.rules += rules.len();
        for (i, rule) in rules.iter().enumerate() {
            for conn in &rule.connections {
                if let Some(mask) = conn_scope.get_mut(conn.0) {
                    set_bit(mask, i);
                }
            }
            let guard = anchor_guard(&rule.condition);
            if let Some(prop) = guard.as_ref().and_then(Guard::property) {
                if property_read_is_fallible(prop) {
                    builder_for(&mut props, prop).on_error.push(i);
                }
            }
            match guard {
                Some(Guard::Never) => summary.never += 1,
                None => {
                    set_bit(&mut residual, i);
                    summary.residual += 1;
                }
                Some(Guard::Eq { prop, value }) => {
                    summary.eq_indexed += 1;
                    builder_for(&mut props, &prop).add_eq(&value, i);
                }
                Some(Guard::In { prop, values }) => {
                    summary.membership_indexed += 1;
                    let b = builder_for(&mut props, &prop);
                    for value in &values {
                        b.add_eq(value, i);
                    }
                }
                Some(Guard::Cmp {
                    prop,
                    op,
                    threshold,
                }) => {
                    summary.cmp_indexed += 1;
                    let b = builder_for(&mut props, &prop);
                    match op {
                        CmpOp::Ge => b.lower.push((threshold, 0, i)),
                        CmpOp::Gt => b.lower.push((threshold, 1, i)),
                        CmpOp::Lt => b.upper.push((threshold, 0, i)),
                        CmpOp::Le => b.upper.push((threshold, 1, i)),
                    }
                }
            }
        }
        let props = props
            .into_iter()
            .map(|(prop, b)| b.finish(prop, words))
            .collect();
        CompiledState {
            rules: rules.len(),
            words,
            conn_scope,
            residual,
            props,
        }
    }

    /// Whether rule `rule` watches `conn` — O(1), the compiled
    /// replacement for `Rule::applies_to`.
    pub fn rule_watches(&self, rule: usize, conn: ConnectionId) -> bool {
        self.conn_scope
            .get(conn.0)
            .is_some_and(|mask| has_bit(mask, rule))
    }

    /// Number of rules in this state.
    pub fn rule_count(&self) -> usize {
        self.rules
    }

    /// Computes the candidate rule indices for one message, in
    /// ascending (= evaluation) order, into `out`.
    ///
    /// `view` must carry the **full** capability set: extraction reads
    /// stand in for reads the anchored rules are validated to hold, so
    /// a narrower grant would wrongly exclude rules (debug-asserted).
    /// `scratch` is caller-provided so steady-state dispatch allocates
    /// nothing.
    pub fn candidates(
        &self,
        conn: ConnectionId,
        view: &MessageView<'_>,
        out: &mut Vec<u32>,
        scratch: &mut Vec<u64>,
    ) {
        debug_assert!(
            view.granted == crate::model::CapabilitySet::no_tls(),
            "candidate extraction needs the full capability set"
        );
        out.clear();
        let Some(conn_mask) = self.conn_scope.get(conn.0) else {
            return;
        };
        if self.props.is_empty() {
            collect_and(&self.residual, conn_mask, out);
            return;
        }
        scratch.clear();
        scratch.extend_from_slice(&self.residual);
        for pi in &self.props {
            // Skip properties no in-scope rule anchors on: the frame is
            // never decoded unless the scan would have decoded it too.
            if intersects(&pi.relevant, conn_mask) {
                pi.candidates_into(view, scratch);
            }
        }
        collect_and(scratch, conn_mask, out);
    }
}

/// How a compiled ruleset dispatches its rules — per-class counts,
/// summed over all states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DispatchSummary {
    /// Total rules across all states.
    pub rules: usize,
    /// Rules dispatched through an equality bucket.
    pub eq_indexed: usize,
    /// Rules dispatched through membership buckets.
    pub membership_indexed: usize,
    /// Rules dispatched through a threshold index.
    pub cmp_indexed: usize,
    /// Rules evaluated on every in-scope message.
    pub residual: usize,
    /// Rules whose condition opens with a falsy literal (never run).
    pub never: usize,
}

/// The whole attack's compiled dispatch structure: one
/// [`CompiledState`] per automaton state.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledRuleset {
    states: Vec<CompiledState>,
    summary: DispatchSummary,
}

impl CompiledRuleset {
    /// Compiles every state of `attack` for a system with `conn_count`
    /// connections.
    ///
    /// The attack must already be validated (rule capability sets ⊇
    /// their conditions' requirements): extraction reads during
    /// dispatch rely on that invariant to behave exactly like the
    /// per-rule reads of the reference scan.
    pub fn compile(attack: &Attack, conn_count: usize) -> CompiledRuleset {
        let mut summary = DispatchSummary::default();
        let states = attack
            .states
            .iter()
            .map(|s| CompiledState::compile(&s.rules, conn_count, &mut summary))
            .collect();
        CompiledRuleset { states, summary }
    }

    /// The compiled dispatcher for state `idx`.
    pub fn state(&self, idx: usize) -> &CompiledState {
        &self.states[idx]
    }

    /// Per-class dispatch counts over the whole attack.
    pub fn summary(&self) -> DispatchSummary {
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{AttackAction, AttackState, Expr, Rule};
    use crate::model::{CapabilitySet, ControllerId, NodeRef, SwitchId};
    use attain_openflow::{Frame, OfMessage, OfType};

    fn rule(name: &str, conns: &[usize], condition: Expr) -> Rule {
        Rule {
            name: name.into(),
            connections: conns.iter().map(|&c| ConnectionId(c)).collect(),
            required: CapabilitySet::no_tls(),
            condition,
            actions: vec![AttackAction::Drop],
        }
    }

    fn attack_of(rules: Vec<Rule>) -> Attack {
        Attack {
            name: "t".into(),
            states: vec![AttackState {
                name: "s0".into(),
                rules,
            }],
            start: 0,
        }
    }

    fn type_is(t: OfType) -> Expr {
        Expr::eq(Expr::Prop(Property::Type), Expr::Lit(Value::MsgType(t)))
    }

    fn length_is(n: i64) -> Expr {
        Expr::eq(Expr::Prop(Property::Length), Expr::Lit(Value::Int(n)))
    }

    fn view(frame: &Frame) -> MessageView<'_> {
        MessageView {
            conn: ConnectionId(0),
            source: NodeRef::Controller(ControllerId(0)),
            destination: NodeRef::Switch(SwitchId(0)),
            timestamp_ns: 0,
            id: 7,
            frame,
            granted: CapabilitySet::no_tls(),
            entropy: 0.5,
        }
    }

    fn candidates_of(ruleset: &CompiledRuleset, conn: usize, frame: &Frame) -> Vec<u32> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        ruleset
            .state(0)
            .candidates(ConnectionId(conn), &view(frame), &mut out, &mut scratch);
        out
    }

    #[test]
    fn equality_buckets_select_only_matching_rules() {
        let rules = vec![
            rule("r0", &[0], type_is(OfType::Hello)),
            rule("r1", &[0], type_is(OfType::FlowMod)),
            rule("r2", &[0], type_is(OfType::FlowMod)),
            rule("r3", &[0], length_is(8)), // Hello frame is 8 bytes
        ];
        let ruleset = CompiledRuleset::compile(&attack_of(rules), 1);
        let frame = Frame::from_message(OfMessage::Hello, 1);
        assert_eq!(candidates_of(&ruleset, 0, &frame), vec![0, 3]);
        let frame = Frame::from_message(
            OfMessage::FlowMod(attain_openflow::FlowMod::add(
                attain_openflow::Match::all(),
                vec![],
            )),
            1,
        );
        assert_eq!(candidates_of(&ruleset, 0, &frame), vec![1, 2]);
    }

    #[test]
    fn candidates_come_out_in_rule_order_with_residuals() {
        // r0 residual (disjunction), r1 indexed, r2 residual.
        let rules = vec![
            rule("r0", &[0], Expr::or(type_is(OfType::Hello), Expr::always())),
            rule("r1", &[0], type_is(OfType::Hello)),
            rule("r2", &[0], Expr::always()),
        ];
        let ruleset = CompiledRuleset::compile(&attack_of(rules), 1);
        let frame = Frame::from_message(OfMessage::Hello, 1);
        assert_eq!(candidates_of(&ruleset, 0, &frame), vec![0, 1, 2]);
        let frame = Frame::from_message(OfMessage::EchoRequest(vec![0; 32]), 1);
        assert_eq!(candidates_of(&ruleset, 0, &frame), vec![0, 2]);
    }

    #[test]
    fn connection_scope_is_o1_and_filters_every_class() {
        let rules = vec![
            rule("r0", &[1], type_is(OfType::Hello)),
            rule("r1", &[0, 1], Expr::always()),
            rule("r2", &[2], Expr::always()),
        ];
        let ruleset = CompiledRuleset::compile(&attack_of(rules), 3);
        let frame = Frame::from_message(OfMessage::Hello, 1);
        assert_eq!(candidates_of(&ruleset, 0, &frame), vec![1]);
        assert_eq!(candidates_of(&ruleset, 1, &frame), vec![0, 1]);
        assert_eq!(candidates_of(&ruleset, 2, &frame), vec![2]);
        let state = ruleset.state(0);
        assert!(state.rule_watches(0, ConnectionId(1)));
        assert!(!state.rule_watches(0, ConnectionId(0)));
        assert!(!state.rule_watches(2, ConnectionId(9)));
    }

    #[test]
    fn interval_index_matches_scan_semantics() {
        let cmp = |op: fn(Box<Expr>, Box<Expr>) -> Expr, n: i64| {
            op(
                Box::new(Expr::Prop(Property::Length)),
                Box::new(Expr::Lit(Value::Int(n))),
            )
        };
        let rules = vec![
            rule("ge8", &[0], cmp(Expr::Ge, 8)),
            rule("gt8", &[0], cmp(Expr::Gt, 8)),
            rule("lt8", &[0], cmp(Expr::Lt, 8)),
            rule("le8", &[0], cmp(Expr::Le, 8)),
            rule("gt100", &[0], cmp(Expr::Gt, 100)),
            rule("lt100", &[0], cmp(Expr::Lt, 100)),
        ];
        let ruleset = CompiledRuleset::compile(&attack_of(rules), 1);
        // Hello = 8 bytes: ge8, le8, lt100.
        let frame = Frame::from_message(OfMessage::Hello, 1);
        assert_eq!(candidates_of(&ruleset, 0, &frame), vec![0, 3, 5]);
        // EchoRequest(32) = 40 bytes: ge8, gt8, lt100.
        let frame = Frame::from_message(OfMessage::EchoRequest(vec![0; 32]), 1);
        assert_eq!(candidates_of(&ruleset, 0, &frame), vec![0, 1, 5]);
        // 4-byte unparseable junk: lt8, le8, lt100 (Length is metadata,
        // it reads fine on junk).
        let frame = Frame::new(vec![0xff; 4]);
        assert_eq!(candidates_of(&ruleset, 0, &frame), vec![2, 3, 5]);
    }

    #[test]
    fn fallible_anchors_fall_back_on_unparseable_frames() {
        let rules = vec![
            rule("type", &[0], type_is(OfType::Hello)),
            rule("len", &[0], length_is(12)),
        ];
        let ruleset = CompiledRuleset::compile(&attack_of(rules), 1);
        // 12 bytes of junk: the Type read fails, so the type-anchored
        // rule must still be a candidate (the scan logs its error); the
        // Length bucket still works.
        let frame = Frame::new(vec![0xff; 12]);
        assert_eq!(candidates_of(&ruleset, 0, &frame), vec![0, 1]);
        let frame = Frame::new(vec![0xff; 13]);
        assert_eq!(candidates_of(&ruleset, 0, &frame), vec![0]);
    }

    #[test]
    fn never_rules_are_dropped_membership_and_numerics_bucket() {
        let rules = vec![
            rule(
                "never",
                &[0],
                Expr::and(Expr::Lit(Value::Bool(false)), Expr::always()),
            ),
            rule(
                "in",
                &[0],
                Expr::In(
                    Box::new(Expr::Prop(Property::Type)),
                    vec![
                        Expr::Lit(Value::MsgType(OfType::Hello)),
                        Expr::Lit(Value::MsgType(OfType::EchoRequest)),
                    ],
                ),
            ),
            // Cross-kind numeric equality: Float(8.0) bucket must catch
            // the Int(8) length read.
            rule(
                "float-len",
                &[0],
                Expr::eq(Expr::Prop(Property::Length), Expr::Lit(Value::Float(8.0))),
            ),
        ];
        let ruleset = CompiledRuleset::compile(&attack_of(rules), 1);
        let frame = Frame::from_message(OfMessage::Hello, 1);
        assert_eq!(candidates_of(&ruleset, 0, &frame), vec![1, 2]);
        let summary = ruleset.summary();
        assert_eq!(summary.rules, 3);
        assert_eq!(summary.never, 1);
        assert_eq!(summary.membership_indexed, 1);
        assert_eq!(summary.eq_indexed, 1);
        assert_eq!(summary.residual, 0);
    }

    #[test]
    fn summary_counts_cover_all_classes() {
        let rules = vec![
            rule("eq", &[0], type_is(OfType::Hello)),
            rule(
                "cmp",
                &[0],
                Expr::Gt(
                    Box::new(Expr::Prop(Property::Entropy)),
                    Box::new(Expr::Lit(Value::Float(0.5))),
                ),
            ),
            rule("res", &[0], Expr::Not(Box::new(Expr::always()))),
        ];
        let summary = CompiledRuleset::compile(&attack_of(rules), 1).summary();
        assert_eq!(
            summary,
            DispatchSummary {
                rules: 3,
                eq_indexed: 1,
                membership_indexed: 0,
                cmp_indexed: 1,
                residual: 1,
                never: 0,
            }
        );
    }

    #[test]
    fn empty_state_and_out_of_range_connection() {
        let ruleset = CompiledRuleset::compile(&attack_of(vec![]), 1);
        let frame = Frame::from_message(OfMessage::Hello, 1);
        assert!(candidates_of(&ruleset, 0, &frame).is_empty());
        // A connection index past the system's count yields no
        // candidates rather than panicking.
        assert!(candidates_of(&ruleset, 5, &frame).is_empty());
        assert_eq!(ruleset.state(0).rule_count(), 0);
    }
}
