//! The runtime attack execution engine (paper §VI-B2 and Algorithm 1).
//!
//! [`AttackExecutor`] holds the attack's current state `σ_current`, the
//! deque storage `Δ`, and the injection log; each incoming control-plane
//! message is matched against the current state's rules and the matched
//! rules' actions shape the outgoing message list — exactly the paper's
//! `ATTACKEXECUTOR` procedure. [`validate_attack`] performs the
//! compiler's §VI-B1 capability and structure checks.

mod dispatch;
mod executor;
mod log;
mod modifier;

pub use dispatch::{CompiledRuleset, CompiledState, DispatchSummary};
pub use executor::{
    validate_attack, AttackExecutor, DispatchMode, ExecOutput, ExecutorError, InjectorInput,
    OutMessage,
};
pub use log::{InjectionLog, LogEvent, LogKind};
pub use modifier::{set_field, ModifyError};
