//! Algorithm 1 end-to-end: bundled DSL attacks driven against synthetic
//! message streams.

use attain_core::dsl;
use attain_core::exec::{AttackExecutor, ExecOutput, InjectorInput, LogKind};
use attain_core::model::ConnectionId;
use attain_core::scenario::{self, attacks};
use attain_openflow::{
    Action, FlowMod, Match, OfMessage, PacketIn, PacketInReason, PortNo, Wildcards,
};

fn executor(source: &str) -> AttackExecutor {
    let sc = scenario::enterprise_network();
    let compiled = dsl::compile(source, &sc.system, &sc.attack_model).expect("attack compiles");
    AttackExecutor::new(sc.system, sc.attack_model, compiled.attack).expect("attack validates")
}

fn flow_mod_bytes() -> Vec<u8> {
    OfMessage::FlowMod(FlowMod::add(
        Match::all(),
        vec![Action::Output {
            port: PortNo(1),
            max_len: 0,
        }],
    ))
    .encode(1)
}

fn packet_in_bytes(xid: u32) -> Vec<u8> {
    OfMessage::PacketIn(PacketIn {
        buffer_id: Some(xid),
        total_len: 64,
        in_port: PortNo(1),
        reason: PacketInReason::NoMatch,
        data: vec![0xab; 64],
    })
    .encode(xid)
}

fn send(
    exec: &mut AttackExecutor,
    conn: usize,
    to_controller: bool,
    bytes: &[u8],
    now_ns: u64,
) -> ExecOutput {
    exec.on_message(InjectorInput {
        conn: ConnectionId(conn),
        to_controller,
        frame: attain_openflow::Frame::new(bytes.to_vec()),
        now_ns,
    })
}

#[test]
fn trivial_pass_forwards_everything_verbatim() {
    let mut exec = executor(attacks::TRIVIAL_PASS);
    for (i, msg) in [
        OfMessage::Hello.encode(1),
        flow_mod_bytes(),
        packet_in_bytes(9),
    ]
    .iter()
    .enumerate()
    {
        let out = send(&mut exec, i % 4, i % 2 == 0, msg, i as u64);
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].frame.bytes(), msg.as_slice());
        assert_eq!(out.deliveries[0].extra_delay_ns, 0);
    }
    assert!(exec.log().events().is_empty());
}

#[test]
fn flow_mod_suppression_drops_only_controller_flow_mods() {
    let mut exec = executor(attacks::FLOW_MOD_SUPPRESSION);
    // FLOW_MOD from the controller: dropped on every connection.
    for conn in 0..4 {
        let out = send(&mut exec, conn, false, &flow_mod_bytes(), conn as u64);
        assert!(out.deliveries.is_empty(), "conn {conn} should drop");
    }
    // PACKET_IN from a switch: passes.
    let out = send(&mut exec, 0, true, &packet_in_bytes(1), 10);
    assert_eq!(out.deliveries.len(), 1);
    // HELLO from the controller: passes (not a FLOW_MOD).
    let out = send(&mut exec, 0, false, &OfMessage::Hello.encode(2), 11);
    assert_eq!(out.deliveries.len(), 1);
    assert_eq!(exec.log().rule_fires("phi1"), 4);
    // The attack is single-state: no transitions ever.
    assert!(exec.log().transitions().is_empty());
}

#[test]
fn connection_interruption_walks_the_figure_12_state_machine() {
    let mut exec = executor(attacks::CONNECTION_INTERRUPTION);
    assert_eq!(exec.current_state_name(), "sigma1");

    // HELLO from s2 (conn 1, to_controller): passes, σ1 → σ2.
    let out = send(&mut exec, 1, true, &OfMessage::Hello.encode(1), 0);
    assert_eq!(out.deliveries.len(), 1);
    assert_eq!(exec.current_state_name(), "sigma2");

    // A FLOW_MOD without nw_src: stays in σ2 (the Ryu case) and passes.
    let out = send(&mut exec, 1, false, &flow_mod_bytes(), 1);
    assert_eq!(out.deliveries.len(), 1);
    assert_eq!(exec.current_state_name(), "sigma2");

    // The deny flow mod: match names nw_src=h2, nw_dst=h3 → dropped,
    // σ2 → σ3.
    let mut m = Match::all();
    m.wildcards = Wildcards::ALL
        .with_nw_src_ignored_bits(0)
        .with_nw_dst_ignored_bits(0);
    m.nw_src = u32::from("10.0.0.2".parse::<std::net::Ipv4Addr>().unwrap());
    m.nw_dst = u32::from("10.0.0.3".parse::<std::net::Ipv4Addr>().unwrap());
    let deny = OfMessage::FlowMod(FlowMod::add(m, vec![])).encode(5);
    let out = send(&mut exec, 1, false, &deny, 2);
    assert!(out.deliveries.is_empty());
    assert_eq!(exec.current_state_name(), "sigma3");

    // σ3 drops everything on (c1, s2)…
    let out = send(
        &mut exec,
        1,
        true,
        &OfMessage::EchoRequest(vec![]).encode(6),
        3,
    );
    assert!(out.deliveries.is_empty());
    // …but other connections are untouched.
    let out = send(
        &mut exec,
        0,
        true,
        &OfMessage::EchoRequest(vec![]).encode(7),
        4,
    );
    assert_eq!(out.deliveries.len(), 1);

    assert_eq!(exec.log().transitions(), vec![(0, 1), (1, 2)]);
}

#[test]
fn ryu_style_wildcarded_flow_mods_never_trigger_phi2() {
    let mut exec = executor(attacks::CONNECTION_INTERRUPTION);
    send(&mut exec, 1, true, &OfMessage::Hello.encode(1), 0);
    assert_eq!(exec.current_state_name(), "sigma2");
    // Twenty L2-only flow mods (nw fields wildcarded): all pass, no
    // transition — the paper's Ryu anomaly.
    for i in 0..20 {
        let out = send(&mut exec, 1, false, &flow_mod_bytes(), i + 10);
        assert_eq!(out.deliveries.len(), 1);
    }
    assert_eq!(exec.current_state_name(), "sigma2");
    assert_eq!(exec.log().rule_fires("phi2"), 0);
}

#[test]
fn counted_suppression_lets_ten_through_then_drops() {
    let mut exec = executor(attacks::COUNTED_SUPPRESSION);
    let mut passed = 0;
    let mut dropped = 0;
    for i in 0..25 {
        let out = send(&mut exec, 0, false, &flow_mod_bytes(), i);
        if out.deliveries.is_empty() {
            dropped += 1;
        } else {
            passed += 1;
        }
    }
    assert_eq!(passed, 10, "exactly ten flow mods should pass");
    assert_eq!(dropped, 15);
    assert_eq!(exec.current_state_name(), "suppress");
    // O(1) storage: one counter cell, not one state per message.
    assert_eq!(exec.deques().len("counter"), 1);
}

#[test]
fn reorder_emits_stashed_packet_ins_in_reverse_order() {
    let mut exec = executor(attacks::REORDER_PACKET_INS);
    let m1 = packet_in_bytes(1);
    let m2 = packet_in_bytes(2);
    let m3 = packet_in_bytes(3);
    assert!(send(&mut exec, 0, true, &m1, 0).deliveries.is_empty());
    assert!(send(&mut exec, 0, true, &m2, 1).deliveries.is_empty());
    let out = send(&mut exec, 0, true, &m3, 2);
    // Third passes first, then the stack unwinds: m2, m1.
    assert_eq!(out.deliveries.len(), 3);
    assert_eq!(out.deliveries[0].frame.bytes(), m3.as_slice());
    assert_eq!(out.deliveries[1].frame.bytes(), m2.as_slice());
    assert_eq!(out.deliveries[2].frame.bytes(), m1.as_slice());
}

#[test]
fn replay_duplicates_then_floods_five_copies() {
    let mut exec = executor(attacks::REPLAY_FLOW_MODS);
    let mut total_out = 0;
    for i in 0..5 {
        let out = send(&mut exec, 0, false, &flow_mod_bytes(), i);
        // duplicate + pass: two copies each time.
        assert_eq!(out.deliveries.len(), 2);
        total_out += out.deliveries.len();
    }
    // Sixth message: the flood rule replays the five stored copies and
    // the message itself still passes (default).
    let out = send(&mut exec, 0, false, &OfMessage::Hello.encode(9), 9);
    assert_eq!(out.deliveries.len(), 6);
    total_out += out.deliveries.len();
    assert_eq!(total_out, 16);
    assert_eq!(exec.current_state_name(), "done");
}

#[test]
fn fuzz_corrupts_every_tenth_controller_message() {
    let mut exec = executor(attacks::FUZZ_CONTROL_PLANE);
    let mut corrupted = 0;
    for i in 0..40 {
        let bytes = OfMessage::EchoRequest(vec![0u8; 32]).encode(i as u32);
        let out = send(&mut exec, 0, false, &bytes, i);
        assert_eq!(out.deliveries.len(), 1);
        if out.deliveries[0].frame.bytes() != bytes.as_slice() {
            corrupted += 1;
        }
    }
    assert_eq!(corrupted, 4, "every tenth message should be fuzzed");
}

#[test]
fn sleep_holds_messages_and_replays_them_on_wakeup() {
    let sc = scenario::enterprise_network();
    let source = r#"
        attack napper {
            start state s {
                rule trigger on (c1, s1) {
                    when msg.type == HELLO
                    do { pass(msg); sleep(2); goto asleep; }
                }
            }
            state asleep {
                rule all_pass on (c1, s1) {
                    when true
                    do { pass(msg); }
                }
            }
        }
    "#;
    let compiled = dsl::compile(source, &sc.system, &sc.attack_model).unwrap();
    let mut exec = AttackExecutor::new(sc.system, sc.attack_model, compiled.attack).unwrap();

    let hello = OfMessage::Hello.encode(1);
    let out = send(&mut exec, 0, true, &hello, 1_000_000_000);
    assert_eq!(out.deliveries.len(), 1);
    assert_eq!(out.wakeup_ns, Some(3_000_000_000));

    // Messages during the nap are held.
    let m = packet_in_bytes(7);
    let out = send(&mut exec, 0, true, &m, 1_500_000_000);
    assert!(out.deliveries.is_empty());
    assert_eq!(out.wakeup_ns, Some(3_000_000_000));

    // Wakeup drains the held message through the (now current) state.
    let out = exec.on_wakeup(3_000_000_000);
    assert_eq!(out.deliveries.len(), 1);
    assert_eq!(out.deliveries[0].frame.bytes(), m.as_slice());
    assert!(exec
        .log()
        .events()
        .iter()
        .any(|e| matches!(e.kind, LogKind::Held { .. })));
}

#[test]
fn syscmd_surfaces_to_the_harness() {
    let sc = scenario::enterprise_network();
    let source = r#"
        attack cmds {
            start state s {
                rule go on (c1, s1) {
                    when msg.type == HELLO
                    do { pass(msg); syscmd(h6, "iperf -s"); syscmd(h1, "iperf -c 10.0.0.6 -t 10"); }
                }
            }
        }
    "#;
    let compiled = dsl::compile(source, &sc.system, &sc.attack_model).unwrap();
    let mut exec = AttackExecutor::new(sc.system, sc.attack_model, compiled.attack).unwrap();
    let out = send(&mut exec, 0, true, &OfMessage::Hello.encode(1), 0);
    assert_eq!(
        out.commands,
        vec![
            ("h6".to_string(), "iperf -s".to_string()),
            ("h1".to_string(), "iperf -c 10.0.0.6 -t 10".to_string()),
        ]
    );
}

#[test]
fn delay_and_duplicate_and_modify() {
    let sc = scenario::enterprise_network();
    let source = r#"
        attack shaping {
            start state s {
                rule slow on (c1, s1) {
                    when msg.type == FLOW_MOD
                    do { modify(msg, "idle_timeout", 60); duplicate(msg); delay(msg, 0.5); }
                }
            }
        }
    "#;
    let compiled = dsl::compile(source, &sc.system, &sc.attack_model).unwrap();
    let mut exec = AttackExecutor::new(sc.system, sc.attack_model, compiled.attack).unwrap();
    let out = send(&mut exec, 0, false, &flow_mod_bytes(), 0);
    assert_eq!(out.deliveries.len(), 2);
    for d in &out.deliveries {
        assert_eq!(d.extra_delay_ns, 500_000_000);
        let Some(OfMessage::FlowMod(fm)) = d.frame.message() else {
            panic!()
        };
        assert_eq!(fm.idle_timeout, 60);
    }
}

#[test]
fn executor_is_deterministic_across_runs() {
    let run = || {
        let mut exec = executor(attacks::FUZZ_CONTROL_PLANE);
        let mut all_bytes = Vec::new();
        for i in 0..50u64 {
            let bytes = OfMessage::EchoRequest(vec![i as u8; 24]).encode(i as u32);
            let out = send(&mut exec, (i % 4) as usize, false, &bytes, i);
            for d in out.deliveries {
                all_bytes.extend_from_slice(d.frame.bytes());
            }
        }
        all_bytes
    };
    assert_eq!(run(), run());
}

#[test]
fn stochastic_suppression_drops_at_the_configured_rate() {
    use attain_core::lang::templates;
    use attain_openflow::OfType;
    let sc = scenario::enterprise_network();
    let attack = templates::suppress_type_with_probability(
        OfType::FlowMod,
        0.3,
        sc.system.connections().map(|(id, _, _)| id).collect(),
    );
    let run = || {
        let sc = scenario::enterprise_network();
        let mut exec = AttackExecutor::new(sc.system, sc.attack_model, attack.clone()).unwrap();
        let mut dropped = 0u32;
        for i in 0..1000 {
            let out = send(&mut exec, 0, false, &flow_mod_bytes(), i);
            if out.deliveries.is_empty() {
                dropped += 1;
            }
        }
        dropped
    };
    let dropped = run();
    // Binomial(1000, 0.3): ±5σ ≈ ±72.
    assert!(
        (230..=370).contains(&dropped),
        "drop count {dropped} should be ≈300"
    );
    // Stochastic but reproducible: identical across runs.
    assert_eq!(dropped, run());
}

#[test]
fn entropy_property_is_usable_from_the_dsl() {
    let sc = scenario::enterprise_network();
    let source = r#"
        attack lossy {
            start state s {
                rule coin on (c1, s1) {
                    when msg.entropy < 0.5
                    do { drop(msg); }
                }
            }
        }
    "#;
    let compiled = dsl::compile(source, &sc.system, &sc.attack_model).unwrap();
    let mut exec = AttackExecutor::new(sc.system, sc.attack_model, compiled.attack).unwrap();
    let mut dropped = 0;
    for i in 0..200 {
        let out = send(&mut exec, 0, true, &packet_in_bytes(i as u32), i);
        if out.deliveries.is_empty() {
            dropped += 1;
        }
    }
    assert!(
        (60..=140).contains(&dropped),
        "≈half should drop, got {dropped}"
    );
}

#[test]
fn templates_compose_with_the_executor() {
    use attain_core::lang::templates;
    use attain_openflow::OfType;
    let sc = scenario::enterprise_network();
    let conns: Vec<_> = sc.system.connections().map(|(id, _, _)| id).collect();
    let attack = templates::after_count(
        OfType::FlowMod,
        5,
        vec![attain_core::lang::AttackAction::Drop],
        conns,
    );
    let mut exec = AttackExecutor::new(sc.system, sc.attack_model, attack).unwrap();
    let mut passed = 0;
    for i in 0..12 {
        let out = send(&mut exec, 0, false, &flow_mod_bytes(), i);
        if !out.deliveries.is_empty() {
            passed += 1;
        }
    }
    assert_eq!(passed, 5);
    assert_eq!(exec.current_state_name(), "strike");
}
