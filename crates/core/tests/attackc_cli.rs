//! End-to-end tests of the `attackc` compiler binary.

use std::process::Command;

fn attackc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_attackc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("attackc-test-{name}-{}.atk", std::process::id()));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

const GOOD_DOC: &str = r#"
    system {
        controller c1;
        switch s1;
        host h1 ip 10.0.0.1;
        host h2 ip 10.0.0.2;
        link h1, s1;
        link h2, s1;
        connection c1 -> s1;
    }
    attack demo {
        start state a {
            rule r on (c1, s1) {
                when msg.type == FLOW_MOD
                do { drop(msg); goto b; }
            }
        }
        state b { }
    }
"#;

#[test]
fn compiles_a_document_and_reports_structure() {
    let path = write_temp("good", GOOD_DOC);
    let out = attackc().arg(&path).output().expect("run attackc");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("attack demo: 2 state(s), 1 transition(s)"));
    assert!(stdout.contains("1 attack(s) compiled and validated"));
    std::fs::remove_file(path).ok();
}

#[test]
fn dot_flag_emits_graphviz() {
    let path = write_temp("dot", GOOD_DOC);
    let out = attackc()
        .arg("--dot")
        .arg(&path)
        .output()
        .expect("run attackc");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("digraph attack_state_graph"));
    assert!(stdout.contains("start -> s0"));
    std::fs::remove_file(path).ok();
}

#[test]
fn enterprise_scenario_compiles_attack_only_files() {
    let path = write_temp(
        "enterprise",
        r#"
        attack drop_everything_on_s2 {
            start state s {
                rule r on (c1, s2) {
                    when msg.length > 0
                    do { drop(msg); }
                }
            }
        }
        "#,
    );
    let out = attackc()
        .args(["--scenario", "enterprise"])
        .arg(&path)
        .output()
        .expect("run attackc");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn syntax_errors_exit_nonzero_with_line_numbers() {
    let path = write_temp("bad", "attack x {\n  state s {\n    garbage\n  }\n}");
    let out = attackc().arg(&path).output().expect("run attackc");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 3"), "stderr: {stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn capability_violations_exit_nonzero() {
    // Blocks may appear in any order; adding a TLS-only capabilities
    // block must now reject the payload-reading rule.
    let doc = GOOD_DOC.to_string() + "\ncapabilities { default tls; }\n";
    let path = write_temp("caps", &doc);
    let out = attackc().arg(&path).output().expect("run attackc");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("does not grant"), "stderr: {stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn missing_file_and_bad_flags_fail_cleanly() {
    let out = attackc()
        .arg("/nonexistent/file.atk")
        .output()
        .expect("run");
    assert!(!out.status.success());
    let out = attackc().arg("--bogus").output().expect("run");
    assert!(!out.status.success());
    let out = attackc()
        .args(["--scenario", "unknown", "/dev/null"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}
