//! Differential oracle for the compiled rule dispatcher: on random
//! rulesets and message streams, [`DispatchMode::Compiled`] must
//! reproduce the reference scan's full executor output — deliveries,
//! commands, wakeups, log events (including `ActionError` ordering),
//! deque contents, and state transitions — bit for bit.
//!
//! The generated rulesets deliberately span every dispatch class:
//! fully indexable anchors (type/length equality, membership,
//! interval comparisons, entropy thresholds), partially indexable
//! conjunctions, error-producing conditions (missing type-option
//! fields, unparseable frames, type-mismatched comparisons), pure
//! residuals (disjunctions, deque reads, arithmetic), never-firing
//! rules, and `GOTOSTATE` transitions mid-stream.

use attain_core::exec::{AttackExecutor, DispatchMode, ExecOutput, InjectorInput, LogEvent};
use attain_core::lang::{Attack, AttackAction, AttackState, Expr, Property, Rule, Value};
use attain_core::model::{AttackModel, CapabilitySet, ConnectionId, SystemModel};
use attain_openflow::{FlowMod, Frame, Match, OfMessage, OfType};
use proptest::prelude::*;

fn small_system() -> (SystemModel, AttackModel) {
    let mut m = SystemModel::new();
    let c = m.add_controller("c0").expect("fresh name");
    let s0 = m.add_switch("s0").expect("fresh name");
    let s1 = m.add_switch("s1").expect("fresh name");
    m.add_connection(c, s0).expect("fresh pair");
    m.add_connection(c, s1).expect("fresh pair");
    let model = AttackModel::uniform(&m, CapabilitySet::no_tls());
    (m, model)
}

fn lit_int(n: i64) -> Expr {
    Expr::Lit(Value::Int(n))
}

fn type_eq(t: OfType) -> Expr {
    Expr::eq(Expr::Prop(Property::Type), Expr::Lit(Value::MsgType(t)))
}

fn arb_type() -> impl Strategy<Value = OfType> {
    prop_oneof![
        Just(OfType::Hello),
        Just(OfType::EchoRequest),
        Just(OfType::FlowMod),
        Just(OfType::PacketIn),
    ]
}

/// Rule conditions spanning indexable, partially indexable,
/// error-producing, residual, trivial, and never-firing shapes.
fn arb_condition() -> impl Strategy<Value = Expr> {
    prop_oneof![
        // Indexable equality anchors.
        arb_type().prop_map(type_eq),
        (0i64..64).prop_map(|n| Expr::eq(Expr::Prop(Property::Length), lit_int(n))),
        // Indexable membership.
        (arb_type(), arb_type()).prop_map(|(a, b)| Expr::In(
            Box::new(Expr::Prop(Property::Type)),
            vec![Expr::Lit(Value::MsgType(a)), Expr::Lit(Value::MsgType(b))],
        )),
        // Indexable interval comparisons (both bound directions and a
        // flipped literal-on-the-left form).
        (0i64..64)
            .prop_map(|n| Expr::Lt(Box::new(Expr::Prop(Property::Length)), Box::new(lit_int(n)))),
        (0i64..64)
            .prop_map(|n| Expr::Ge(Box::new(Expr::Prop(Property::Length)), Box::new(lit_int(n)))),
        (0u32..100).prop_map(|p| Expr::Gt(
            Box::new(lit_int(p as i64)),
            Box::new(Expr::Prop(Property::Length)),
        )),
        (0u32..100).prop_map(|p| Expr::Gt(
            Box::new(Expr::Prop(Property::Entropy)),
            Box::new(Expr::Lit(Value::Float(p as f64 / 100.0))),
        )),
        // Partially indexable: indexed anchor, residual tail.
        (arb_type(), 0u32..100).prop_map(|(t, p)| Expr::and(
            type_eq(t),
            Expr::Gt(
                Box::new(Expr::Prop(Property::Entropy)),
                Box::new(Expr::Lit(Value::Float(p as f64 / 100.0))),
            ),
        )),
        // Error-producing, anchored on a fallible property: fails with
        // NoSuchField on non-FLOW_MODs and Unparseable on garbage.
        (0i64..16).prop_map(|n| Expr::eq(
            Expr::Prop(Property::TypeOption("priority".into())),
            lit_int(n)
        )),
        // Residual: disjunction, deque read, arithmetic.
        (arb_type(), arb_type()).prop_map(|(a, b)| Expr::or(type_eq(a), type_eq(b))),
        (0i64..4)
            .prop_map(|n| Expr::Gt(Box::new(Expr::DequeLen("d".into())), Box::new(lit_int(n)))),
        (0i64..40).prop_map(|n| Expr::eq(
            Expr::Add(Box::new(Expr::Prop(Property::Id)), Box::new(lit_int(1))),
            lit_int(n),
        )),
        // Residual that always errors: an address has no numeric order.
        Just(Expr::Lt(
            Box::new(Expr::Prop(Property::Source)),
            Box::new(lit_int(0))
        )),
        // Trivial (no anchor) and never-firing (falsy literal anchor).
        Just(Expr::always()),
        arb_type().prop_map(|t| Expr::and(Expr::Lit(Value::Bool(false)), type_eq(t))),
    ]
}

/// Raw actions; `GOTOSTATE` targets are generated wide and folded into
/// range (`% state_count`) when the attack is assembled.
fn arb_action() -> impl Strategy<Value = AttackAction> {
    prop_oneof![
        Just(AttackAction::Drop),
        Just(AttackAction::Pass),
        Just(AttackAction::Duplicate),
        (0usize..8).prop_map(AttackAction::GoToState),
        (0i64..100).prop_map(|n| AttackAction::Append {
            deque: "d".into(),
            value: lit_int(n),
        }),
        Just(AttackAction::Shift("d".into())),
        Just(AttackAction::Fuzz { flips: 1 }),
        // Sleeps span a few message interarrival gaps (1.5 ms), so
        // some messages are held and replayed on wakeup.
        (1u32..5).prop_map(|ms| AttackAction::Sleep(Expr::Lit(Value::Float(ms as f64 / 1000.0)))),
        (0u32..3).prop_map(|ms| AttackAction::Delay(Expr::Lit(Value::Float(ms as f64 / 1000.0)))),
    ]
}

type RuleSpec = (Expr, usize, Vec<AttackAction>);

fn arb_state() -> impl Strategy<Value = Vec<RuleSpec>> {
    proptest::collection::vec(
        (
            arb_condition(),
            0usize..3,
            proptest::collection::vec(arb_action(), 0..3),
        ),
        0..5,
    )
}

fn assemble_attack(specs: Vec<Vec<RuleSpec>>) -> Attack {
    let n_states = specs.len();
    let states = specs
        .into_iter()
        .enumerate()
        .map(|(si, rules)| AttackState {
            name: format!("sigma{si}"),
            rules: rules
                .into_iter()
                .enumerate()
                .map(|(ri, (condition, conn_pick, actions))| Rule {
                    name: format!("phi{si}_{ri}"),
                    connections: match conn_pick {
                        0 => vec![ConnectionId(0)],
                        1 => vec![ConnectionId(1)],
                        _ => vec![ConnectionId(0), ConnectionId(1)],
                    },
                    required: CapabilitySet::no_tls(),
                    condition,
                    actions: actions
                        .into_iter()
                        .map(|a| match a {
                            AttackAction::GoToState(t) => AttackAction::GoToState(t % n_states),
                            other => other,
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect();
    Attack {
        name: "differential".into(),
        states,
        start: 0,
    }
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        Just(Frame::from_message(OfMessage::Hello, 1)),
        (0usize..48).prop_map(|n| Frame::from_message(OfMessage::EchoRequest(vec![0xab; n]), 2)),
        (0u16..16).prop_map(|p| {
            let mut fm = FlowMod::add(Match::all(), vec![]);
            fm.priority = p;
            Frame::from_message(OfMessage::FlowMod(fm), 3)
        }),
        // Garbage: unparseable payload (payload reads fail, metadata
        // reads still work).
        (0usize..32).prop_map(|n| Frame::new(vec![0xff; n])),
    ]
}

/// Runs the whole stream through one executor and returns everything
/// observable: per-step outputs, the final log, and the final state.
fn run(
    mode: DispatchMode,
    system: SystemModel,
    model: AttackModel,
    attack: Attack,
    msgs: &[(Frame, usize, bool)],
) -> (Vec<ExecOutput>, Vec<LogEvent>, usize, usize) {
    let mut exec = AttackExecutor::new(system, model, attack)
        .expect("generated attack validates")
        .with_dispatch_mode(mode);
    let mut outs = Vec::new();
    for (i, (frame, conn, dir)) in msgs.iter().enumerate() {
        outs.push(exec.on_message(InjectorInput {
            conn: ConnectionId(*conn),
            to_controller: *dir,
            frame: frame.clone(),
            now_ns: i as u64 * 1_500_000,
        }));
        // Exercise the wakeup/drain path mid-stream every few steps.
        if i % 5 == 4 {
            outs.push(exec.on_wakeup(i as u64 * 1_500_000 + 750_000));
        }
    }
    // Final drain, far past any generated sleep deadline.
    outs.push(exec.on_wakeup(1 << 40));
    let deque_len = exec.deques().len("d");
    (
        outs,
        exec.log().events().to_vec(),
        exec.current_state(),
        deque_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Scan ≡ compiled dispatch on full executor output, for rulesets
    /// spanning every dispatch class and streams that trigger
    /// transitions, sleeps, holds, and evaluation errors.
    #[test]
    fn dispatcher_is_bit_identical_to_scan(
        specs in proptest::collection::vec(arb_state(), 1..4),
        msgs in proptest::collection::vec((arb_frame(), 0usize..2, any::<bool>()), 1..25),
    ) {
        let attack = assemble_attack(specs);
        let (sys_a, model_a) = small_system();
        let (sys_b, model_b) = small_system();
        let scan = run(DispatchMode::Scan, sys_a, model_a, attack.clone(), &msgs);
        let compiled = run(DispatchMode::Compiled, sys_b, model_b, attack, &msgs);
        // Outputs first (deliveries/commands/faults/wakeups per step),
        // then the complete log (RuleMatched, Transition, ActionError,
        // Held... in order), then final automaton state and deques.
        prop_assert_eq!(&scan.0, &compiled.0);
        prop_assert_eq!(&scan.1, &compiled.1);
        prop_assert_eq!(scan.2, compiled.2);
        prop_assert_eq!(scan.3, compiled.3);
    }
}
