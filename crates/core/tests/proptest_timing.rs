//! Differential oracle for timing observables: on random rulesets that
//! mix timing predicates (`latency`, `inter_arrival`, `timing_mean`,
//! `timing_stddev`, `timing_count`, `elapsed_in_state`) with ordinary
//! content predicates, [`DispatchMode::Compiled`] must reproduce the
//! reference scan's full executor output bit for bit.
//!
//! Timing predicates are never anchors — the guard classifier leaves
//! them in the residual mask — so this suite is the proof that the
//! residual path evaluates them identically in both modes, *including*
//! the fallible paths: `Last`/`Mean`/`StdDev` reads against an empty
//! sample ring surface as `EvalError::NoSample`, which the executor
//! logs as an `ActionError` and treats as unmatched, in both modes, in
//! the same order. Sleeps are generated too, so held messages replayed
//! at wake time observe the same (wake-time) clock under both modes.

use attain_core::exec::{AttackExecutor, DispatchMode, ExecOutput, InjectorInput, LogEvent};
use attain_core::lang::{
    Attack, AttackAction, AttackState, Expr, Property, Rule, TimingStat, Value,
};
use attain_core::model::{AttackModel, CapabilitySet, ConnectionId, SystemModel};
use attain_openflow::{Frame, OfMessage, OfType, PacketIn, PacketInReason, PortNo};
use proptest::prelude::*;

fn small_system() -> (SystemModel, AttackModel) {
    let mut m = SystemModel::new();
    let c = m.add_controller("c0").expect("fresh name");
    let s0 = m.add_switch("s0").expect("fresh name");
    let s1 = m.add_switch("s1").expect("fresh name");
    m.add_connection(c, s0).expect("fresh pair");
    m.add_connection(c, s1).expect("fresh pair");
    let model = AttackModel::uniform(&m, CapabilitySet::no_tls());
    (m, model)
}

fn lit_int(n: i64) -> Expr {
    Expr::Lit(Value::Int(n))
}

fn type_eq(t: OfType) -> Expr {
    Expr::eq(Expr::Prop(Property::Type), Expr::Lit(Value::MsgType(t)))
}

fn arb_type() -> impl Strategy<Value = OfType> {
    prop_oneof![
        Just(OfType::Hello),
        Just(OfType::EchoRequest),
        Just(OfType::PacketIn),
        Just(OfType::PacketOut),
    ]
}

fn arb_stat() -> impl Strategy<Value = TimingStat> {
    prop_oneof![
        Just(TimingStat::Last),
        Just(TimingStat::Mean),
        Just(TimingStat::StdDev),
        Just(TimingStat::Count),
    ]
}

fn timing(req: OfType, resp: OfType, stat: TimingStat, window: u32) -> Expr {
    Expr::Timing {
        req,
        resp,
        stat,
        window,
    }
}

/// Conditions mixing timing reads (guarded and deliberately unguarded,
/// so the NoSample error path fires) with content predicates.
fn arb_condition() -> impl Strategy<Value = Expr> {
    // Messages are spaced 1.5 ms apart, so thresholds around a few
    // sample gaps split both ways.
    let threshold = 0i64..6_000_000;
    prop_oneof![
        // Unguarded stat read: errors (NoSample) until the pair has a
        // sample, then compares normally.
        (
            arb_type(),
            arb_type(),
            arb_stat(),
            1u32..9,
            threshold.clone()
        )
            .prop_map(|(req, resp, stat, w, t)| Expr::Gt(
                Box::new(timing(req, resp, stat, w)),
                Box::new(lit_int(t)),
            )),
        // Count-guarded read: short-circuit keeps it infallible.
        (arb_type(), arb_type(), 1u32..9, 0i64..4, threshold.clone()).prop_map(
            |(req, resp, w, n, t)| Expr::and(
                Expr::Ge(
                    Box::new(timing(req, resp, TimingStat::Count, 1)),
                    Box::new(lit_int(n)),
                ),
                Expr::Lt(
                    Box::new(timing(req, resp, TimingStat::Mean, w)),
                    Box::new(lit_int(t))
                ),
            )
        ),
        // Inter-arrival (same-type pair) against a gap threshold.
        (arb_type(), 1u32..5, threshold.clone()).prop_map(|(t, w, thr)| Expr::Le(
            Box::new(timing(t, t, TimingStat::Last, w)),
            Box::new(lit_int(thr)),
        )),
        // Pure count comparisons: infallible, start at 0.
        (arb_type(), arb_type(), 0i64..6).prop_map(|(req, resp, n)| Expr::eq(
            timing(req, resp, TimingStat::Count, 1),
            lit_int(n),
        )),
        // Time-in-state reads, alone and conjoined with a type anchor.
        threshold
            .clone()
            .prop_map(|t| Expr::Gt(Box::new(Expr::ElapsedInState), Box::new(lit_int(t)),)),
        (arb_type(), threshold).prop_map(|(ty, t)| Expr::and(
            type_eq(ty),
            Expr::Ge(Box::new(Expr::ElapsedInState), Box::new(lit_int(t))),
        )),
        // Content-only shapes so compiled dispatch still builds real
        // anchors alongside the timing residuals.
        arb_type().prop_map(type_eq),
        (0i64..48)
            .prop_map(|n| Expr::Lt(Box::new(Expr::Prop(Property::Length)), Box::new(lit_int(n)))),
        Just(Expr::always()),
    ]
}

fn arb_action() -> impl Strategy<Value = AttackAction> {
    prop_oneof![
        Just(AttackAction::Drop),
        Just(AttackAction::Pass),
        Just(AttackAction::Duplicate),
        (0usize..8).prop_map(AttackAction::GoToState),
        // Sleeps hold messages past later arrivals, so replayed frames
        // are observed at wake time, not arrival time.
        (1u32..5).prop_map(|ms| AttackAction::Sleep(Expr::Lit(Value::Float(ms as f64 / 1000.0)))),
        // A delay whose duration reads a timing stat (guarded by the
        // executor's error handling when no sample exists yet).
        Just(AttackAction::Delay(Expr::Lit(Value::Float(0.001)))),
    ]
}

type RuleSpec = (Expr, usize, Vec<AttackAction>);

fn assemble_attack(specs: Vec<Vec<RuleSpec>>) -> Attack {
    let n_states = specs.len();
    let states = specs
        .into_iter()
        .enumerate()
        .map(|(si, rules)| AttackState {
            name: format!("sigma{si}"),
            rules: rules
                .into_iter()
                .enumerate()
                .map(|(ri, (condition, conn_pick, actions))| Rule {
                    name: format!("phi{si}_{ri}"),
                    connections: match conn_pick {
                        0 => vec![ConnectionId(0)],
                        1 => vec![ConnectionId(1)],
                        _ => vec![ConnectionId(0), ConnectionId(1)],
                    },
                    required: CapabilitySet::no_tls(),
                    condition,
                    actions: actions
                        .into_iter()
                        .map(|a| match a {
                            AttackAction::GoToState(t) => AttackAction::GoToState(t % n_states),
                            other => other,
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect();
    Attack {
        name: "timing_differential".into(),
        states,
        start: 0,
    }
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        Just(Frame::from_message(OfMessage::Hello, 1)),
        (0usize..24).prop_map(|n| Frame::from_message(OfMessage::EchoRequest(vec![0xab; n]), 2)),
        (0u16..8).prop_map(|p| {
            Frame::from_message(
                OfMessage::PacketIn(PacketIn {
                    buffer_id: None,
                    total_len: 16,
                    in_port: PortNo(p),
                    reason: PacketInReason::NoMatch,
                    data: vec![0u8; 16],
                }),
                3,
            )
        }),
        // Garbage: undecodable, so `of_type()` is `None` and the frame
        // must be skipped by timing observation in both modes.
        (0usize..16).prop_map(|n| Frame::new(vec![0xff; n])),
    ]
}

/// Runs the whole stream through one executor and returns everything
/// observable, including the timing store's tracked-connection count.
fn run(
    mode: DispatchMode,
    system: SystemModel,
    model: AttackModel,
    attack: Attack,
    msgs: &[(Frame, usize, bool, u32)],
) -> (Vec<ExecOutput>, Vec<LogEvent>, usize, usize) {
    let mut exec = AttackExecutor::new(system, model, attack)
        .expect("generated attack validates")
        .with_dispatch_mode(mode);
    let mut outs = Vec::new();
    let mut now_ns = 0u64;
    for (i, (frame, conn, dir, gap)) in msgs.iter().enumerate() {
        // Irregular arrival spacing so stddev is often non-zero.
        now_ns += 1_500_000 + *gap as u64 * 100_000;
        outs.push(exec.on_message(InjectorInput {
            conn: ConnectionId(*conn),
            to_controller: *dir,
            frame: frame.clone(),
            now_ns,
        }));
        if i % 5 == 4 {
            outs.push(exec.on_wakeup(now_ns + 750_000));
        }
    }
    outs.push(exec.on_wakeup(1 << 40));
    let tracked = exec.timing().tracked_connections();
    (
        outs,
        exec.log().events().to_vec(),
        exec.current_state(),
        tracked,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Scan ≡ compiled dispatch with timing predicates in play: the
    /// full output stream, the complete log (including `ActionError`
    /// entries from NoSample reads), the final automaton state, and
    /// the timing store's tracked connections all match bit for bit.
    #[test]
    fn timing_predicates_are_dispatch_mode_invariant(
        specs in proptest::collection::vec(
            proptest::collection::vec(
                (arb_condition(), 0usize..3, proptest::collection::vec(arb_action(), 0..3)),
                0..5,
            ),
            1..4,
        ),
        msgs in proptest::collection::vec(
            (arb_frame(), 0usize..2, any::<bool>(), 0u32..10),
            1..25,
        ),
    ) {
        let attack = assemble_attack(specs);
        let (sys_a, model_a) = small_system();
        let (sys_b, model_b) = small_system();
        let scan = run(DispatchMode::Scan, sys_a, model_a, attack.clone(), &msgs);
        let compiled = run(DispatchMode::Compiled, sys_b, model_b, attack, &msgs);
        prop_assert_eq!(&scan.0, &compiled.0);
        prop_assert_eq!(&scan.1, &compiled.1);
        prop_assert_eq!(scan.2, compiled.2);
        prop_assert_eq!(scan.3, compiled.3);
    }

    /// Same-seed determinism: two executors fed the identical stream
    /// (same mode) produce byte-identical output — timing state has no
    /// hidden nondeterminism (hash order, wall clock).
    #[test]
    fn timing_runs_are_reproducible(
        specs in proptest::collection::vec(
            proptest::collection::vec(
                (arb_condition(), 0usize..3, proptest::collection::vec(arb_action(), 0..2)),
                0..4,
            ),
            1..3,
        ),
        msgs in proptest::collection::vec(
            (arb_frame(), 0usize..2, any::<bool>(), 0u32..10),
            1..15,
        ),
    ) {
        let attack = assemble_attack(specs);
        let (sys_a, model_a) = small_system();
        let (sys_b, model_b) = small_system();
        let first = run(DispatchMode::Compiled, sys_a, model_a, attack.clone(), &msgs);
        let second = run(DispatchMode::Compiled, sys_b, model_b, attack, &msgs);
        prop_assert_eq!(first, second);
    }
}
