//! Property-based tests on the attack language's core data structures:
//! deque semantics against a reference model, conditional algebra, and
//! executor fuzz-safety.

use attain_core::exec::{AttackExecutor, InjectorInput};
use attain_core::lang::{DequeStore, Expr, MessageView, Property, Value};
use attain_core::model::{
    AttackModel, CapabilitySet, ConnectionId, ControllerId, NodeRef, SwitchId, SystemModel,
};
use attain_core::{dsl, scenario};
use proptest::prelude::*;
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Deques vs. a reference model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum DequeOp {
    Prepend(i64),
    Append(i64),
    Shift,
    Pop,
    ExamineFront,
    ExamineEnd,
}

fn arb_op() -> impl Strategy<Value = DequeOp> {
    prop_oneof![
        any::<i64>().prop_map(DequeOp::Prepend),
        any::<i64>().prop_map(DequeOp::Append),
        Just(DequeOp::Shift),
        Just(DequeOp::Pop),
        Just(DequeOp::ExamineFront),
        Just(DequeOp::ExamineEnd),
    ]
}

proptest! {
    /// Every deque operation behaves exactly like `VecDeque`.
    #[test]
    fn deque_store_matches_reference_model(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let mut store = DequeStore::new();
        let mut reference: VecDeque<i64> = VecDeque::new();
        for op in ops {
            match op {
                DequeOp::Prepend(v) => {
                    store.prepend("d", Value::Int(v));
                    reference.push_front(v);
                }
                DequeOp::Append(v) => {
                    store.append("d", Value::Int(v));
                    reference.push_back(v);
                }
                DequeOp::Shift => {
                    let got = store.shift("d");
                    let want = reference.pop_front().map(Value::Int).unwrap_or(Value::None);
                    prop_assert_eq!(got, want);
                }
                DequeOp::Pop => {
                    let got = store.pop("d");
                    let want = reference.pop_back().map(Value::Int).unwrap_or(Value::None);
                    prop_assert_eq!(got, want);
                }
                DequeOp::ExamineFront => {
                    let got = store.examine_front("d");
                    let want = reference.front().copied().map(Value::Int).unwrap_or(Value::None);
                    prop_assert_eq!(got, want);
                }
                DequeOp::ExamineEnd => {
                    let got = store.examine_end("d");
                    let want = reference.back().copied().map(Value::Int).unwrap_or(Value::None);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(store.len("d"), reference.len());
        }
    }
}

// ---------------------------------------------------------------------------
// Conditional algebra
// ---------------------------------------------------------------------------

fn arb_bool_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(|b| Expr::Lit(Value::Bool(b))),
        (0i64..64).prop_map(|n| Expr::Gt(
            Box::new(Expr::Prop(Property::Length)),
            Box::new(Expr::Lit(Value::Int(n))),
        )),
        (0i64..200).prop_map(|n| Expr::eq(Expr::Prop(Property::Id), Expr::Lit(Value::Int(n)),)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn eval_bool(e: &Expr, msg: &MessageView<'_>, deques: &DequeStore) -> bool {
    e.eval(msg, deques)
        .expect("boolean expressions evaluate")
        .truthy()
}

fn message_view(frame: &attain_openflow::Frame, id: u64) -> MessageView<'_> {
    MessageView {
        conn: ConnectionId(0),
        source: NodeRef::Controller(ControllerId(0)),
        destination: NodeRef::Switch(SwitchId(0)),
        timestamp_ns: 0,
        id,
        frame,
        granted: CapabilitySet::no_tls(),
        entropy: 0.5,
    }
}

proptest! {
    /// De Morgan's laws and double negation hold for every expression.
    #[test]
    fn conditional_boolean_algebra(
        a in arb_bool_expr(),
        b in arb_bool_expr(),
        len in 0usize..128,
        id in 0u64..250,
    ) {
        let frame = attain_openflow::Frame::new(vec![0u8; len]);
        let msg = message_view(&frame, id);
        let d = DequeStore::new();

        let va = eval_bool(&a, &msg, &d);
        let vb = eval_bool(&b, &msg, &d);

        // ¬(a ∧ b) = ¬a ∨ ¬b
        let lhs = Expr::Not(Box::new(Expr::and(a.clone(), b.clone())));
        let rhs = Expr::or(
            Expr::Not(Box::new(a.clone())),
            Expr::Not(Box::new(b.clone())),
        );
        prop_assert_eq!(eval_bool(&lhs, &msg, &d), eval_bool(&rhs, &msg, &d));
        prop_assert_eq!(eval_bool(&lhs, &msg, &d), !(va && vb));

        // ¬¬a = a
        let double_neg = Expr::Not(Box::new(Expr::Not(Box::new(a.clone()))));
        prop_assert_eq!(eval_bool(&double_neg, &msg, &d), va);

        // a ∈ [a-ish set] is consistent with chained equality.
        let member = Expr::In(
            Box::new(Expr::Prop(Property::Id)),
            vec![
                Expr::Lit(Value::Int(id as i64)),
                Expr::Lit(Value::Int(-1)),
            ],
        );
        prop_assert!(eval_bool(&member, &msg, &d));
    }

    /// Required capabilities never shrink when composing expressions.
    #[test]
    fn composition_accumulates_capabilities(a in arb_bool_expr(), b in arb_bool_expr()) {
        let combined = Expr::and(a.clone(), b.clone());
        let caps = combined.required_capabilities();
        prop_assert!(caps.is_superset_of(&a.required_capabilities()));
        prop_assert!(caps.is_superset_of(&b.required_capabilities()));
    }
}

// ---------------------------------------------------------------------------
// Executor fuzz-safety and pass-through identity
// ---------------------------------------------------------------------------

fn trivial_executor() -> AttackExecutor {
    let sc = scenario::enterprise_network();
    let atk = dsl::compile(
        scenario::attacks::TRIVIAL_PASS,
        &sc.system,
        &sc.attack_model,
    )
    .expect("bundled attack compiles");
    AttackExecutor::new(sc.system, sc.attack_model, atk.attack).expect("validates")
}

fn suppression_executor() -> AttackExecutor {
    let sc = scenario::enterprise_network();
    let atk = dsl::compile(
        scenario::attacks::FLOW_MOD_SUPPRESSION,
        &sc.system,
        &sc.attack_model,
    )
    .expect("bundled attack compiles");
    AttackExecutor::new(sc.system, sc.attack_model, atk.attack).expect("validates")
}

proptest! {
    /// The trivial attack forwards arbitrary bytes verbatim — including
    /// garbage that does not decode — and never panics.
    #[test]
    fn trivial_attack_is_identity_on_arbitrary_bytes(
        msgs in proptest::collection::vec((proptest::collection::vec(any::<u8>(), 0..256), 0usize..4, any::<bool>()), 1..20),
    ) {
        let mut exec = trivial_executor();
        for (i, (bytes, conn, dir)) in msgs.iter().enumerate() {
            let out = exec.on_message(InjectorInput {
                conn: ConnectionId(*conn),
                to_controller: *dir,
                frame: attain_openflow::Frame::new(bytes.clone()),
                now_ns: i as u64,
            });
            prop_assert_eq!(out.deliveries.len(), 1);
            prop_assert_eq!(out.deliveries[0].frame.bytes(), bytes.as_slice());
            prop_assert_eq!(out.deliveries[0].conn, ConnectionId(*conn));
            prop_assert_eq!(out.deliveries[0].to_controller, *dir);
        }
    }

    /// The suppression attack never panics on arbitrary bytes, and drops
    /// a message only if that message decodes as a controller FLOW_MOD.
    #[test]
    fn suppression_drops_only_decodable_flow_mods(
        msgs in proptest::collection::vec((proptest::collection::vec(any::<u8>(), 0..256), 0usize..4, any::<bool>()), 1..20),
    ) {
        let mut exec = suppression_executor();
        for (i, (bytes, conn, dir)) in msgs.iter().enumerate() {
            let out = exec.on_message(InjectorInput {
                conn: ConnectionId(*conn),
                to_controller: *dir,
                frame: attain_openflow::Frame::new(bytes.clone()),
                now_ns: i as u64,
            });
            let decodes_as_flow_mod = attain_openflow::OfMessage::decode(bytes)
                .map(|(m, _)| matches!(m, attain_openflow::OfMessage::FlowMod(_)))
                .unwrap_or(false);
            if out.deliveries.is_empty() {
                prop_assert!(decodes_as_flow_mod && !*dir, "dropped a non-flow-mod");
            } else {
                prop_assert_eq!(out.deliveries[0].frame.bytes(), bytes.as_slice());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// System model invariants
// ---------------------------------------------------------------------------

proptest! {
    /// connection_by_names is a left inverse of add_connection for any
    /// topology size.
    #[test]
    fn connection_lookup_roundtrip(controllers in 1usize..4, switches in 1usize..8) {
        let mut m = SystemModel::new();
        let cs: Vec<_> = (0..controllers)
            .map(|i| m.add_controller(&format!("c{i}")).expect("fresh"))
            .collect();
        let ss: Vec<_> = (0..switches)
            .map(|i| m.add_switch(&format!("s{i}")).expect("fresh"))
            .collect();
        m.add_host("h0", None, None).expect("fresh");
        m.add_host("h1", None, None).expect("fresh");
        let mut expected = Vec::new();
        for (ci, &c) in cs.iter().enumerate() {
            for (si, &s) in ss.iter().enumerate() {
                let id = m.add_connection(c, s).expect("fresh pair");
                expected.push((format!("c{ci}"), format!("s{si}"), id));
            }
        }
        let model = AttackModel::uniform(&m, CapabilitySet::tls());
        prop_assert_eq!(model.len(), controllers * switches);
        for (c, s, id) in expected {
            prop_assert_eq!(m.connection_by_names(&c, &s), Some(id));
        }
    }
}
