//! Copy-on-write mutation equivalence: rewriting a field through a
//! shared [`Frame`] (the executor's `MODIFYMESSAGE` path) must produce
//! exactly the bytes the pre-`Frame` pipeline produced by mutating an
//! owned `Vec<u8>`, and must never disturb the original frame — other
//! holders of the same allocation keep seeing the unmodified message.

use attain_core::exec::set_field;
use attain_core::lang::Value;
use attain_openflow::{FlowMod, Frame, Match, OfMessage, PacketIn, PacketInReason, PortNo};
use proptest::prelude::*;

/// A writable FLOW_MOD field with an in-range value.
fn arb_flow_mod_edit() -> impl Strategy<Value = (&'static str, i64)> {
    prop_oneof![
        (Just("priority"), 0i64..=u16::MAX as i64),
        (Just("idle_timeout"), 0i64..=u16::MAX as i64),
        (Just("hard_timeout"), 0i64..=u16::MAX as i64),
        (Just("cookie"), any::<i64>()),
        (Just("out_port"), 0i64..=u16::MAX as i64),
        (Just("buffer_id"), 0i64..=u32::MAX as i64),
    ]
}

proptest! {
    /// FLOW_MOD: `Frame` COW mutation ≡ the old owned-`Vec<u8>` path.
    #[test]
    fn flow_mod_cow_matches_owned_mutation(
        xid in any::<u32>(),
        priority in any::<u16>(),
        (field, value) in arb_flow_mod_edit(),
    ) {
        let mut fm = FlowMod::add(Match::all(), vec![]);
        fm.priority = priority;
        let msg = OfMessage::FlowMod(fm);
        let value = Value::Int(value);

        // Old path: mutate owned bytes directly.
        let old = set_field(&msg.encode(xid), field, &value).expect("writable field");

        // Frame path: share the encoding, then copy-on-write.
        let original = Frame::from_message(msg.clone(), xid);
        let holder = original.clone(); // another component keeps a handle
        let mutated = Frame::new(
            set_field(original.bytes(), field, &value).expect("writable field"),
        );

        prop_assert_eq!(mutated.bytes(), old.as_slice());
        // The mutation went to a fresh allocation; every other holder of
        // the original frame still sees the untouched message.
        prop_assert_eq!(holder.bytes(), msg.encode(xid).as_slice());
        prop_assert_eq!(holder.message(), Some(&msg));
        // The mutated frame decodes, keeps the xid, and differs from the
        // original exactly when the write changed the field's value.
        let (new_msg, new_xid) = mutated.decoded().expect("mutated frame decodes").clone();
        prop_assert_eq!(new_xid, xid);
        prop_assert_eq!(
            OfMessage::decode(&old).expect("old path decodes").0,
            new_msg
        );
    }

    /// PACKET_IN: same equivalence on a different message family, with
    /// an arbitrary payload riding along untouched.
    #[test]
    fn packet_in_cow_matches_owned_mutation(
        xid in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        in_port in 0i64..=u16::MAX as i64,
    ) {
        let msg = OfMessage::PacketIn(PacketIn {
            buffer_id: Some(7),
            total_len: payload.len() as u16,
            in_port: PortNo(1),
            reason: PacketInReason::NoMatch,
            data: payload,
        });
        let value = Value::Int(in_port);

        let old = set_field(&msg.encode(xid), "in_port", &value).expect("writable");
        let original = Frame::from_message(msg.clone(), xid);
        let mutated = Frame::new(
            set_field(original.bytes(), "in_port", &value).expect("writable"),
        );

        prop_assert_eq!(mutated.bytes(), old.as_slice());
        prop_assert_eq!(original.message(), Some(&msg));
        let got = mutated.message().expect("decodes");
        let OfMessage::PacketIn(pi) = got else { panic!("still a PACKET_IN") };
        prop_assert_eq!(pi.in_port, PortNo(in_port as u16));
    }
}
